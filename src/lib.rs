//! Workspace-level umbrella crate for the raindrop ROP-obfuscation
//! reproduction (Borrello, Coppa & D'Elia, DSN 2021).
//!
//! This crate carries the repository's end-to-end integration suites
//! (`tests/`) and the paper-figure examples (`examples/`); its library
//! target simply re-exports the workspace crates so downstream users can
//! depend on a single package:
//!
//! * [`machine`] — the RM64 machine model, encoder, and emulator;
//! * [`gadgets`] — gadget scanning, synthesis, and the diversified catalog;
//! * [`analysis`] — CFG / liveness / dominator analyses;
//! * [`core`] — the ROP rewriter, strengthening predicates, runtime, and
//!   the composable obfuscation pipeline (`raindrop::pipeline`);
//! * [`synth`] — mini-C workload synthesis and RM64 codegen;
//! * [`obfvm`] — the baseline virtualization obfuscator;
//! * [`attacks`] — the deobfuscation attack models: the fork-point DSE
//!   engine, the attack fleet, taint slicing, and the ROP-aware tools;
//! * [`mod@bench`] — experiment drivers for the paper's figures and
//!   tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use raindrop as core;
pub use raindrop_analysis as analysis;
pub use raindrop_attacks as attacks;
pub use raindrop_bench as bench;
pub use raindrop_gadgets as gadgets;
pub use raindrop_machine as machine;
pub use raindrop_obfvm as obfvm;
pub use raindrop_synth as synth;
