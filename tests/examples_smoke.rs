//! Smoke tests for the paper-figure example binaries.
//!
//! Each example's source is compiled into this test via `#[path]` and its
//! `main` driven to completion, so `cargo test` proves the documented entry
//! points (`cargo run --example ...`) still build and exit cleanly — without
//! spawning a nested cargo. The heavier narrative examples
//! (`license_check`, `attack_workbench`) run the same protection/attack
//! loops as the quick suites and are covered by the three below.

#[path = "../examples/quickstart.rs"]
mod quickstart;

#[path = "../examples/figure1.rs"]
mod figure1;

#[path = "../examples/protect_base64.rs"]
mod protect_base64;

#[test]
fn quickstart_runs_to_completion() {
    quickstart::main().expect("examples/quickstart.rs should exit cleanly");
}

#[test]
fn figure1_runs_to_completion() {
    figure1::main().expect("examples/figure1.rs should exit cleanly");
}

#[test]
fn protect_base64_runs_to_completion() {
    protect_base64::main().expect("examples/protect_base64.rs should exit cleanly");
}
