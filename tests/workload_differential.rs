//! Per-class differential verification of the workload corpus: every
//! registered class, under at least three generation seeds, is pinned
//! end-to-end —
//!
//! * reference semantics: the MiniC interpreter and the native emulator
//!   agree on every generated program;
//! * stepper differential: `verify_batch` equivalence of the native image
//!   against its `ROP1.00` rewrite over a small input sweep;
//! * pipeline bit-identity: the `Pipeline` compositions (ROP, 2VM,
//!   VM-over-ROP) are bit-identical to the equivalent direct
//!   `Rewriter`/`obfvm::apply` sequences, per class.
//!
//! The registry is enumerated, never hard-coded, so a class added without
//! generator coverage fails here (and in the `exp_workloads --smoke` CI
//! gate) instead of silently shipping unverified.

use raindrop::pipeline::{rop_inner_name, wrap_rop_target, Pipeline, RopPass, VmPass};
use raindrop::{verify_batch, Rewriter, RopConfig, TestCase, Verdict};
use raindrop_bench::{prepare_image, ObfKind};
use raindrop_machine::{Emulator, Image};
use raindrop_obfvm::{ImplicitAt, VmConfig};
use raindrop_synth::classes::{self, ClassId, ClassProgram};
use raindrop_synth::codegen;

const SEEDS: [u64; 3] = [11, 12, 13];

fn run_native(image: &Image, entry: &str, args: &[u64]) -> u64 {
    let mut emu = Emulator::new(image);
    emu.set_budget(20_000_000_000);
    emu.call_named(image, entry, args).expect("class program runs")
}

fn vm_cfg(layers: usize, seed: u64) -> VmConfig {
    VmConfig { layers, implicit: ImplicitAt::None, seed }
}

/// The cheapest program of a class (fewest native cycles), used for the
/// compositions whose images are also *executed* — multi-layer VM
/// interpretation costs ~1e5x, so the sweep runs on the lightest member.
fn cheapest(programs: &[ClassProgram]) -> &ClassProgram {
    programs
        .iter()
        .min_by_key(|cp| {
            let image = codegen::compile(&cp.workload.program).unwrap();
            let mut emu = Emulator::new(&image);
            emu.set_budget(20_000_000_000);
            emu.call_named(&image, &cp.workload.entry, &cp.workload.args).unwrap();
            emu.stats().cycles
        })
        .expect("class generates at least one program")
}

#[test]
fn every_class_agrees_with_its_reference_interpreter_across_seeds() {
    for class in ClassId::all() {
        for seed in SEEDS {
            for cp in classes::generate(class, seed) {
                let w = &cp.workload;
                let image = codegen::compile(&w.program).expect("class program compiles");
                assert_eq!(
                    run_native(&image, &w.entry, &w.args),
                    cp.reference_value(),
                    "{}/{} seed {seed}: emulator vs reference interpreter",
                    class.name(),
                    w.name
                );
                assert_eq!(
                    run_native(&image, &cp.check_entry, &w.args),
                    1,
                    "{}/{} seed {seed}: point-test wrapper accepts the canonical argument",
                    class.name(),
                    w.name
                );
            }
        }
    }
}

#[test]
fn every_class_survives_the_rop_stepper_differential_across_seeds() {
    for class in ClassId::all() {
        for seed in SEEDS {
            for cp in classes::generate(class, seed) {
                let w = &cp.workload;
                let native = codegen::compile(&w.program).unwrap();
                let rewritten =
                    prepare_image(&w.program, &w.obfuscate, &ObfKind::Rop { k: 1.0 }, seed)
                        .expect("ROP pipeline prepares");
                let cases = [
                    TestCase::args(&w.args),
                    TestCase::args(&[w.args[0] ^ 0x55]),
                    TestCase::args(&[0]),
                ];
                for (case, verdict) in
                    cases.iter().zip(verify_batch(&native, &rewritten, &w.entry, &cases))
                {
                    assert!(
                        verdict.is_match(),
                        "{}/{} seed {seed} args {:?}: {verdict:?}",
                        class.name(),
                        w.name,
                        case.args
                    );
                }
            }
        }
    }
}

#[test]
fn rop_pipeline_is_bit_identical_to_the_direct_rewriter_across_seeds() {
    for class in ClassId::all() {
        for seed in SEEDS {
            let programs = classes::generate(class, seed);
            let cp = &programs[0];
            let w = &cp.workload;
            let mut direct = codegen::compile(&w.program).unwrap();
            let mut rw = Rewriter::new(RopConfig::ropk(1.0).with_seed(seed));
            let report = rw.rewrite_functions(&mut direct, w.obfuscate.iter().map(|s| s.as_str()));
            assert!(report.failures.is_empty(), "{}: {:?}", w.name, report.failures);

            let run = Pipeline::new()
                .pass(RopPass::ropk(1.0))
                .seed(seed)
                .run_program(&w.program, &w.obfuscate)
                .unwrap();
            assert!(run.report.failures.is_empty());
            assert_eq!(
                run.image,
                direct,
                "{}/{} seed {seed}: ROP pipeline vs direct rewrite",
                class.name(),
                w.name
            );
        }
    }
}

#[test]
fn two_layer_vm_pipeline_is_bit_identical_per_class() {
    let seed = SEEDS[0];
    for class in ClassId::all() {
        let programs = classes::generate(class, seed);
        let cp = cheapest(&programs);
        let w = &cp.workload;
        let vm_program = raindrop_obfvm::apply(&w.program, &w.entry, vm_cfg(2, seed)).unwrap();
        let direct = codegen::compile(&vm_program).unwrap();

        let run = Pipeline::new()
            .pass(VmPass::plain(2))
            .seed(seed)
            .run_program(&w.program, &[&w.entry])
            .unwrap();
        assert_eq!(run.image, direct, "{}/{}: 2VM pipeline vs direct apply", class.name(), w.name);
        assert_eq!(
            run_native(&run.image, &w.entry, &w.args),
            cp.reference_value(),
            "{}/{}: 2VM image still computes the reference checksum",
            class.name(),
            w.name
        );
    }
}

#[test]
fn vm_over_rop_pipeline_is_bit_identical_per_class() {
    let seed = SEEDS[1];
    for class in ClassId::all() {
        let programs = classes::generate(class, seed);
        let cp = cheapest(&programs);
        let w = &cp.workload;
        let inner = rop_inner_name(0, &w.entry);
        let mut split = w.program.clone();
        wrap_rop_target(&mut split, &w.entry, &inner).unwrap();
        let vm_program = raindrop_obfvm::apply(&split, &w.entry, vm_cfg(1, seed)).unwrap();
        let mut direct = codegen::compile(&vm_program).unwrap();
        let mut rw = Rewriter::new(RopConfig::ropk(1.0).with_seed(seed));
        rw.rewrite_function(&mut direct, &inner).unwrap();

        let run = Pipeline::new()
            .pass(RopPass::ropk(1.0))
            .pass(VmPass::plain(1))
            .seed(seed)
            .run_program(&w.program, &[&w.entry])
            .unwrap();
        assert!(run.report.failures.is_empty());
        assert_eq!(
            run.image,
            direct,
            "{}/{}: VM-over-ROP pipeline vs direct sequence",
            class.name(),
            w.name
        );
        assert_eq!(
            run_native(&run.image, &w.entry, &w.args),
            cp.reference_value(),
            "{}/{}: VM-over-ROP image still computes the reference checksum",
            class.name(),
            w.name
        );
    }
}

#[test]
fn smc_patch_site_survives_every_composition() {
    // The self-modifying driver publishes the absolute address of the
    // immediate it patches through the `smc_site` global, computed before
    // obfuscation. That is only sound if every composition leaves the cell
    // function's text where it was: pin it across ROP, 2VM and VM-over-ROP.
    let seed = SEEDS[2];
    for cp in classes::generate(ClassId::AdversarialIcache, seed) {
        let w = &cp.workload;
        let native = codegen::compile(&w.program).unwrap();
        let cell = native.function("smc_cell").unwrap().clone();
        for kind in [
            ObfKind::Rop { k: 1.0 },
            ObfKind::Vm { layers: 2, implicit: ImplicitAt::None },
            ObfKind::VmOverRop { k: 1.0, layers: 1, implicit: ImplicitAt::None },
        ] {
            let image = prepare_image(&w.program, &w.obfuscate, &kind, seed).expect("prepares");
            let moved = image.function("smc_cell").unwrap();
            assert_eq!(
                (moved.addr, moved.size),
                (cell.addr, cell.size),
                "{}: smc_cell must not move under {}",
                w.name,
                kind.label()
            );
            assert_eq!(
                run_native(&image, &w.entry, &w.args),
                cp.reference_value(),
                "{}: {} preserves the self-modifying checksum",
                w.name,
                kind.label()
            );
        }
    }
}

#[test]
fn rop_differential_catches_a_sabotaged_rewrite() {
    // Meta-check: the stepper differential actually has teeth. Corrupt one
    // byte of the rewritten chain's text and the verdicts must stop being
    // uniform matches.
    let cp = &classes::generate(ClassId::Application, SEEDS[0])[0];
    let w = &cp.workload;
    let native = codegen::compile(&w.program).unwrap();
    let rewritten =
        prepare_image(&w.program, &w.obfuscate, &ObfKind::Rop { k: 1.0 }, SEEDS[0]).unwrap();
    let cases = [TestCase::args(&w.args), TestCase::args(&[w.args[0] ^ 0x55])];
    assert!(verify_batch(&native, &rewritten, &w.entry, &cases).iter().all(Verdict::is_match));

    let mut sabotaged = rewritten.clone();
    let func = sabotaged.function(&w.entry).unwrap().clone();
    let off = (func.addr - sabotaged.text_base) as usize + 3;
    sabotaged.text[off] ^= 0x40;
    let verdicts = verify_batch(&native, &sabotaged, &w.entry, &cases);
    assert!(
        verdicts.iter().any(|v| !v.is_match()),
        "sabotaged rewrite must be detected, got {verdicts:?}"
    );
}
