//! Cross-crate integration test for the stack-switching runtime (Figs. 3-4):
//! ROP-rewritten functions calling native helpers, other ROP functions and
//! themselves (recursion), with the ss array staying balanced.

use raindrop::{Rewriter, RopConfig, SS_SYMBOL};
use raindrop_machine::Emulator;
use raindrop_synth::codegen;
use raindrop_synth::minic::{BinOp, Expr, Function, Program, Stmt};

fn fib_program() -> Program {
    // fib(n) recursive + a native helper add3(a, b) = a + b + 3 used inside.
    let add3 = Function {
        name: "add3".into(),
        params: 2,
        locals: 0,
        body: vec![Stmt::Return(Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, Expr::Arg(0), Expr::Arg(1)),
            Expr::c(3),
        ))],
    };
    let fib = Function {
        name: "fib".into(),
        params: 1,
        locals: 1,
        body: vec![
            Stmt::If(
                Expr::bin(BinOp::Lt, Expr::Arg(0), Expr::c(2)),
                vec![Stmt::Return(Expr::Arg(0))],
                vec![],
            ),
            Stmt::Assign(
                0,
                Expr::bin(
                    BinOp::Add,
                    Expr::Call("fib".into(), vec![Expr::bin(BinOp::Sub, Expr::Arg(0), Expr::c(1))]),
                    Expr::Call("fib".into(), vec![Expr::bin(BinOp::Sub, Expr::Arg(0), Expr::c(2))]),
                ),
            ),
            Stmt::Return(Expr::Var(0)),
        ],
    };
    let driver = Function {
        name: "driver".into(),
        params: 1,
        locals: 0,
        body: vec![Stmt::Return(Expr::Call(
            "add3".into(),
            vec![
                Expr::Call("fib".into(), vec![Expr::Arg(0)]),
                Expr::Call("fib".into(), vec![Expr::bin(BinOp::Sub, Expr::Arg(0), Expr::c(1))]),
            ],
        ))],
    };
    Program { functions: vec![add3, fib, driver], globals: vec![] }
}

fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

#[test]
fn rop_to_native_and_rop_to_rop_calls_with_recursion() {
    let program = fib_program();
    let original = codegen::compile(&program).unwrap();

    // Rewrite fib and driver, keep add3 native: the driver chain calls both
    // a ROP function (fib, recursive) and a native one (add3).
    let mut protected = original.clone();
    let mut rw = Rewriter::new(RopConfig::full());
    rw.rewrite_function(&mut protected, "fib").unwrap();
    rw.rewrite_function(&mut protected, "driver").unwrap();

    for n in [2u64, 5, 8, 10] {
        let mut emu_orig = Emulator::new(&original);
        let mut emu_obf = Emulator::new(&protected);
        emu_obf.set_budget(2_000_000_000);
        let expected = emu_orig.call_named(&original, "driver", &[n]).unwrap();
        assert_eq!(expected, fib(n) + fib(n - 1) + 3);
        let got = emu_obf.call_named(&protected, "driver", &[n]).unwrap();
        assert_eq!(got, expected, "driver({n})");
        // The stack-switching array must be balanced after every call.
        let ss = protected.symbol(SS_SYMBOL).unwrap();
        assert_eq!(emu_obf.mem.read_u64(ss), 0, "ss count balanced after driver({n})");
    }
}
