//! Differential suite pinning `raindrop::Pipeline` runs bit-identical to
//! the equivalent direct `Rewriter` / `obfvm::apply` call sequences, across
//! ROP-only, ROP-over-VM, VM-over-ROP and multi-layer-VM orders, plus seed
//! determinism. Any intentional change to how the pipeline plans, splits,
//! seeds or orders passes must update these tests consciously.

use raindrop::pipeline::{rop_inner_name, wrap_rop_target, Pipeline, RopPass, VmPass};
use raindrop::{Rewriter, RopConfig};
use raindrop_machine::{Emulator, Image};
use raindrop_obfvm::{ImplicitAt, VmConfig};
use raindrop_synth::{codegen, randomfuns, Goal};

const SEED: u64 = 5;

fn sample_rf() -> raindrop_synth::RandomFun {
    randomfuns::generate(raindrop_synth::RandomFunConfig {
        structure: randomfuns::Ctrl::for_(randomfuns::Ctrl::if_(
            randomfuns::Ctrl::bb(4),
            randomfuns::Ctrl::bb(4),
        )),
        structure_name: "(for (if (bb 4) (bb 4)))".into(),
        input_size: 2,
        seed: 7,
        goal: Goal::SecretFinding,
        loop_size: 3,
    })
}

fn vm_cfg(layers: usize) -> VmConfig {
    VmConfig { layers, implicit: ImplicitAt::None, seed: SEED }
}

fn assert_secret_works(image: &Image, name: &str, secret: u64, label: &str) {
    let mut emu = Emulator::new(image);
    emu.set_budget(2_000_000_000);
    assert_eq!(emu.call_named(image, name, &[secret]).unwrap(), 1, "{label}: secret accepted");
    assert_eq!(
        emu.call_named(image, name, &[secret ^ 1]).unwrap(),
        0,
        "{label}: non-secret rejected"
    );
}

#[test]
fn rop_only_pipeline_matches_direct_rewriter() {
    let rf = sample_rf();
    // Direct sequence: compile, then single-borrow Rewriter.
    let mut direct = codegen::compile(&rf.program).unwrap();
    let mut rw = Rewriter::new(RopConfig::ropk(1.0).with_seed(SEED));
    rw.rewrite_function(&mut direct, &rf.name).unwrap();

    let run = Pipeline::new()
        .pass(RopPass::ropk(1.0))
        .seed(SEED)
        .run_program(&rf.program, &[&rf.name])
        .unwrap();
    assert!(run.report.failures.is_empty());
    assert_eq!(run.image, direct, "pipeline ROP output is bit-identical to the direct rewrite");
}

#[test]
fn rop_over_vm_pipeline_matches_direct_sequence() {
    let rf = sample_rf();
    // Direct sequence: virtualize at the source level, compile, ROP-rewrite
    // the generated interpreter.
    let vm_program = raindrop_obfvm::apply(&rf.program, &rf.name, vm_cfg(1)).unwrap();
    let mut direct = codegen::compile(&vm_program).unwrap();
    let mut rw = Rewriter::new(RopConfig::ropk(0.25).with_seed(SEED));
    rw.rewrite_function(&mut direct, &rf.name).unwrap();

    let run = Pipeline::new()
        .pass(VmPass::plain(1))
        .pass(RopPass::ropk(0.25))
        .seed(SEED)
        .run_program(&rf.program, &[&rf.name])
        .unwrap();
    assert!(run.report.failures.is_empty());
    assert_eq!(run.image, direct, "ROP-over-VM is bit-identical to the direct sequence");
    assert_secret_works(&run.image, &rf.name, rf.secret_input, "rop-over-vm");
}

#[test]
fn vm_over_rop_pipeline_matches_direct_sequence() {
    let rf = sample_rf();
    // Direct sequence: split the target (inner body under the pipeline's
    // published inner name, wrapper with the public name), virtualize the
    // wrapper, compile, ROP-rewrite the inner function.
    let inner = rop_inner_name(0, &rf.name);
    let mut split = rf.program.clone();
    wrap_rop_target(&mut split, &rf.name, &inner).unwrap();
    let vm_program = raindrop_obfvm::apply(&split, &rf.name, vm_cfg(1)).unwrap();
    let mut direct = codegen::compile(&vm_program).unwrap();
    let mut rw = Rewriter::new(RopConfig::ropk(0.25).with_seed(SEED));
    rw.rewrite_function(&mut direct, &inner).unwrap();

    let run = Pipeline::new()
        .pass(RopPass::ropk(0.25))
        .pass(VmPass::plain(1))
        .seed(SEED)
        .run_program(&rf.program, &[&rf.name])
        .unwrap();
    assert!(run.report.failures.is_empty());
    assert_eq!(run.image, direct, "VM-over-ROP is bit-identical to the direct sequence");
    assert_secret_works(&run.image, &rf.name, rf.secret_input, "vm-over-rop");
}

#[test]
fn two_layer_vm_pipeline_matches_direct_apply() {
    let rf = sample_rf();
    let vm_program = raindrop_obfvm::apply(&rf.program, &rf.name, vm_cfg(2)).unwrap();
    let direct = codegen::compile(&vm_program).unwrap();

    let run = Pipeline::new()
        .pass(VmPass::plain(2))
        .seed(SEED)
        .run_program(&rf.program, &[&rf.name])
        .unwrap();
    assert_eq!(run.image, direct, "one 2-layer VmPass equals a direct layers=2 apply");
}

#[test]
fn stacked_vm_passes_match_apply_layers_with_base_offsets() {
    let rf = sample_rf();
    // Direct sequence: two apply_layers calls with explicit base layers, so
    // the second layer's symbols/opcode shuffle continue where the first
    // stopped.
    let first = raindrop_obfvm::apply_layers(&rf.program, &rf.name, vm_cfg(1), 0).unwrap();
    let second = raindrop_obfvm::apply_layers(&first.program, &rf.name, vm_cfg(1), 1).unwrap();
    let direct = codegen::compile(&second.program).unwrap();

    let run = Pipeline::new()
        .pass(VmPass::plain(1))
        .pass(VmPass::plain(1))
        .seed(SEED)
        .run_program(&rf.program, &[&rf.name])
        .unwrap();
    assert_eq!(run.image, direct, "stacked VmPasses equal chained apply_layers calls");
    assert_secret_works(&run.image, &rf.name, rf.secret_input, "vm-over-vm");
}

#[test]
fn multi_function_pipeline_matches_direct_rewrite_functions() {
    // Multi-target ROP follows `rewrite_functions` semantics (all scheduled
    // gadget ranges retired up front — no chain may reference a gadget a
    // later rewrite destroys), not a per-function rewrite loop.
    let w = raindrop_synth::workloads::sp_norm();
    assert!(w.obfuscate.len() >= 2, "workload must exercise multi-function preparation");
    let mut direct = codegen::compile(&w.program).unwrap();
    let mut rw = Rewriter::new(RopConfig::ropk(0.25).with_seed(SEED));
    let report = rw.rewrite_functions(&mut direct, w.obfuscate.iter().map(|s| s.as_str()));
    assert!(report.failures.is_empty(), "{:?}", report.failures);

    let run = Pipeline::new()
        .pass(RopPass::ropk(0.25))
        .seed(SEED)
        .run_program(&w.program, &w.obfuscate)
        .unwrap();
    assert!(run.report.failures.is_empty());
    assert_eq!(run.image, direct, "multi-function pipeline output matches rewrite_functions");
}

#[test]
fn pipeline_runs_are_seed_deterministic() {
    let rf = sample_rf();
    let build = |seed: u64, rop_first: bool| {
        let p = if rop_first {
            Pipeline::new().pass(RopPass::ropk(1.0)).pass(VmPass::plain(1))
        } else {
            Pipeline::new().pass(VmPass::plain(1)).pass(RopPass::ropk(1.0))
        };
        p.seed(seed).run_program(&rf.program, &[&rf.name]).unwrap().image
    };
    for rop_first in [false, true] {
        let a = build(3, rop_first);
        let b = build(3, rop_first);
        assert_eq!(a, b, "same seed, same composition, same image (rop_first={rop_first})");
        let c = build(4, rop_first);
        assert_ne!(a, c, "a different seed must change the image (rop_first={rop_first})");
    }
}

#[test]
fn pipeline_prepares_the_same_images_the_dse_speed_suite_froze() {
    // BENCH_dse.json compares wall clock over a fixed job list whose images
    // are now prepared through the pipeline; pin the ROP preparation path
    // to the direct sequence the frozen baseline used.
    let rf = sample_rf();
    let mut direct = codegen::compile(&rf.program).unwrap();
    let mut rw = Rewriter::new(RopConfig::ropk(1.0).with_seed(1));
    rw.rewrite_function(&mut direct, &rf.name).unwrap();
    let via_bench =
        raindrop_bench::prepare_randomfun(&rf, &raindrop_bench::ObfKind::Rop { k: 1.0 }, 1)
            .unwrap();
    assert_eq!(via_bench, direct);
}
