//! Figure 1 of the paper: a hand-built ROP chain with a non-linear control
//! flow that assigns RDI = 1 when RAX == 0 and RDI = 2 otherwise, using the
//! neg/adc flag leak and a variable RSP addend.

use raindrop_machine::{encode_all, AluOp, Assembler, Emulator, ImageBuilder, Inst, Reg};

#[test]
fn figure1_branching_chain_behaves_as_published() {
    // Gadget pool (the instruction sequences shown in the figure).
    let mut builder = ImageBuilder::new();
    let mut stub = Assembler::new();
    stub.inst(Inst::Ret);
    builder.add_function("stub", stub);
    let mut image = builder.build().unwrap();

    let g = |image: &mut raindrop_machine::Image, insts: &[Inst]| {
        let mut v = insts.to_vec();
        v.push(Inst::Ret);
        image.append_text(None, &encode_all(&v))
    };
    let pop_rcx = g(&mut image, &[Inst::Pop(Reg::Rcx)]);
    let neg_rax = g(&mut image, &[Inst::Neg(Reg::Rax)]);
    let adc = g(&mut image, &[Inst::Alu(AluOp::Adc, Reg::Rcx, Reg::Rcx)]);
    let pop_rsi = g(&mut image, &[Inst::Pop(Reg::Rsi)]);
    let neg_rcx = g(&mut image, &[Inst::Neg(Reg::Rcx)]);
    let and_rsi_rcx = g(&mut image, &[Inst::Alu(AluOp::And, Reg::Rsi, Reg::Rcx)]);
    let add_rsp_rsi = g(&mut image, &[Inst::Alu(AluOp::Add, Reg::Rsp, Reg::Rsi)]);
    let pop_rdi = g(&mut image, &[Inst::Pop(Reg::Rdi)]);
    let pop_rsi_rbp = g(&mut image, &[Inst::Pop(Reg::Rsi), Inst::Pop(Reg::Rbp)]);
    let hlt = image.append_text(None, &encode_all(&[Inst::Hlt]));

    // The chain of Figure 1 (gadget addresses interleaved with immediates).
    let chain: Vec<u64> = vec![
        pop_rcx,
        0x0,     // rcx = 0
        neg_rax, // CF = (rax != 0)
        adc,     // rcx = CF
        pop_rsi,
        0x18,        // rsi = 0x18 (branch displacement)
        neg_rcx,     // rcx = 0 or -1
        and_rsi_rcx, // rsi = 0 or 0x18
        add_rsp_rsi, // the ROP branch (skips 0x18 bytes = 3 slots)
        // fall-through path (rax == 0): rdi = 1, then the pop rsi/rbp gadget
        // disposes of the alternative 0x10-byte segment [pop rdi, 0x2] below
        pop_rdi,
        0x1,
        pop_rsi_rbp,
        // taken path (rax != 0): rdi = 2
        pop_rdi,
        0x2,
        // next: halt so the test can observe the registers
        hlt,
    ];
    let mut bytes = Vec::new();
    for v in &chain {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let chain_addr = image.append_data(Some("fig1_chain"), &bytes);

    for (rax, expected_rdi) in [(0u64, 1u64), (5, 2), (u64::MAX, 2)] {
        let mut emu = Emulator::new(&image);
        emu.set_reg(Reg::Rax, rax);
        emu.set_reg(Reg::Rsp, chain_addr);
        emu.cpu.rip = image.symbol("stub").unwrap(); // a bare `ret` starts the chain
        emu.run().unwrap();
        assert_eq!(emu.reg(Reg::Rdi), expected_rdi, "rax = {rax}");
    }
}
