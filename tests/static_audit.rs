//! Pipeline-integrated static audit, end to end:
//!
//! * **healthy sweep** — every registered workload class, under ROP, 2VM
//!   and both cross-layer compositions with `VerifyPolicy::Static`,
//!   produces a populated, clean audit without a single emulated
//!   instruction;
//! * **sabotage** — flipping one chain word, one VM bytecode byte or one
//!   switch-table relocation is caught by the static audit, and where the
//!   corruption is semantic the differential suite agrees the image is
//!   broken (the audit is not crying wolf);
//! * the audit's verdicts come typed ([`StaticDiagnostic`]), so each
//!   sabotage pins the *kind* of diagnostic, not just non-emptiness.

use raindrop::pipeline::{Pipeline, RopPass, VerifyPolicy, VmPass};
use raindrop::{
    audit_rop_function, verify_batch, Rewriter, RopConfig, StaticDiagnostic, TestCase, Verdict,
};
use raindrop_bench::ObfKind;
use raindrop_machine::{Assembler, Image, ImageBuilder, Inst, Mem, Reg};
use raindrop_obfvm::ImplicitAt;
use raindrop_synth::classes::{self, ClassId};
use raindrop_synth::Workload;

const SEED: u64 = 1;

fn compositions() -> Vec<ObfKind> {
    vec![
        ObfKind::Rop { k: 1.0 },
        ObfKind::Vm { layers: 2, implicit: ImplicitAt::Last },
        ObfKind::RopOverVm { k: 1.0, layers: 1, implicit: ImplicitAt::None },
        ObfKind::VmOverRop { k: 1.0, layers: 1, implicit: ImplicitAt::None },
    ]
}

fn run_static(w: &Workload, kind: &ObfKind) -> raindrop::pipeline::PipelineRun {
    kind.pipeline(SEED)
        .verify(VerifyPolicy::Static)
        .run_program(&w.program, &w.obfuscate)
        .expect("pipeline accepts the workload program")
}

/// The healthy sweep: zero diagnostics on every class under every
/// composition. The registry is enumerated, never hard-coded, so a class
/// added later is audited here automatically.
#[test]
fn every_class_and_composition_audits_clean() {
    for class in ClassId::all() {
        for cp in classes::generate(class, SEED) {
            let w = &cp.workload;
            for kind in compositions() {
                let run = run_static(w, &kind);
                assert!(
                    run.report.failures.is_empty(),
                    "{}/{}/{}: {:?}",
                    class.name(),
                    w.name,
                    kind.label(),
                    run.report.failures
                );
                assert!(run.report.verify.is_empty(), "static policy must not emulate");
                assert!(
                    run.report.audit_clean(),
                    "{}/{}/{}: {:?}",
                    class.name(),
                    w.name,
                    kind.label(),
                    run.report.audit_diagnostics().collect::<Vec<_>>()
                );
                assert!(
                    run.report.lints.is_empty(),
                    "{}/{}: corpus programs carry the zero-arg workaround",
                    class.name(),
                    w.name
                );
            }
        }
    }
}

fn first_workload() -> Workload {
    classes::generate(ClassId::SyntheticStress, SEED)
        .into_iter()
        .next()
        .expect("class generates")
        .workload
}

/// Flipping one 8-byte chain word is caught statically, and the
/// differential suite confirms the image really is broken.
#[test]
fn flipped_chain_word_is_flagged_and_breaks_the_image() {
    let w = first_workload();
    let kind = ObfKind::Rop { k: 1.0 };
    let run = run_static(&w, &kind);
    assert!(run.report.audit_clean());
    let chain_addr = run
        .report
        .passes
        .iter()
        .find_map(|p| p.rop())
        .and_then(|r| r.rewritten.first())
        .map(|r| r.chain_addr)
        .expect("ROP pass rewrote the target");

    let mut bad = run.image.clone();
    let off = (chain_addr - bad.data_base) as usize + 16;
    bad.data[off] ^= 0x20;

    let audit = kind.pipeline(SEED).verify(VerifyPolicy::Static).static_audit(&bad, &run.report);
    assert!(
        audit
            .iter()
            .flat_map(|e| &e.diagnostics)
            .any(|d| matches!(d, StaticDiagnostic::ChainBytesMismatch { .. })),
        "{audit:?}"
    );

    // The audit is not crying wolf: the differential suite disagrees too.
    let native = raindrop_synth::codegen::compile(&w.program).expect("compiles");
    let verdicts = verify_batch(&native, &bad, &w.entry, &[TestCase::args(&w.args)]);
    assert!(
        verdicts.iter().any(|v| !matches!(v, Verdict::Match { .. })),
        "a flipped chain word must not preserve semantics: {verdicts:?}"
    );
}

/// Flipping one VM bytecode byte is caught statically — by byte
/// comparison against the pass's snapshot, and (for structural bytes) by
/// re-decoding the emitted blob.
#[test]
fn flipped_vm_bytecode_byte_is_flagged_and_breaks_the_image() {
    let w = first_workload();
    let kind = ObfKind::Vm { layers: 2, implicit: ImplicitAt::Last };
    let run = run_static(&w, &kind);
    assert!(run.report.audit_clean());
    let target = &w.obfuscate[0];

    let mut bad = run.image.clone();
    let code_addr = bad.symbol(&format!("__vm0_{target}_code")).expect("layer-0 bytecode");
    let off = (code_addr - bad.data_base) as usize;
    bad.data[off] ^= 0xFF;

    let audit = kind.pipeline(SEED).verify(VerifyPolicy::Static).static_audit(&bad, &run.report);
    assert!(
        audit.iter().flat_map(|e| &e.diagnostics).any(|d| matches!(
            d,
            StaticDiagnostic::BytecodeMismatch { .. } | StaticDiagnostic::BytecodeDecode { .. }
        )),
        "{audit:?}"
    );

    let native = raindrop_synth::codegen::compile(&w.program).expect("compiles");
    let verdicts = verify_batch(&native, &bad, &w.entry, &[TestCase::args(&w.args)]);
    assert!(
        verdicts.iter().any(|v| !matches!(v, Verdict::Match { .. })),
        "a flipped opcode must not preserve semantics: {verdicts:?}"
    );
}

/// A compiler-shaped jump-table dispatch whose rewrite patches RSP
/// displacements into the original `.text` case addresses (Appendix A).
fn switch_image() -> Image {
    let mut b = ImageBuilder::new();
    let table_addr = b.add_data("jump_table", &[0u8; 64]);
    let mut asm = Assembler::new();
    asm.inst(Inst::MovRR(Reg::Rcx, Reg::Rdi));
    // Pad the entry block past the pivot-stub region: case blocks starting
    // inside the stub cannot receive their displacement patches.
    for _ in 0..8 {
        asm.inst(Inst::MovRI(Reg::Rax, 0));
    }
    asm.inst(Inst::JmpMem(Mem {
        base: None,
        index: Some(Reg::Rcx),
        scale: 8,
        disp: table_addr as i32,
    }));
    for (i, v) in [100i64, 200, 300, 400, 500, 600, 700, 800].iter().enumerate() {
        let l = asm.new_label();
        asm.bind(l);
        asm.inst(Inst::MovRI(Reg::Rax, *v + i as i64));
        asm.inst(Inst::Ret);
    }
    b.add_function("f", asm);
    let mut img = b.build().unwrap();

    // Patch the table with the laid-out case addresses.
    let code = raindrop_analysis::cfg::decode_function(&img, "f").unwrap();
    let case_addrs: Vec<u64> = code
        .insts
        .iter()
        .filter(|(_, i)| matches!(i, Inst::MovRI(Reg::Rax, v) if *v >= 100))
        .map(|(a, _)| *a)
        .collect();
    assert_eq!(case_addrs.len(), 8);
    let mut table = Vec::new();
    for a in &case_addrs {
        table.extend_from_slice(&a.to_le_bytes());
    }
    let off = (table_addr - img.data_base) as usize;
    img.data[off..off + 64].copy_from_slice(&table);
    img
}

/// Flipping one switch-table relocation (the RSP displacement the rewrite
/// stores at an original case address) is caught statically.
#[test]
fn flipped_switch_relocation_is_flagged() {
    let mut img = switch_image();
    let report = Rewriter::new(RopConfig::full())
        .rewrite_function(&mut img, "f")
        .expect("switch dispatch rewrites");
    let func = img.function("f").expect("retained").clone();
    let ranges = vec![("f".to_string(), func.addr, func.addr + func.size)];
    assert_eq!(audit_rop_function(&img, &report, &ranges), vec![]);

    let resolved = report.chain.resolve().expect("chain resolves");
    let (text_addr, _) =
        *resolved.switch_values.first().expect("a jump-table dispatch must produce switch patches");
    let off = (text_addr - img.text_base) as usize;
    img.text[off] ^= 0x08;
    let diags = audit_rop_function(&img, &report, &ranges);
    assert!(
        diags.iter().any(|d| matches!(d, StaticDiagnostic::SwitchPatchMismatch { .. })),
        "{diags:?}"
    );
}

/// The full pipeline equivalent of `VerifyPolicy::Batch` still passes on
/// an image that also carries a clean static audit: both policies agree
/// on healthy outputs.
#[test]
fn static_and_batch_policies_agree_on_healthy_outputs() {
    let w = first_workload();
    let target = &w.obfuscate[0];
    let static_run = Pipeline::new()
        .pass(VmPass::plain(1))
        .pass(RopPass::full())
        .seed(SEED)
        .verify(VerifyPolicy::Static)
        .run_program(&w.program, std::slice::from_ref(target))
        .expect("pipeline runs");
    assert!(static_run.report.audit_clean());

    let batch_run = Pipeline::new()
        .pass(VmPass::plain(1))
        .pass(RopPass::full())
        .seed(SEED)
        .verify(VerifyPolicy::Batch)
        .run_program(&w.program, std::slice::from_ref(target))
        .expect("pipeline runs");
    assert!(batch_run.report.all_verified(), "{:?}", batch_run.report.verify);
    assert_eq!(static_run.image, batch_run.image, "policies must not change the artifact");
}
