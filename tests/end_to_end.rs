//! End-to-end integration tests across crates: synth → obfuscate (VM and/or
//! ROP) → run → attack, plus a property test on the differential verifier.

use proptest::prelude::*;
use raindrop::{equivalent, Rewriter, RopConfig, TestCase};
use raindrop_bench::{prepare_randomfun, ObfKind};
use raindrop_machine::Emulator;
use raindrop_obfvm::ImplicitAt;
use raindrop_synth::{codegen, randomfuns, Goal};

fn sample_rf(seed: u64, input_size: usize, goal: Goal) -> raindrop_synth::RandomFun {
    randomfuns::generate(raindrop_synth::RandomFunConfig {
        structure: randomfuns::Ctrl::for_(randomfuns::Ctrl::if_(
            randomfuns::Ctrl::bb(4),
            randomfuns::Ctrl::bb(4),
        )),
        structure_name: "(for (if (bb 4) (bb 4)))".into(),
        input_size,
        seed,
        goal,
        loop_size: 3,
    })
}

#[test]
fn rop_over_vm_obfuscated_code_still_works() {
    // §IV-C: the rewriter can be applied on top of already-obfuscated code.
    let rf = sample_rf(5, 2, Goal::SecretFinding);
    let vm_program =
        raindrop_obfvm::apply(&rf.program, &rf.name, raindrop_obfvm::VmConfig::plain(1)).unwrap();
    let mut image = codegen::compile(&vm_program).unwrap();
    let mut rw = Rewriter::new(RopConfig::ropk(0.25));
    rw.rewrite_function(&mut image, &rf.name).unwrap();
    let mut emu = Emulator::new(&image);
    emu.set_budget(2_000_000_000);
    assert_eq!(emu.call_named(&image, &rf.name, &[rf.secret_input]).unwrap(), 1);
    assert_eq!(emu.call_named(&image, &rf.name, &[rf.secret_input ^ 1]).unwrap(), 0);
}

#[test]
fn every_table1_family_preserves_point_test_semantics() {
    let rf = sample_rf(9, 1, Goal::SecretFinding);
    for kind in [
        ObfKind::Native,
        ObfKind::Rop { k: 0.05 },
        ObfKind::Rop { k: 1.0 },
        ObfKind::Vm { layers: 1, implicit: ImplicitAt::All },
        ObfKind::Vm { layers: 2, implicit: ImplicitAt::Last },
    ] {
        let image = prepare_randomfun(&rf, &kind, 3).expect("prepare");
        let mut emu = Emulator::new(&image);
        emu.set_budget(2_000_000_000);
        assert_eq!(
            emu.call_named(&image, &rf.name, &[rf.secret_input]).unwrap(),
            1,
            "{}",
            kind.label()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Differential property: for random inputs, the ROP-rewritten coverage
    /// flavour computes exactly the same hash as the original.
    #[test]
    fn rewritten_hash_function_is_equivalent_on_random_inputs(
        seed in 1u64..6,
        inputs in proptest::collection::vec(any::<u64>(), 1..5)
    ) {
        let rf = sample_rf(seed, 2, Goal::CodeCoverage);
        let original = codegen::compile(&rf.program).unwrap();
        let mut protected = original.clone();
        let mut rw = Rewriter::new(RopConfig::full());
        rw.rewrite_function(&mut protected, &rf.name).unwrap();
        let cases: Vec<TestCase> = inputs
            .iter()
            .map(|i| TestCase::args(&[i & rf.input_mask()]))
            .collect();
        prop_assert!(equivalent(&original, &protected, &rf.name, &cases));
    }
}
