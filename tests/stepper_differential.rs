//! Differential stepper: the icache-backed fast path must be bit-identical
//! to the reference slow path (icache disabled, re-decode every fetch) —
//! same [`ExecStats`], same [`Trace`] contents, same [`RunExit`] — over
//! corpus workloads, both native and ROP-rewritten.

use raindrop::{Rewriter, RopConfig};
use raindrop_machine::{Emulator, Image, Reg, RunExit};
use raindrop_synth::{codegen, workloads};

/// Runs `entry(args)` to completion and returns (exit, stats, trace).
fn run_mode(
    image: &Image,
    entry: &str,
    args: &[u64],
    icache: bool,
    tracing: bool,
) -> (RunExit, raindrop_machine::ExecStats, raindrop_machine::Trace) {
    let mut emu = Emulator::new(image);
    emu.set_icache_enabled(icache);
    emu.set_tracing(tracing);
    emu.set_budget(50_000_000);
    let f = image.function(entry).expect("entry exists").addr;
    // Drive the run through step() directly (not run()) so the comparison
    // covers the exact per-step dispatch the attacks and verifier use.
    emu.cpu.set_reg(Reg::Rsp, raindrop_machine::STACK_TOP);
    for (r, v) in Reg::ARGS.iter().zip(args) {
        emu.cpu.set_reg(*r, *v);
    }
    let sp = emu.cpu.reg(Reg::Rsp) - 8;
    emu.cpu.set_reg(Reg::Rsp, sp);
    emu.mem.write_u64(sp, raindrop_machine::RETURN_SENTINEL);
    emu.cpu.rip = f;
    let exit = loop {
        if let Some(exit) = emu.step().expect("workload steps cleanly") {
            break exit;
        }
    };
    (exit, emu.stats(), emu.take_trace())
}

/// Asserts fast/reference agreement for one image+entry in all four
/// icache × tracing combinations.
fn assert_identical(image: &Image, entry: &str, args: &[u64], label: &str) {
    let (exit_ref, stats_ref, trace_ref) = run_mode(image, entry, args, false, true);
    let (exit_fast, stats_fast, trace_fast) = run_mode(image, entry, args, true, true);
    assert_eq!(exit_fast, exit_ref, "{label}: RunExit diverged");
    assert_eq!(stats_fast, stats_ref, "{label}: ExecStats diverged");
    assert_eq!(trace_fast.len(), trace_ref.len(), "{label}: trace length diverged");
    for (a, b) in trace_fast.iter().zip(trace_ref.iter()) {
        assert_eq!(a, b, "{label}: trace entry {} diverged", a.index);
    }

    // Non-tracing runs retire the identical instruction stream.
    let (exit_nt, stats_nt, trace_nt) = run_mode(image, entry, args, true, false);
    assert_eq!(exit_nt, exit_ref, "{label}: non-tracing RunExit diverged");
    assert_eq!(stats_nt, stats_ref, "{label}: non-tracing ExecStats diverged");
    assert!(trace_nt.is_empty(), "{label}: non-tracing run recorded a trace");
    let (exit_nt_ref, stats_nt_ref, _) = run_mode(image, entry, args, false, false);
    assert_eq!(exit_nt, exit_nt_ref, "{label}: non-tracing modes diverged");
    assert_eq!(stats_nt, stats_nt_ref, "{label}: non-tracing stats diverged");
}

#[test]
fn native_corpus_workloads_are_bit_identical() {
    for (w, args) in [
        (workloads::fannkuch(), vec![7u64]),
        (workloads::pidigits(), vec![30]),
        (workloads::fasta(), vec![200]),
    ] {
        let image = codegen::compile(&w.program).expect("compiles");
        assert_identical(&image, &w.entry, &args, &w.name);
    }
}

#[test]
fn rop_rewritten_chain_is_bit_identical() {
    // The ROP chain is the icache's worst case: unaligned gadget decodes,
    // dense `ret` dispatch, stack-pivot xchg traffic.
    let w = workloads::pidigits();
    let image = codegen::compile(&w.program).expect("compiles");
    let mut obf = image.clone();
    let mut rw = Rewriter::new(RopConfig::full().with_seed(7));
    for f in &w.obfuscate {
        rw.rewrite_function(&mut obf, f).expect("rewrites");
    }
    assert_identical(&obf, &w.entry, &[20], "pidigits-rop-full");
}

#[test]
fn halted_exit_is_bit_identical() {
    // `hlt` exits through a different path than the return sentinel; pin it.
    use raindrop_machine::{Assembler, ImageBuilder, Inst};
    let mut asm = Assembler::new();
    asm.inst(Inst::MovRI(Reg::Rax, 77)).inst(Inst::Hlt);
    let mut b = ImageBuilder::new();
    b.add_function("stop", asm);
    let img = b.build().unwrap();
    assert_identical(&img, "stop", &[], "hlt-exit");
    let (exit, _, _) = run_mode(&img, "stop", &[], true, false);
    assert_eq!(exit, RunExit::Halted);
}
