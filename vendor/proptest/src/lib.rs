//! Offline vendored stand-in for the subset of `proptest` this workspace uses.
//!
//! The build container has no crates.io access, so this crate re-implements
//! the surface the test suites rely on:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`, `prop_recursive`
//!   and `boxed`, plus [`strategy::Just`], [`strategy::Union`]
//!   (for `prop_oneof!`), integer-range strategies, tuple strategies up to
//!   arity 8, and [`collection::vec`];
//! * [`arbitrary::any`] for the primitive types the suites draw;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`] macros;
//! * a deterministic runner ([`test_runner`]) with `PROPTEST_CASES` /
//!   `PROPTEST_SEED` environment overrides and `proptest-regressions/`
//!   failure persistence.
//!
//! Shrinking is minimal: integer-range, `Vec`, tuple and `prop_filter`
//! strategies propose smaller failing inputs via [`strategy::Strategy::shrink`]
//! and the runner greedily re-tests candidates before reporting. Failure
//! persistence is unchanged from the pre-shrinking runner: the *original*
//! failing seed is recorded in `proptest-regressions/` and replayed on later
//! runs (replaying the seed regenerates the unshrunk case, which shrinks
//! again deterministically).

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// How many times a filtered strategy retries before giving up.
    const MAX_FILTER_RETRIES: u32 = 10_000;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no `ValueTree` machinery: `generate`
    /// directly produces a value from the RNG, and [`Strategy::shrink`]
    /// proposes simpler candidates from a failing value after the fact.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Proposes strictly simpler candidates for a failing `value`, most
        /// aggressive first. Every candidate must be a value this strategy
        /// could itself have generated (so invariants encoded in the
        /// strategy keep holding during shrinking). The default is no
        /// candidates, which disables shrinking for the strategy.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects generated values failing `pred`, retrying with fresh
        /// randomness. Panics (failing the test) if `pred` rejects
        /// everything for a long stretch.
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason: reason.into(), pred }
        }

        /// Builds a recursive strategy: `recurse` receives the strategy for
        /// the previous depth level and wraps it one level deeper. Each
        /// level is a 50/50 union with the leaf strategy, so generated
        /// structures stay small.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                current = Union::new(vec![leaf.clone(), recurse(current).boxed()]).boxed();
            }
            current
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe generation, backing [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
        fn shrink_dyn(&self, value: &T) -> Vec<T>;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
        fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
            self.shrink(value)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }

        fn shrink(&self, value: &T) -> Vec<T> {
            self.0.shrink_dyn(value)
        }

        fn boxed(self) -> BoxedStrategy<T>
        where
            Self: Sized + 'static,
        {
            self
        }
    }

    /// Strategy that always yields a clone of a fixed value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_FILTER_RETRIES {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted {MAX_FILTER_RETRIES} retries: {}", self.reason)
        }

        fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
            // Candidates the filter would have rejected at generation time
            // must not reappear during shrinking.
            self.inner.shrink(value).into_iter().filter(|v| (self.pred)(v)).collect()
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union over `alternatives`; panics if empty.
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
            Union(alternatives)
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.0.len());
            self.0[idx].generate(rng)
        }
    }

    /// Candidates between `lo` and a failing value `v`, most aggressive
    /// first: the lower bound itself, the midpoint, then `v`'s immediate
    /// predecessor. Arithmetic is i128-widened so every vendored integer
    /// type (including full-range `u64`/`i64`) is safe from overflow.
    pub(crate) fn shrink_int_toward(lo: i128, v: i128) -> Vec<i128> {
        if v <= lo {
            return Vec::new();
        }
        let mut out = vec![lo];
        let mid = lo + (v - lo) / 2;
        if mid != lo {
            out.push(mid);
        }
        let prev = v - 1;
        if prev != lo && prev != mid {
            out.push(prev);
        }
        out
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_int_toward(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_int_toward(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The empty tuple strategy, so that [`crate::proptest!`] bodies with no
    /// `arg in strategy` bindings still go through the shrinking runner.
    impl Strategy for () {
        type Value = ();
        fn generate(&self, _rng: &mut TestRng) {}
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // One component at a time, the others held fixed.
                    let mut out = Vec::new();
                    $(for candidate in self.$n.shrink(&value.$n) {
                        let mut next = value.clone();
                        next.$n = candidate;
                        out.push(next);
                    })+
                    out
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 S0)
        (0 S0, 1 S1)
        (0 S0, 1 S1, 2 S2)
        (0 S0, 1 S1, 2 S2, 3 S3)
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5)
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6)
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, Standard};
    use std::marker::PhantomData;

    /// Types with a canonical "draw any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Standard> Arbitrary for T {
        fn arbitrary(rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy generating any `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An inclusive-exclusive size window for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<T>` with a size drawn from a [`SizeRange`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            // Length reductions first (never below the strategy's minimum
            // size), then element-wise simplification at each position.
            let min = self.size.lo;
            let mut out = Vec::new();
            if value.len() > min {
                out.push(value[..min].to_vec());
                let half = min + (value.len() - min) / 2;
                if half != min && half != value.len() {
                    out.push(value[..half].to_vec());
                }
                if value.len() - 1 != min && value.len() - 1 != half {
                    out.push(value[..value.len() - 1].to_vec());
                }
            }
            for (i, element) in value.iter().enumerate() {
                for candidate in self.element.shrink(element) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    //! The deterministic case runner and its configuration.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Global cap on re-executions of the property during one shrink.
    const MAX_SHRINK_ATTEMPTS: u32 = 512;

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of fresh cases to run (before `PROPTEST_CASES` capping).
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion: the whole test fails.
        Fail(String),
        /// The case was rejected (`prop_assume!`): it is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The RNG handed to strategies. Deterministic per (test, case, seed).
    pub struct TestRng(StdRng);

    impl TestRng {
        fn from_seed_u64(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    mod persistence {
        //! `proptest-regressions/` seed persistence: failing seeds are
        //! recorded and replayed ahead of fresh cases on later runs.

        use std::io::Write;
        use std::path::PathBuf;

        fn file_for(test_name: &str) -> PathBuf {
            let sanitized: String = test_name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            PathBuf::from("proptest-regressions").join(format!("{sanitized}.txt"))
        }

        pub fn load(test_name: &str) -> Vec<u64> {
            let Ok(text) = std::fs::read_to_string(file_for(test_name)) else {
                return Vec::new();
            };
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .filter_map(|l| l.parse::<u64>().ok())
                .collect()
        }

        pub fn save(test_name: &str, seed: u64) {
            if load(test_name).contains(&seed) {
                return;
            }
            let path = file_for(test_name);
            let _ = std::fs::create_dir_all("proptest-regressions");
            let new = !path.exists();
            if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                if new {
                    let _ = writeln!(
                        f,
                        "# Seeds for failing cases of `{test_name}`.\n\
                         # Replayed before fresh cases on every run; keep this file in git."
                    );
                }
                let _ = writeln!(f, "{seed}");
            }
        }
    }

    /// Greedily minimises a failing `value`: keeps replacing it with the
    /// first [`Strategy::shrink`] candidate that still fails, until no
    /// candidate fails or `MAX_SHRINK_ATTEMPTS` (512) re-executions are spent.
    /// Returns the minimal failing value, its failure message, and the
    /// number of successful shrink steps taken. Rejected candidates
    /// (`prop_assume!`) are skipped, not treated as passes.
    pub fn shrink_to_minimal<S: Strategy>(
        strategy: &S,
        mut value: S::Value,
        mut message: String,
        case: &mut impl FnMut(S::Value) -> TestCaseResult,
    ) -> (S::Value, String, u32)
    where
        S::Value: Clone,
    {
        let mut steps = 0u32;
        let mut attempts = 0u32;
        'minimise: loop {
            for candidate in strategy.shrink(&value) {
                if attempts >= MAX_SHRINK_ATTEMPTS {
                    break 'minimise;
                }
                attempts += 1;
                if let Err(TestCaseError::Fail(msg)) = case(candidate.clone()) {
                    value = candidate;
                    message = msg;
                    steps += 1;
                    continue 'minimise;
                }
            }
            break;
        }
        (value, message, steps)
    }

    /// Like [`run_proptest`], but generation is split from execution so
    /// failing inputs can be shrunk: `strategy` produces the case value,
    /// `case` runs the property on it. Seed scheduling, rejection
    /// accounting and `proptest-regressions/` persistence are identical to
    /// [`run_proptest`] — the recorded seed is always the one that
    /// generated the *original* (unshrunk) failure, so replays regenerate
    /// and re-shrink it deterministically.
    pub fn run_proptest_shrink<S: Strategy>(
        config: ProptestConfig,
        test_name: &str,
        strategy: &S,
        mut case: impl FnMut(S::Value) -> TestCaseResult,
    ) where
        S::Value: Clone,
    {
        run_proptest(config, test_name, |rng| {
            let value = strategy.generate(rng);
            match case(value.clone()) {
                Err(TestCaseError::Fail(message)) => {
                    let (_, message, steps) =
                        shrink_to_minimal(strategy, value, message, &mut case);
                    Err(TestCaseError::Fail(if steps == 0 {
                        message
                    } else {
                        format!(
                            "{message}\n(input shrunk {steps} steps; the prop_assert \
                                 values above are from the minimal failing case)"
                        )
                    }))
                }
                other => other,
            }
        })
    }

    /// Drives one property test: replays persisted regression seeds, then
    /// runs `config.cases` fresh cases (capped by `PROPTEST_CASES`, base
    /// seed overridable via `PROPTEST_SEED`).
    pub fn run_proptest(
        config: ProptestConfig,
        test_name: &str,
        mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
    ) {
        let env_cases = std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse::<u32>().ok());
        let cases = env_cases.map_or(config.cases, |cap| config.cases.min(cap));
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| fnv1a(test_name.as_bytes()));

        let replay = persistence::load(test_name);
        let fresh = (0..cases as u64)
            .map(|i| base_seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));

        let mut rejected = 0u64;
        let mut ran = 0u64;
        for (replayed, seed) in replay.iter().map(|&s| (true, s)).chain(fresh.map(|s| (false, s))) {
            let mut rng = TestRng::from_seed_u64(seed);
            match case(&mut rng) {
                Ok(()) => ran += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    let limit = 256 + 16 * cases as u64;
                    assert!(
                        rejected <= limit,
                        "{test_name}: too many rejected cases ({rejected} > {limit}); \
                         loosen prop_assume! or the input strategies"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    if !replayed {
                        persistence::save(test_name, seed);
                    }
                    panic!(
                        "{test_name}: case failed (seed {seed}{}): {msg}\n\
                         re-run just this case with PROPTEST_SEED={seed} PROPTEST_CASES=1",
                        if replayed { ", replayed from proptest-regressions/" } else { "" }
                    );
                }
            }
        }
        let _ = ran;
    }
}

/// `prop::` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! Everything the test suites import via `use proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Chooses uniformly between the listed strategies (all must yield the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                l == r,
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                l == r,
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            ),
        }
    };
}

/// Fails the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                l != r,
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ),
        }
    };
}

/// Skips the current case unless `cond` holds (does not fail the test).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            // All bindings fold into one tuple strategy so the runner can
            // shrink the whole input vector; generation order (and hence
            // the RNG stream behind persisted seeds) matches the old
            // per-binding sequential draws exactly.
            let __proptest_strategy = ($(($strategy),)*);
            $crate::test_runner::run_proptest_shrink(
                $config,
                concat!(module_path!(), "::", stringify!($name)),
                &__proptest_strategy,
                |__proptest_value| {
                    let ($($arg,)*) = __proptest_value;
                    let __proptest_result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __proptest_result
                },
            );
        }
    )*};
}

#[cfg(test)]
mod shrink_tests {
    //! Direct-call shrinking tests. These never go through `run_proptest`,
    //! so they cannot touch `proptest-regressions/`.

    use crate::collection::vec;
    use crate::strategy::Strategy;
    use crate::test_runner::{shrink_to_minimal, TestCaseError, TestCaseResult};

    #[test]
    fn integer_ranges_shrink_toward_their_lower_bound() {
        assert_eq!((0u64..100).shrink(&57), vec![0, 28, 56]);
        assert_eq!((10u8..=200).shrink(&12), vec![10, 11]);
        assert_eq!((-8i32..8).shrink(&-8), Vec::<i32>::new());
        assert_eq!((0usize..4).shrink(&1), vec![0]);
        // Full-width extremes must not overflow the candidate arithmetic.
        assert_eq!((0u64..=u64::MAX).shrink(&u64::MAX)[0], 0);
        assert_eq!((i64::MIN..=i64::MAX).shrink(&i64::MAX)[0], i64::MIN);
    }

    #[test]
    fn shrink_candidates_stay_inside_their_range() {
        for value in [3u8, 14, 99, 200] {
            for candidate in (3u8..=200).shrink(&value) {
                assert!((3..=200).contains(&candidate), "{candidate} escaped the range");
                assert!(candidate < value, "{candidate} is not simpler than {value}");
            }
        }
    }

    #[test]
    fn vec_shrinking_reduces_length_without_violating_the_minimum() {
        let strategy = vec(0u8..=255, 2..=8);
        let candidates = strategy.shrink(&::std::vec![9, 9, 9, 9, 9, 9]);
        assert!(candidates.contains(&::std::vec![9, 9]), "truncation to the minimum size");
        assert!(candidates.contains(&::std::vec![9, 9, 9, 9]), "truncation to half");
        assert!(candidates.contains(&::std::vec![9, 9, 9, 9, 9]), "dropping the last element");
        assert!(candidates.contains(&::std::vec![0, 9, 9, 9, 9, 9]), "element-wise shrink");
        assert!(candidates.iter().all(|c| c.len() >= 2), "minimum size respected");
        assert!(strategy.shrink(&::std::vec![0, 0]).is_empty(), "minimal vec has no candidates");
    }

    #[test]
    fn filtered_strategies_never_propose_rejected_candidates() {
        let strategy = (0u32..100).prop_filter("even only", |v| v % 2 == 0);
        let candidates = strategy.shrink(&88);
        assert!(!candidates.is_empty());
        assert!(candidates.iter().all(|v| v % 2 == 0), "odd candidate leaked: {candidates:?}");
    }

    #[test]
    fn tuples_shrink_one_component_at_a_time() {
        let strategy = (0u8..10, 5i64..50);
        for (a, b) in strategy.shrink(&(7, 20)) {
            assert!(
                (a, b) == (7, 20) || (a == 7) != (b == 20),
                "candidate ({a}, {b}) changed both components at once"
            );
        }
        assert!(strategy.shrink(&(0, 5)).is_empty());
    }

    #[test]
    fn shrink_to_minimal_finds_the_boundary_of_a_threshold_failure() {
        // Property: "value < 10". The minimal counterexample is exactly 10.
        let mut runs = 0u32;
        let mut case = |v: u64| -> TestCaseResult {
            runs += 1;
            if v >= 10 {
                Err(TestCaseError::fail(format!("{v} too big")))
            } else {
                Ok(())
            }
        };
        let (minimal, message, steps) =
            shrink_to_minimal(&(0u64..1000), 857, "857 too big".to_string(), &mut case);
        assert_eq!(minimal, 10);
        assert_eq!(message, "10 too big");
        assert!(steps > 0 && runs < 100, "greedy bisection should converge fast (ran {runs})");
    }

    #[test]
    fn shrink_to_minimal_minimises_vectors_and_their_elements() {
        // Property: no element may be >= 5. Minimal: the shortest allowed
        // vector whose first element is exactly 5.
        let strategy = vec(0u8..=255, 1..=16);
        let mut case = |v: Vec<u8>| -> TestCaseResult {
            if v.iter().any(|&b| b >= 5) {
                Err(TestCaseError::fail(format!("{v:?} contains a big element")))
            } else {
                Ok(())
            }
        };
        let start = ::std::vec![200, 1, 77, 3, 250, 9, 8, 7];
        let message = "seed failure".to_string();
        let (minimal, _, _) = shrink_to_minimal(&strategy, start, message, &mut case);
        assert_eq!(minimal, ::std::vec![5]);
    }

    #[test]
    fn shrinking_respects_prop_assume_rejections() {
        // Rejected candidates must neither terminate the shrink nor be
        // accepted as the minimal case.
        let strategy = 0u32..100;
        let mut case = |v: u32| -> TestCaseResult {
            if v % 2 == 1 {
                Err(TestCaseError::reject("odd values are assumed away"))
            } else if v >= 40 {
                Err(TestCaseError::fail(format!("{v}")))
            } else {
                Ok(())
            }
        };
        let (minimal, _, _) = shrink_to_minimal(&strategy, 80, "80".to_string(), &mut case);
        assert_eq!(minimal % 2, 0, "a rejected candidate was accepted");
        assert_eq!(minimal, 40);
    }
}
