//! Offline vendored stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain data types,
//! renders reports with `serde_json::to_string_pretty`, and round-trips
//! checkpoint state through the [`Value`] data model. This crate provides:
//!
//! * a self-describing [`Value`] tree (the only serialization data model),
//! * a [`Serialize`] trait (`to_value`) with impls for the std types the
//!   workspace serializes,
//! * a [`Deserialize`] trait (`from_value`) mirroring every `Serialize`
//!   impl, so derived types round-trip `T -> Value -> T`,
//! * re-exported `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//!   from the vendored `serde_derive` proc-macro crate. The derives honour
//!   `#[serde(skip)]` (field omitted on write, defaulted on read) and
//!   `#[serde(default)]` (field defaulted when its key is missing).

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`]; `None` for other variants or
    /// missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Types that can be turned into a serialized [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Deserialization error: what was expected, what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with a preformatted message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// "expected X while deserializing T".
    pub fn expected(what: &str, ty: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// A required field was absent from the map.
    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An enum tag did not name any variant.
    pub fn unknown_variant(ty: &str, got: &str) -> DeError {
        DeError(format!("unknown variant `{got}` of {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be rebuilt from a serialized [`Value`] tree.
///
/// Every [`Serialize`] impl in this crate has a matching `Deserialize` that
/// accepts exactly what `to_value` produces (plus the obvious widenings:
/// integers accept either integer variant when in range, floats accept
/// integers). Derived impls mirror the derived `to_value` shape.
pub trait Deserialize: Sized {
    /// Rebuilds a value from the serialization data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls --------------------------------------------------------------

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t))),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t))),
                    Value::I64(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError::expected("in-range integer", stringify!($t))),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

// 128-bit integers exceed the I64/U64 variants; they travel as decimal
// strings (the checkpoint format stores solve-cache digests this way).
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s.parse().map_err(|_| DeError::expected("decimal string", "u128")),
            Value::U64(n) => Ok(*n as u128),
            _ => Err(DeError::expected("decimal string", "u128")),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s.parse().map_err(|_| DeError::expected("decimal string", "i128")),
            Value::I64(n) => Ok(*n as i128),
            Value::U64(n) => Ok(*n as i128),
            _ => Err(DeError::expected("decimal string", "i128")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(DeError::expected("single-char string", "char")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", "()")),
        }
    }
}

// --- reference / container impls --------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        items.try_into().map_err(|_| DeError::expected("sequence of exact length", "array"))
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        // HashMap iteration order is unstable; sort for deterministic output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<K, V> Deserialize for HashMap<K, V>
where
    K: std::str::FromStr + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key =
                        k.parse().map_err(|_| DeError::expected("parsable key", "HashMap"))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            _ => Err(DeError::expected("map", "HashMap")),
        }
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}
impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key =
                        k.parse().map_err(|_| DeError::expected("parsable key", "BTreeMap"))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            _ => Err(DeError::expected("map", "BTreeMap")),
        }
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($n),+].len();
                match v {
                    Value::Seq(items) if items.len() == ARITY => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(DeError::expected("sequence of tuple arity", "tuple")),
                }
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::F64(self.as_secs_f64())
    }
}
impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs =
            f64::from_value(v).map_err(|_| DeError::expected("seconds as a number", "Duration"))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(DeError::expected("finite non-negative seconds", "Duration"));
        }
        Ok(std::time::Duration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_string().to_value()), Ok("hi".to_string()));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        let big = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        assert_eq!(u128::from_value(&big.to_value()), Ok(big));
    }

    #[test]
    fn integer_widening_and_range_checks() {
        assert_eq!(u8::from_value(&Value::I64(200)), Ok(200));
        assert!(u8::from_value(&Value::I64(-1)).is_err());
        assert!(u8::from_value(&Value::U64(256)).is_err());
        assert_eq!(i64::from_value(&Value::U64(5)), Ok(5));
        assert!(i8::from_value(&Value::U64(u64::MAX)).is_err());
        assert_eq!(f64::from_value(&Value::U64(3)), Ok(3.0));
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![vec![1u64, 2], vec![3]];
        assert_eq!(Vec::<Vec<u64>>::from_value(&xs.to_value()), Ok(xs));
        let pair = (7u64, "x".to_string());
        assert_eq!(<(u64, String)>::from_value(&pair.to_value()), Ok(pair));
        let opt: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&opt.to_value()), Ok(None));
        assert_eq!(Option::<u64>::from_value(&Some(4u64).to_value()), Ok(Some(4)));
        let arr = [1u8, 2, 3];
        assert_eq!(<[u8; 3]>::from_value(&arr.to_value()), Ok(arr));
        let mut map = BTreeMap::new();
        map.insert("k".to_string(), 9u64);
        assert_eq!(BTreeMap::<String, u64>::from_value(&map.to_value()), Ok(map));
    }

    #[test]
    fn duration_round_trips_and_rejects_garbage() {
        let d = std::time::Duration::from_millis(1500);
        assert_eq!(std::time::Duration::from_value(&d.to_value()), Ok(d));
        assert!(std::time::Duration::from_value(&Value::Str("x".into())).is_err());
        assert!(std::time::Duration::from_value(&Value::F64(-1.0)).is_err());
    }

    #[test]
    fn type_mismatches_error_instead_of_defaulting() {
        assert!(Vec::<u64>::from_value(&Value::Bool(true)).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(<[u8; 2]>::from_value(&[1u8].to_value()).is_err());
        assert!(<(u64, u64)>::from_value(&(1u64,).to_value()).is_err());
    }
}
