//! Offline vendored stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain data types and
//! renders reports with `serde_json::to_string_pretty`. This crate provides:
//!
//! * a self-describing [`Value`] tree (the only serialization data model),
//! * a [`Serialize`] trait (`to_value`) with impls for the std types the
//!   workspace serializes,
//! * a marker [`Deserialize`] trait (nothing in the workspace deserializes),
//! * re-exported `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//!   from the vendored `serde_derive` proc-macro crate. The derive honours
//!   `#[serde(skip)]` on fields.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

/// Types that can be turned into a serialized [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Marker trait mirroring `serde::Deserialize`.
///
/// The workspace never deserializes anything, so the derive only has to
/// satisfy trait bounds; there is no method surface.
pub trait Deserialize: Sized {}

// --- primitive impls --------------------------------------------------------------

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {}

// --- reference / container impls --------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<K: std::fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        // HashMap iteration order is unstable; sort for deterministic output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {}
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::F64(self.as_secs_f64())
    }
}
impl Deserialize for std::time::Duration {}
