//! Offline vendored stand-in for `rand_chacha`.
//!
//! Exposes [`ChaCha8Rng`], [`ChaCha12Rng`] and [`ChaCha20Rng`] with the same
//! trait surface as the real crate (`RngCore` + `SeedableRng`). The
//! implementation is a real ChaCha block function over the seeded key, so
//! streams are deterministic per seed, though they are not guaranteed to be
//! bit-identical to upstream `rand_chacha` (nothing in this workspace relies
//! on cross-crate stream compatibility — only on per-seed determinism).

use rand::{RngCore, SeedableRng};

/// A ChaCha block-function based deterministic RNG with `R` double-rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word index in `buf`; 16 means "buffer exhausted".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaRng { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

/// ChaCha with 8 rounds (4 double-rounds).
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds (6 double-rounds).
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds (10 double-rounds).
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::ChaCha8Rng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        let mut c = ChaCha8Rng::seed_from_u64(100);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut ones = 0u32;
        for _ in 0..1024 {
            ones += rng.gen::<u64>().count_ones();
        }
        // 65536 bits total; expect ~32768 ones.
        assert!((30000..36000).contains(&ones), "bit balance off: {ones}");
    }
}
