//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! for the workspace's `serde` stand-in.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable in
//! this offline build environment, so the item grammar is parsed by hand from
//! the raw `proc_macro::TokenStream`. Supported shapes (everything the
//! workspace derives on):
//!
//! * structs with named fields (honouring `#[serde(skip)]` and
//!   `#[serde(default)]`),
//! * tuple and unit structs,
//! * enums with unit, tuple and struct variants.
//!
//! `Deserialize` generates a real `from_value` that mirrors the derived
//! `to_value` shape exactly: named structs read from a key map (missing keys
//! error unless the field is `#[serde(default)]`; `#[serde(skip)]` fields are
//! always defaulted), enums dispatch on the variant tag. Generic parameters
//! are not supported; no type in the workspace derives serde traits with
//! generics.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with the given arity; `skips[i]` is `#[serde(skip)]`.
    Tuple(Vec<bool>),
    Struct(Vec<Field>),
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Consumes leading outer attributes (`#[...]`), returning whether any was
/// `#[serde(skip)]` and whether any was `#[serde(default)]`.
fn eat_attrs(tokens: &[TokenTree], pos: &mut usize) -> (bool, bool) {
    let mut skip = false;
    let mut default = false;
    while *pos + 1 < tokens.len() {
        match (&tokens[*pos], &tokens[*pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde" {
                        let args = args.stream().to_string();
                        if args.contains("skip") {
                            skip = true;
                        }
                        if args.contains("default") {
                            default = true;
                        }
                    }
                }
                *pos += 2;
            }
            _ => break,
        }
    }
    (skip, default)
}

/// Consumes an optional `pub` / `pub(...)` visibility prefix.
fn eat_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Skips tokens until a `,` at angle-bracket depth zero, consuming the comma.
fn skip_past_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth: i32 = 0;
    while *pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*pos] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Parses `name: Type, ...` named-field lists (struct bodies, struct variants).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (skip, default) = eat_attrs(&tokens, &mut pos);
        eat_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        pos += 1; // field name
        pos += 1; // ':'
        skip_past_comma(&tokens, &mut pos);
        fields.push(Field { name, skip, default });
    }
    fields
}

/// Parses a tuple-field list `(Type, Type, ...)`, returning per-field skips.
fn parse_tuple_fields(stream: TokenStream) -> Vec<bool> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut skips = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (skip, _) = eat_attrs(&tokens, &mut pos);
        eat_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_past_comma(&tokens, &mut pos);
        skips.push(skip);
    }
    skips
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        eat_attrs(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_past_comma(&tokens, &mut pos);
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    // Skip attributes and visibility ahead of the `struct` / `enum` keyword.
    loop {
        eat_attrs(&tokens, &mut pos);
        eat_visibility(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break
            }
            Some(_) => pos += 1,
            None => panic!("serde_derive: expected `struct` or `enum`"),
        }
    }
    let is_enum = matches!(&tokens[pos], TokenTree::Ident(id) if id.to_string() == "enum");
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("serde_derive: expected item name"),
    };
    pos += 1;
    // Reject generics outright: nothing in the workspace needs them, and a
    // silent wrong expansion would be worse than a clear failure.
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }
    match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            } else {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct { name, arity: parse_tuple_fields(g.stream()).len() }
        }
        _ => Item::UnitStruct { name },
    }
}

fn serialize_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            format!(
                "({:?}.to_string(), ::serde::Serialize::to_value({}{})),",
                f.name, access_prefix, f.name
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(""))
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let map = serialize_named_fields(&fields, "&self.");
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{ {map} }}\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let expr = match arity {
                0 => "::serde::Value::Null".to_string(),
                1 => "::serde::Serialize::to_value(&self.0)".to_string(),
                n => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(","))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{ {expr} }}\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ));
                    }
                    VariantKind::Tuple(skips) => {
                        let binders: Vec<String> = skips
                            .iter()
                            .enumerate()
                            .map(
                                |(i, skip)| {
                                    if *skip {
                                        "_".to_string()
                                    } else {
                                        format!("__f{i}")
                                    }
                                },
                            )
                            .collect();
                        let live: Vec<String> = skips
                            .iter()
                            .enumerate()
                            .filter(|(_, skip)| !**skip)
                            .map(|(i, _)| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        let payload = if live.len() == 1 {
                            live[0].clone()
                        } else {
                            format!("::serde::Value::Seq(vec![{}])", live.join(","))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![({vname:?}.to_string(), {payload})]),",
                            binders.join(",")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<String> = fields
                            .iter()
                            .map(|f| if f.skip { format!("{}: _", f.name) } else { f.name.clone() })
                            .collect();
                        let map = serialize_named_fields(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![({vname:?}.to_string(), {map})]),",
                            binders.join(",")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\
                 }}"
            )
        }
    };
    body.parse().expect("serde_derive: generated impl failed to parse")
}

/// Field initializers for a named-field map read: present keys deserialize,
/// missing keys default (`#[serde(default)]`) or error; `#[serde(skip)]`
/// fields always default.
fn deserialize_named_fields(ty: &str, fields: &[Field], map_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            if f.skip {
                return format!("{}: ::std::default::Default::default(),", f.name);
            }
            let fallback = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!("return Err(::serde::DeError::missing_field({ty:?}, {:?}))", f.name)
            };
            format!(
                "{name}: match {map_var}.iter().find(|__e| __e.0 == {name:?}) {{\
                     Some(__e) => ::serde::Deserialize::from_value(&__e.1)?,\
                     None => {fallback},\
                 }},",
                name = f.name,
            )
        })
        .collect()
}

/// Constructor expression for a tuple variant/struct payload: live fields
/// read from the payload (a single bare value when exactly one field is
/// live, a `Seq` otherwise), skipped fields defaulted.
fn deserialize_tuple_payload(path: &str, skips: &[bool], payload_var: &str) -> String {
    let live: Vec<usize> = skips.iter().enumerate().filter(|(_, s)| !**s).map(|(i, _)| i).collect();
    if live.len() == 1 {
        let args: Vec<String> = skips
            .iter()
            .map(|s| {
                if *s {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!("::serde::Deserialize::from_value({payload_var})?")
                }
            })
            .collect();
        return format!("Ok({path}({}))", args.join(","));
    }
    let mut next = 0usize;
    let args: Vec<String> = skips
        .iter()
        .map(|s| {
            if *s {
                "::std::default::Default::default()".to_string()
            } else {
                let idx = next;
                next += 1;
                format!("::serde::Deserialize::from_value(&__xs[{idx}])?")
            }
        })
        .collect();
    format!(
        "match {payload_var} {{\
             ::serde::Value::Seq(__xs) if __xs.len() == {n} => Ok({path}({args})),\
             _ => Err(::serde::DeError::expected(\"variant payload sequence\", {path:?})),\
         }}",
        n = live.len(),
        args = args.join(","),
    )
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let inits = deserialize_named_fields(&name, &fields, "__m");
            // Bind the map only when some field reads from it, to keep the
            // generated code warning-free.
            let binder = if fields.iter().any(|f| !f.skip) { "__m" } else { "_" };
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\
                         match __v {{\
                             ::serde::Value::Map({binder}) => Ok({name} {{ {inits} }}),\
                             _ => Err(::serde::DeError::expected(\"map\", {name:?})),\
                         }}\
                     }}\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = match arity {
                0 => format!("Ok({name}())"),
                1 => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
                n => {
                    let args: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__xs[{i}])?"))
                        .collect();
                    format!(
                        "match __v {{\
                             ::serde::Value::Seq(__xs) if __xs.len() == {n} => Ok({name}({args})),\
                             _ => Err(::serde::DeError::expected(\"sequence\", {name:?})),\
                         }}",
                        args = args.join(","),
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\
                         {body}\
                     }}\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\
                 fn from_value(_: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\
                     Ok({name})\
                 }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in &variants {
                let vname = &v.name;
                let path = format!("{name}::{vname}");
                match &v.kind {
                    VariantKind::Unit => {
                        str_arms.push_str(&format!("{vname:?} => Ok({path}),"));
                    }
                    VariantKind::Tuple(skips) => {
                        let body = deserialize_tuple_payload(&path, skips, "__p");
                        map_arms.push_str(&format!("{vname:?} => {{ {body} }},"));
                    }
                    VariantKind::Struct(fields) => {
                        let inits = deserialize_named_fields(&path, fields, "__fm");
                        let binder = if fields.iter().any(|f| !f.skip) { "__fm" } else { "_" };
                        map_arms.push_str(&format!(
                            "{vname:?} => match __p {{\
                                 ::serde::Value::Map({binder}) => Ok({path} {{ {inits} }}),\
                                 _ => Err(::serde::DeError::expected(\"field map\", {path:?})),\
                             }},"
                        ));
                    }
                }
            }
            // Enums with payload-free variants never serialize to a map;
            // omit the map arm entirely so the payload binding can't go
            // unused in the generated code.
            let map_arm = if map_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Map(__m) if __m.len() == 1 => {{\
                         let __p = &__m[0].1;\
                         match __m[0].0.as_str() {{\
                             {map_arms}\
                             __other => Err(::serde::DeError::unknown_variant({name:?}, __other)),\
                         }}\
                     }},"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\
                         match __v {{\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\
                                 {str_arms}\
                                 __other => Err(::serde::DeError::unknown_variant({name:?}, __other)),\
                             }},\
                             {map_arm}\
                             _ => Err(::serde::DeError::expected(\"variant tag\", {name:?})),\
                         }}\
                     }}\
                 }}"
            )
        }
    };
    body.parse().expect("serde_derive: generated impl failed to parse")
}
