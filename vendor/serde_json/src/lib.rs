//! Offline vendored stand-in for the subset of `serde_json` this workspace
//! uses: [`to_string`] / [`to_string_pretty`] and [`from_str`] /
//! [`from_value`] over the vendored `serde` [`Value`] data model.

use serde::{Deserialize, Serialize, Value};

/// Serialization error. The vendored data model is infallible, so this is
/// only ever constructed for non-finite floats, which JSON cannot represent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convenience result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(value: &Value, out: &mut String, indent: Option<usize>) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} is not valid JSON")));
            }
            // Match serde_json: floats always carry a decimal point or exponent.
            let s = format!("{x}");
            if s.contains('.') || s.contains('e') || s.contains('E') {
                out.push_str(&s);
            } else {
                out.push_str(&s);
                out.push_str(".0");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                render(item, out, indent.map(|l| l + 1))?;
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent.map(|l| l + 1))?;
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None)?;
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(0))?;
    Ok(out)
}

/// Rebuilds a `T` from an already-parsed [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(|e| Error(e.to_string()))
}

/// Parses JSON text into a `T` (parse to [`Value`], then
/// [`Deserialize::from_value`]).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    from_value(&value_from_str(text)?)
}

/// Parses JSON text into a [`Value`] tree.
pub fn value_from_str(text: &str) -> Result<Value> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

/// Nesting depth cap for the recursive-descent parser: deeper input errors
/// instead of overflowing the stack.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_PARSE_DEPTH {
            return Err(Error("maximum nesting depth exceeded".into()));
        }
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                // `-0` parses as float-free but still needs the sign kept.
                if let Ok(n) = rest.parse::<u64>() {
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((n as i64).wrapping_neg()));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid unicode escape".into()))?,
                            );
                        }
                        _ => return Err(Error(format!("invalid escape at byte {}", self.pos - 1))),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character from the byte stream.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated unicode escape".into()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid unicode escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("invalid unicode escape".into()))?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering_roundtrips_structure() {
        let v = Value::Map(vec![("xs".into(), Value::Seq(vec![Value::I64(-3), Value::F64(1.5)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"xs\": [\n    -3,\n    1.5\n  ]"), "got: {s}");
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn parser_round_trips_rendered_values() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null, Value::I64(-3)])),
            ("c".into(), Value::Str("x\"y\\z\nnl\ttab \u{1f600} ok".into())),
            ("d".into(), Value::F64(1.5)),
            ("e".into(), Value::F64(-2.25e-3)),
            ("big".into(), Value::U64(u64::MAX)),
            ("min".into(), Value::I64(i64::MIN)),
        ]);
        assert_eq!(value_from_str(&to_string(&v).unwrap()).unwrap(), v);
        assert_eq!(value_from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn parser_handles_escapes_and_surrogate_pairs() {
        assert_eq!(
            value_from_str(r#""\u0041\u00e9\ud83d\ude00\/""#).unwrap(),
            Value::Str("Aé😀/".into())
        );
        assert_eq!(value_from_str("\"\\u000b\"").unwrap(), Value::Str("\u{000b}".into()));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(value_from_str("").is_err());
        assert!(value_from_str("{").is_err());
        assert!(value_from_str("[1,]").is_err());
        assert!(value_from_str("[1] x").is_err());
        assert!(value_from_str("\"\\ud800\"").is_err(), "lone high surrogate");
        assert!(value_from_str("nul").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(value_from_str(&deep).is_err(), "depth cap");
    }

    #[test]
    fn typed_from_str_round_trips() {
        let xs: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b\"c".into())];
        let text = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<(u64, String)>>(&text).unwrap(), xs);
        assert!(from_str::<Vec<u64>>("{\"not\":\"a seq\"}").is_err());
    }
}
