//! Offline vendored stand-in for the subset of `serde_json` this workspace
//! uses: [`to_string`] / [`to_string_pretty`] over the vendored `serde`
//! [`Value`] data model.

use serde::{Serialize, Value};

/// Serialization error. The vendored data model is infallible, so this is
/// only ever constructed for non-finite floats, which JSON cannot represent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convenience result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(value: &Value, out: &mut String, indent: Option<usize>) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} is not valid JSON")));
            }
            // Match serde_json: floats always carry a decimal point or exponent.
            let s = format!("{x}");
            if s.contains('.') || s.contains('e') || s.contains('E') {
                out.push_str(&s);
            } else {
                out.push_str(&s);
                out.push_str(".0");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                render(item, out, indent.map(|l| l + 1))?;
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent.map(|l| l + 1))?;
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None)?;
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(0))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering_roundtrips_structure() {
        let v = Value::Map(vec![("xs".into(), Value::Seq(vec![Value::I64(-3), Value::F64(1.5)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"xs\": [\n    -3,\n    1.5\n  ]"), "got: {s}");
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }
}
