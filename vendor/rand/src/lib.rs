//! Offline vendored stand-in for the subset of the `rand` 0.8 API that this
//! workspace uses.
//!
//! The container this repository builds in has no network access to
//! crates.io, so the workspace vendors a minimal, dependency-free
//! implementation of the traits and generators the crates rely on:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generators are deterministic xoshiro256**-based PRNGs. They do *not*
//! match upstream `rand`'s stream bit-for-bit; everything in this repository
//! that depends on reproducibility seeds its own RNG, so only internal
//! determinism matters.

/// Low-level source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A value that can be sampled uniformly from the "standard" distribution,
/// mirroring `rand::distributions::Standard` for the types the workspace uses.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample(rng) as f32
    }
}

/// A range that `Rng::gen_range` can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a u64 uniformly from `[0, span)` without modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the largest multiple of `span` that fits in u64.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }

    /// Fills `dest` with values drawn from the standard distribution.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by `from_seed`.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The deterministic xoshiro256** core shared by [`rngs::StdRng`] (and, with
/// a different initialisation tweak, the vendored `rand_chacha` generators).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Builds the generator from raw state, fixing up the all-zero state.
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xB7E1_5162_8AED_2A6B,
                0x243F_6A88_85A3_08D3,
            ];
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        Xoshiro256::from_state(s)
    }
}

/// Named standard generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The workspace's deterministic stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            StdRng(Xoshiro256::from_seed(seed))
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random helpers on slices: a subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
            let inc = rng.gen_range(0usize..=3);
            assert!(inc <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
