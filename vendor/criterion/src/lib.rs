//! Offline vendored stand-in for the subset of `criterion` this workspace
//! uses in its `harness = false` benches.
//!
//! It exposes [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is deliberately simple: each
//! benchmark runs `sample_size` timed samples (after one warm-up iteration)
//! and reports min / mean / max wall-clock time per iteration. There are no
//! statistical refinements, plots, or saved baselines — the point is that
//! `cargo bench` produces comparable numbers offline and that bench code
//! compiles against a criterion-shaped API.
//!
//! Benchmark name filters passed on the command line (`cargo bench -- foo`)
//! are honoured as substring matches. The `--quick` flag caps samples at 2;
//! `--test` runs every benchmark exactly once (cargo's bench-test mode).

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Parsed command-line options shared by every group in the binary.
#[derive(Debug, Clone)]
struct Options {
    /// Substring filters; empty means "run everything".
    filters: Vec<String>,
    /// Run each benchmark exactly once, untimed (cargo test mode).
    test_mode: bool,
    /// Cap samples at 2 for a fast smoke run.
    quick: bool,
}

impl Options {
    fn from_args() -> Self {
        let mut filters = Vec::new();
        let mut test_mode = false;
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--quick" => quick = true,
                "--bench" | "--profile-time" => {}
                s if s.starts_with('-') => {}
                s => filters.push(s.to_string()),
            }
        }
        Options { filters, test_mode, quick }
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }
}

/// Identifier for a parameterised benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    /// Measured per-sample durations, one per sample.
    measurements: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // One untimed warm-up iteration.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.measurements.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn run_one(full_name: &str, options: &Options, samples: usize, routine: impl FnOnce(&mut Bencher)) {
    if !options.matches(full_name) {
        return;
    }
    let samples = if options.quick { samples.min(2) } else { samples };
    let mut bencher = Bencher { samples, test_mode: options.test_mode, measurements: Vec::new() };
    routine(&mut bencher);
    if options.test_mode {
        println!("test {full_name} ... ok");
        return;
    }
    let m = &bencher.measurements;
    if m.is_empty() {
        println!("{full_name:<40} (no measurements)");
        return;
    }
    let total: Duration = m.iter().sum();
    let mean = total / m.len() as u32;
    let min = *m.iter().min().unwrap();
    let max = *m.iter().max().unwrap();
    println!(
        "{full_name:<40} time: [{} {} {}]  ({} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        m.len()
    );
}

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    options: &'a Options,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Ignored; accepted for criterion API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.options, self.sample_size, routine);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        routine: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.options, self.sample_size, |b| routine(b, input));
        self
    }

    /// Ends the group (a no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    options: Options,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { options: Options::from_args() }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, routine: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, &self.options, DEFAULT_SAMPLE_SIZE, routine);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            options: &self.options,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Criterion configuration hook; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
