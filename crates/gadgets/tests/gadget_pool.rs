//! Tests for gadget scanning, classification, synthesis and the catalog —
//! the "Gadget Finder" component of the rewriter (Fig. 2) plus the
//! diversity/confusion properties §V-D builds on.

use proptest::prelude::*;
use raindrop_gadgets::{
    classify, scan_bytes, scan_image, speculative_decode, synthesize, CatalogConfig, Gadget,
    GadgetCatalog, GadgetEnding, GadgetOp, ScanConfig, SynthConfig,
};
use raindrop_machine::{
    encode_all, AluOp, Assembler, Emulator, Image, ImageBuilder, Inst, Reg, RegSet, OP_RET,
    RETURN_SENTINEL,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn stub_image() -> Image {
    let mut asm = Assembler::new();
    asm.inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("stub", asm);
    b.build().unwrap()
}

// --- scanning -------------------------------------------------------------

#[test]
fn scanning_finds_the_pop_ret_gadgets_present_in_code() {
    let bytes = encode_all(&[
        Inst::MovRI(Reg::Rax, 1),
        Inst::Pop(Reg::Rdi),
        Inst::Ret,
        Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rbx),
        Inst::Ret,
    ]);
    let gadgets = scan_bytes(&bytes, 0x10_000, ScanConfig::default());
    assert!(
        gadgets.iter().any(|g| matches!(g.op, GadgetOp::Pop(Reg::Rdi)) && g.insts.len() == 1),
        "pop rdi; ret found"
    );
    assert!(
        gadgets.iter().any(|g| matches!(g.op, GadgetOp::Alu(AluOp::Add, Reg::Rax, Reg::Rbx))),
        "add rax, rbx; ret found"
    );
    // None of the scanned gadgets is marked artificial.
    assert!(gadgets.iter().all(|g| !g.artificial));
}

#[test]
fn scanning_never_includes_control_flow_inside_a_gadget() {
    let bytes = encode_all(&[
        Inst::Call(12),
        Inst::MovRI(Reg::Rax, 3),
        Inst::Ret,
        Inst::Jmp(-5),
        Inst::Pop(Reg::Rcx),
        Inst::Ret,
    ]);
    let gadgets = scan_bytes(&bytes, 0x10_000, ScanConfig::default());
    for g in &gadgets {
        assert!(
            !g.insts.iter().any(|i| i.is_terminator() || i.is_call()),
            "gadget at {:#x} contains control flow: {:?}",
            g.addr,
            g.insts
        );
    }
}

#[test]
fn scan_addresses_point_at_the_gadget_bytes() {
    let base = 0x4_0000u64;
    let bytes = encode_all(&[Inst::Neg(Reg::Rax), Inst::Pop(Reg::Rsi), Inst::Ret]);
    let gadgets = scan_bytes(&bytes, base, ScanConfig::default());
    for g in &gadgets {
        let off = (g.addr - base) as usize;
        // Re-decoding from the recorded address yields the recorded insts.
        let redecoded = speculative_decode(&bytes, off, 8);
        assert!(redecoded.len() >= g.insts.len());
        assert_eq!(&redecoded[..g.insts.len()], g.insts.as_slice());
    }
}

#[test]
fn scan_image_covers_every_ret_in_text() {
    let mut img = stub_image();
    img.append_text(None, &encode_all(&[Inst::Pop(Reg::R8), Inst::Ret]));
    img.append_text(None, &encode_all(&[Inst::MovRR(Reg::Rdx, Reg::Rcx), Inst::Ret]));
    let gadgets = scan_image(&img, ScanConfig::default());
    let ret_count = img.text.iter().filter(|b| **b == OP_RET).count();
    assert!(ret_count >= 3);
    assert!(gadgets.iter().any(|g| matches!(g.op, GadgetOp::Pop(Reg::R8))));
    assert!(gadgets.iter().any(|g| matches!(g.op, GadgetOp::MovRR(Reg::Rdx, Reg::Rcx))));
}

#[test]
fn speculative_decode_stops_at_ret_and_survives_garbage() {
    let mut bytes = encode_all(&[Inst::Pop(Reg::Rax), Inst::Ret, Inst::Pop(Reg::Rbx), Inst::Ret]);
    let insts = speculative_decode(&bytes, 0, 16);
    assert_eq!(insts.last(), Some(&Inst::Ret));
    assert!(insts.len() <= 2, "decoding stops at the first ret");
    // Garbage start offsets must not panic.
    bytes.insert(0, 0xF7);
    for off in 0..bytes.len() {
        let _ = speculative_decode(&bytes, off, 16);
    }
}

// --- classification ----------------------------------------------------------

#[test]
fn classification_identifies_primary_op_clobbers_and_junk_pops() {
    // mov r10, 5 ; pop rcx ; pop rdi ; ret — requested as a pop rdi gadget
    // the classifier must see: one junk pop (rcx), clobbers r10.
    let insts = vec![Inst::MovRI(Reg::R10, 5), Inst::Pop(Reg::Rcx), Inst::Pop(Reg::Rdi)];
    let (op, clobbers, junk, pollutes) = classify(&insts, GadgetEnding::Ret);
    assert_eq!(op, GadgetOp::Pop(Reg::Rdi), "the last pop is the primary operation");
    assert!(clobbers.contains(Reg::R10) || clobbers.contains(Reg::Rcx));
    assert_eq!(junk, vec![Reg::Rcx]);
    assert!(!pollutes, "mov and pop do not write flags");
}

#[test]
fn flag_writing_junk_is_reported_as_pollution() {
    let insts = vec![Inst::AluI(AluOp::Xor, Reg::R11, 3), Inst::Pop(Reg::Rdi)];
    let (op, _, _, pollutes) = classify(&insts, GadgetEnding::Ret);
    assert_eq!(op, GadgetOp::Pop(Reg::Rdi));
    assert!(pollutes, "xor writes the flags");
}

#[test]
fn add_rsp_gadgets_classify_as_the_rop_branch_primitive() {
    let insts = vec![Inst::Alu(AluOp::Add, Reg::Rsp, Reg::Rsi)];
    let (op, ..) = classify(&insts, GadgetEnding::Ret);
    assert_eq!(op, GadgetOp::AddRsp(Reg::Rsi));
}

#[test]
fn gadget_chain_slots_count_the_address_plus_every_pop() {
    let g = Gadget {
        addr: 0x1000,
        insts: vec![Inst::Pop(Reg::Rcx), Inst::MovRR(Reg::Rax, Reg::Rbx), Inst::Pop(Reg::Rdi)],
        ending: GadgetEnding::Ret,
        op: GadgetOp::Pop(Reg::Rdi),
        clobbers: RegSet::EMPTY,
        junk_pops: vec![Reg::Rcx],
        pollutes_flags: false,
        artificial: true,
    };
    assert_eq!(g.chain_slots(), 3, "1 address slot + 2 pops");
    assert_eq!(g.byte_len(), g.encode().len());
    assert_eq!(*g.encode().last().unwrap(), OP_RET);
}

// --- synthesis -----------------------------------------------------------------

#[test]
fn synthesized_gadgets_respect_the_clobber_set() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let avoid = RegSet::from_regs([Reg::Rax, Reg::Rbx, Reg::Rdi, Reg::Rsi]);
    for _ in 0..200 {
        let g = synthesize(GadgetOp::Pop(Reg::Rdx), avoid, false, SynthConfig::default(), &mut rng);
        assert_eq!(g.op, GadgetOp::Pop(Reg::Rdx));
        assert!(g.artificial);
        assert!(
            g.clobbers.intersection(avoid).is_empty(),
            "junk clobbers a protected register: {:?}",
            g.insts
        );
        assert_eq!(g.ending, GadgetEnding::Ret);
    }
}

#[test]
fn flag_preserving_synthesis_never_emits_flag_writing_junk() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for _ in 0..200 {
        let g = synthesize(
            GadgetOp::MovRR(Reg::Rax, Reg::Rbx),
            RegSet::EMPTY,
            true,
            SynthConfig { max_junk: 3, junk_prob: 1.0 },
            &mut rng,
        );
        assert!(!g.pollutes_flags, "flag pollution in {:?}", g.insts);
    }
}

#[test]
fn synthesis_produces_diverse_variants_for_one_operation() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut distinct = std::collections::BTreeSet::new();
    for _ in 0..64 {
        let g = synthesize(
            GadgetOp::Pop(Reg::Rdi),
            RegSet::EMPTY,
            false,
            SynthConfig { max_junk: 2, junk_prob: 0.8 },
            &mut rng,
        );
        distinct.insert(g.encode());
    }
    assert!(
        distinct.len() >= 8,
        "the synthesizer produced only {} distinct encodings for one op",
        distinct.len()
    );
}

#[test]
fn synthesized_gadgets_execute_correctly_as_chain_steps() {
    // Place a synthesized pop-rdi gadget into an image and drive it as a
    // one-gadget ROP chain: rdi must receive the immediate.
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let mut img = stub_image();
    let g =
        synthesize(GadgetOp::Pop(Reg::Rdi), RegSet::EMPTY, false, SynthConfig::default(), &mut rng);
    let addr = img.append_text(None, &g.encode());
    let mut chain = Vec::new();
    let junk_count = g.chain_slots() - 2; // one slot for the address, one real pop
    chain.extend_from_slice(&addr.to_le_bytes());
    // The primary pop is the *last* pop in the gadget; junk pops precede it.
    for _ in 0..junk_count {
        chain.extend_from_slice(&0xdeadu64.to_le_bytes());
    }
    chain.extend_from_slice(&1234u64.to_le_bytes());
    chain.extend_from_slice(&RETURN_SENTINEL.to_le_bytes());
    let chain_addr = img.append_data(Some("c"), &chain);
    let mut emu = Emulator::new(&img);
    emu.set_reg(Reg::Rsp, chain_addr);
    emu.cpu.rip = img.symbol("stub").unwrap();
    emu.run().unwrap();
    assert_eq!(emu.reg(Reg::Rdi), 1234);
}

// --- the catalog -----------------------------------------------------------------

#[test]
fn catalog_requests_always_return_a_suitable_gadget() {
    let mut img = stub_image();
    let mut catalog = GadgetCatalog::from_image(&img, CatalogConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let avoid = RegSet::from_regs([Reg::Rax, Reg::Rdi]);
    for op in [
        GadgetOp::Pop(Reg::Rsi),
        GadgetOp::AddRsp(Reg::Rsi),
        GadgetOp::MovRR(Reg::Rcx, Reg::Rdx),
        GadgetOp::Alu(AluOp::Xor, Reg::R8, Reg::R9),
        GadgetOp::Neg(Reg::R10),
    ] {
        let g = catalog.request(&mut img, op, avoid, true, &mut rng);
        assert_eq!(g.op, op);
        assert!(g.clobbers.intersection(avoid).is_empty());
        assert!(!g.pollutes_flags);
        assert!(img.in_text(g.addr), "gadget lives in .text");
    }
    let stats = catalog.stats();
    assert_eq!(stats.total_used, 5);
    assert!(stats.unique_used <= stats.total_used);
    assert!(stats.pool_size >= stats.unique_used);
}

#[test]
fn catalog_reuses_and_diversifies_according_to_its_configuration() {
    let mut img = stub_image();
    // diversity 0: after the first synthesis, the same gadget is reused.
    let cfg = CatalogConfig { diversity: 0.0, max_variants_per_op: 4, ..CatalogConfig::default() };
    let mut catalog = GadgetCatalog::from_image(&img, cfg);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut addrs = std::collections::BTreeSet::new();
    for _ in 0..20 {
        let g = catalog.request(&mut img, GadgetOp::Pop(Reg::R12), RegSet::EMPTY, false, &mut rng);
        addrs.insert(g.addr);
    }
    assert_eq!(addrs.len(), 1, "no diversity requested → one variant reused");
    let stats = catalog.stats();
    assert_eq!(stats.total_used, 20);
    assert_eq!(stats.unique_used, 1);

    // diversity 1: up to max_variants_per_op variants appear.
    let mut img2 = stub_image();
    let cfg2 = CatalogConfig { diversity: 1.0, max_variants_per_op: 3, ..CatalogConfig::default() };
    let mut catalog2 = GadgetCatalog::from_image(&img2, cfg2);
    let mut addrs2 = std::collections::BTreeSet::new();
    for _ in 0..30 {
        let g =
            catalog2.request(&mut img2, GadgetOp::Pop(Reg::R13), RegSet::EMPTY, false, &mut rng);
        addrs2.insert(g.addr);
    }
    assert!(addrs2.len() >= 2, "diversity produces multiple variants");
    assert!(addrs2.len() <= 3, "but no more than max_variants_per_op");
}

#[test]
fn artificial_gadgets_grow_text_and_are_counted() {
    let mut img = stub_image();
    let before = img.text.len();
    let mut catalog = GadgetCatalog::from_image(&img, CatalogConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for r in [Reg::Rbx, Reg::R14, Reg::R15] {
        catalog.request(&mut img, GadgetOp::Pop(r), RegSet::EMPTY, false, &mut rng);
    }
    assert!(img.text.len() > before, "artificial gadgets appended as dead code");
    assert!(catalog.stats().artificial >= 1);
    assert!(catalog.pool_size() >= 3);
}

#[test]
fn reset_stats_clears_usage_but_keeps_the_pool() {
    let mut img = stub_image();
    let mut catalog = GadgetCatalog::from_image(&img, CatalogConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    catalog.request(&mut img, GadgetOp::Pop(Reg::Rax), RegSet::EMPTY, false, &mut rng);
    let pool = catalog.pool_size();
    assert!(catalog.stats().total_used > 0);
    catalog.reset_stats();
    assert_eq!(catalog.stats().total_used, 0);
    assert_eq!(catalog.pool_size(), pool);
}

// --- property tests ---------------------------------------------------------------

fn any_gadget_op() -> impl Strategy<Value = GadgetOp> {
    let reg = (0usize..16).prop_map(|i| Reg::ALL[i]).prop_filter("not rsp", |r| !r.is_sp());
    let reg2 = (0usize..16).prop_map(|i| Reg::ALL[i]).prop_filter("not rsp", |r| !r.is_sp());
    let alu = (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i]);
    prop_oneof![
        reg.clone().prop_map(GadgetOp::Pop),
        reg.clone().prop_map(GadgetOp::AddRsp),
        (reg.clone(), reg2.clone()).prop_map(|(a, b)| GadgetOp::MovRR(a, b)),
        (alu, reg.clone(), reg2.clone()).prop_map(|(op, a, b)| GadgetOp::Alu(op, a, b)),
        reg.clone().prop_map(GadgetOp::Neg),
        reg.clone().prop_map(GadgetOp::Not),
        (reg.clone(), reg2.clone()).prop_map(|(a, b)| GadgetOp::Load(a, b)),
        (reg.clone(), reg2.clone()).prop_map(|(a, b)| GadgetOp::Store(a, b)),
        (reg, 1u8..32).prop_map(|(r, i)| GadgetOp::ShlImm(r, i)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Synthesis → classification is the identity on the primary operation,
    /// and the encoded bytes always end in `ret`.
    #[test]
    fn synthesis_classification_roundtrip(op in any_gadget_op(), seed in any::<u64>(),
                                          preserve_flags in any::<bool>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = synthesize(op, RegSet::EMPTY, preserve_flags, SynthConfig::default(), &mut rng);
        prop_assert_eq!(g.op, op);
        prop_assert_eq!(*g.encode().last().unwrap(), OP_RET);
        if preserve_flags {
            // Junk must not pollute; the primary op itself may (e.g. neg).
            let primary_writes = op.primary_inst().map(|i| i.writes_flags()).unwrap_or(false);
            prop_assert!(!g.pollutes_flags || primary_writes);
        }
        // Re-scanning the encoded bytes finds a gadget with the same op at
        // some offset (the gadget is visible to an attacker's scanner too).
        let scanned = scan_bytes(&g.encode(), 0x10_000, ScanConfig { max_insts: 8, max_lookback: 64 });
        prop_assert!(scanned.iter().any(|s| s.op == op));
    }

    /// Classification never reports the primary operation's own destination
    /// as a clobber.
    #[test]
    fn classification_excludes_primary_destination_from_clobbers(op in any_gadget_op(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = synthesize(op, RegSet::EMPTY, false, SynthConfig::default(), &mut rng);
        if let Some(primary) = op.primary_inst() {
            for r in primary.regs_written().iter() {
                prop_assert!(!g.clobbers.contains(r),
                    "primary destination {:?} listed as clobber in {:?}", r, g.insts);
            }
        }
    }
}

#[test]
fn retired_ranges_are_never_served_again() {
    // Scan an image whose only pop-r9 gadget lives inside a function that is
    // about to be rewritten (its body will be erased): after retiring that
    // range, requests must synthesize a fresh artificial gadget elsewhere.
    let mut asm = Assembler::new();
    asm.inst(Inst::MovRI(Reg::Rax, 1)).inst(Inst::Pop(Reg::R9)).inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("victim", asm);
    let mut img = b.build().unwrap();
    let victim = img.function("victim").unwrap().clone();

    let mut catalog = GadgetCatalog::from_image(
        &img,
        CatalogConfig { diversity: 0.0, ..CatalogConfig::default() },
    );
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let before = catalog.request(&mut img, GadgetOp::Pop(Reg::R9), RegSet::EMPTY, false, &mut rng);
    assert!(
        before.addr >= victim.addr && before.addr < victim.addr + victim.size,
        "without retirement the scanned in-function gadget is preferred"
    );

    let retired = catalog.retire_range(victim.addr, victim.addr + victim.size);
    assert!(retired >= 1);
    let after = catalog.request(&mut img, GadgetOp::Pop(Reg::R9), RegSet::EMPTY, false, &mut rng);
    assert!(
        after.addr >= victim.addr + victim.size,
        "after retirement only gadgets outside the erased body are served"
    );
    assert!(after.artificial);
    // Retiring the same range again is a no-op.
    assert_eq!(catalog.retire_range(victim.addr, victim.addr + victim.size), 0);
}
