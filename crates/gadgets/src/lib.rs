//! # raindrop-gadgets
//!
//! Gadget discovery, synthesis and management for the *raindrop* ROP
//! obfuscator: the reproduction of the "Gadget Finder" component of the
//! rewriter architecture (Fig. 2 of the DSN'21 paper).
//!
//! * [`gadget`] — gadget model and classification;
//! * [`scan`] — ret-oriented scanning of `.text` (also reused by the
//!   attacker-side gadget-guessing analysis);
//! * [`synth`] — artificial, diversified gadget synthesis;
//! * [`catalog`] — the unified pool the chain crafter draws from, with the
//!   usage statistics reported in Table III.
//!
//! # Example
//!
//! ```
//! use raindrop_gadgets::{CatalogConfig, GadgetCatalog, GadgetOp};
//! use raindrop_machine::{Assembler, ImageBuilder, Inst, Reg, RegSet};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new();
//! asm.inst(Inst::Ret);
//! let mut builder = ImageBuilder::new();
//! builder.add_function("stub", asm);
//! let mut image = builder.build()?;
//! let mut catalog = GadgetCatalog::from_image(&image, CatalogConfig::default());
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let gadget = catalog.request(
//!     &mut image,
//!     GadgetOp::Pop(Reg::Rdi),
//!     RegSet::EMPTY,
//!     false,
//!     &mut rng,
//! );
//! assert!(image.in_text(gadget.addr));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod gadget;
pub mod scan;
pub mod synth;

pub use catalog::{CatalogConfig, GadgetCatalog, GadgetStats};
pub use gadget::{classify, Gadget, GadgetEnding, GadgetOp};
pub use scan::{scan_bytes, scan_image, speculative_decode, ScanConfig};
pub use synth::{synthesize, SynthConfig};
