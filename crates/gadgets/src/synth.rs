//! Artificial gadget synthesis.
//!
//! The paper's key deployment observation (§IV-A1): unlike an attacker, the
//! obfuscator controls the binary, so any missing gadget can be *added* as
//! dead code in `.text`, and — most importantly — many diversified variants
//! of one same operation can be created. A variant differs from the plain
//! gadget by junk instructions that are dynamically dead in the surrounding
//! chain (extra `pop`s fed junk immediates, register moves over dead
//! registers), which defeats byte-pattern recognition of specific sequences.

use crate::gadget::{classify, Gadget, GadgetEnding, GadgetOp};
use raindrop_machine::{Inst, Reg, RegSet};
use rand::Rng;

/// Controls how much junk is woven into synthesized gadgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Maximum number of junk instructions inserted before the primary
    /// operation.
    pub max_junk: usize,
    /// Probability that each junk slot is filled.
    pub junk_prob: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { max_junk: 2, junk_prob: 0.6 }
    }
}

/// Registers that junk instructions may freely use as scratch.
fn scratch_candidates(op: GadgetOp, avoid: RegSet) -> Vec<Reg> {
    let mut reserved = avoid;
    reserved.insert(Reg::Rsp);
    if let Some(inst) = op.primary_inst() {
        reserved = reserved.union(inst.regs_read()).union(inst.regs_written());
    }
    if let GadgetOp::XchgRspMemJmp(a, t) = op {
        reserved.insert(a);
        reserved.insert(t);
    }
    Reg::ALL.iter().copied().filter(|r| !reserved.contains(*r)).collect()
}

/// Synthesizes one gadget variant for `op`.
///
/// Junk instructions only touch registers outside `avoid_clobber` (and the
/// operation's own registers). When `preserve_flags` is set, junk is limited
/// to flag-neutral instructions so the gadget can be used at points where the
/// original program's status register is live.
pub fn synthesize<R: Rng + ?Sized>(
    op: GadgetOp,
    avoid_clobber: RegSet,
    preserve_flags: bool,
    config: SynthConfig,
    rng: &mut R,
) -> Gadget {
    let scratch = scratch_candidates(op, avoid_clobber);
    let mut insts: Vec<Inst> = Vec::new();

    // The JOP stack-switch gadget must stay a bare two-instruction sequence:
    // its classification (and the call protocol built on it) admits no junk.
    let allow_junk = !matches!(op, GadgetOp::XchgRspMemJmp(..));
    if allow_junk && !scratch.is_empty() {
        for _ in 0..config.max_junk {
            if rng.gen_bool(config.junk_prob) {
                let a = scratch[rng.gen_range(0..scratch.len())];
                let b = scratch[rng.gen_range(0..scratch.len())];
                // A small menu of dynamically dead junk. Flag-writing junk is
                // only allowed when the caller said flags are dead here.
                let choice = rng.gen_range(0..if preserve_flags { 3 } else { 5 });
                let junk = match choice {
                    0 => Inst::MovRR(a, b),
                    1 => Inst::MovRI(a, rng.gen_range(0..0x10000) as i64),
                    2 => Inst::Not(a),
                    3 => Inst::AluI(raindrop_machine::AluOp::Xor, a, rng.gen_range(0..256)),
                    _ => Inst::Pop(a),
                };
                insts.push(junk);
            }
        }
    }

    let ending = match op {
        GadgetOp::XchgRspMemJmp(addr_reg, target) => {
            insts.push(Inst::XchgRM(Reg::Rsp, raindrop_machine::Mem::base(addr_reg)));
            GadgetEnding::JmpReg(target)
        }
        _ => {
            insts.push(op.primary_inst().unwrap_or(Inst::Nop));
            GadgetEnding::Ret
        }
    };

    let (classified_op, clobbers, junk_pops, pollutes_flags) = classify(&insts, ending);
    debug_assert_eq!(
        classified_op, op,
        "synthesized gadget must classify back to the requested operation"
    );
    Gadget {
        addr: 0, // assigned when the gadget is appended to the image
        insts,
        ending,
        op,
        clobbers,
        junk_pops,
        pollutes_flags,
        artificial: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_machine::AluOp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthesized_gadget_classifies_to_requested_op() {
        let mut rng = StdRng::seed_from_u64(1);
        for op in [
            GadgetOp::Pop(Reg::Rdi),
            GadgetOp::AddRsp(Reg::Rsi),
            GadgetOp::Alu(AluOp::Adc, Reg::Rcx, Reg::Rcx),
            GadgetOp::Cmov(raindrop_machine::Cond::Ne, Reg::Rax, Reg::Rbx),
            GadgetOp::Load(Reg::Rax, Reg::Rdi),
            GadgetOp::Store(Reg::Rdi, Reg::Rax),
            GadgetOp::XchgRspMemJmp(Reg::Rbx, Reg::Rcx),
        ] {
            let g = synthesize(op, RegSet::EMPTY, false, SynthConfig::default(), &mut rng);
            assert_eq!(g.op, op);
            assert!(g.artificial);
            assert!(!g.encode().is_empty());
        }
    }

    #[test]
    fn junk_respects_avoid_set() {
        let mut rng = StdRng::seed_from_u64(7);
        let avoid = RegSet::from_regs([Reg::Rax, Reg::Rbx, Reg::Rcx, Reg::Rdx, Reg::Rdi, Reg::Rsi]);
        for _ in 0..50 {
            let g = synthesize(
                GadgetOp::Pop(Reg::R8),
                avoid,
                false,
                SynthConfig { max_junk: 3, junk_prob: 1.0 },
                &mut rng,
            );
            assert!(g.clobbers.intersection(avoid).is_empty(), "clobbers {}", g.clobbers);
        }
    }

    #[test]
    fn flag_preserving_variants_do_not_pollute_flags() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let g = synthesize(
                GadgetOp::MovRR(Reg::Rax, Reg::Rbx),
                RegSet::EMPTY,
                true,
                SynthConfig { max_junk: 3, junk_prob: 1.0 },
                &mut rng,
            );
            assert!(!g.pollutes_flags, "gadget {g} pollutes flags");
        }
    }

    #[test]
    fn diversity_produces_distinct_encodings() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut encodings = std::collections::HashSet::new();
        for _ in 0..30 {
            let g = synthesize(
                GadgetOp::Pop(Reg::Rdi),
                RegSet::EMPTY,
                false,
                SynthConfig { max_junk: 2, junk_prob: 0.8 },
                &mut rng,
            );
            encodings.insert(g.encode());
        }
        assert!(encodings.len() > 5, "expected diversified variants, got {}", encodings.len());
    }
}
