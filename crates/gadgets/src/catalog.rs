//! The gadget catalog: the rewriter's "gadget finder" (Fig. 2 of the paper).
//!
//! The catalog combines two sources of gadgets, exactly as §IV-A1 describes:
//! gadgets already present in program parts left unobfuscated (found by the
//! [`scan`](crate::scan) module) and *artificial* gadgets appended as dead
//! code to `.text` on demand. Requests are made per semantic operation; the
//! catalog diversifies by keeping several equivalent variants per operation
//! and picking among them at random, and it keeps the usage statistics that
//! Table III of the paper reports (total vs. unique gadgets used).

use crate::gadget::{Gadget, GadgetOp};
use crate::scan::{scan_image, ScanConfig};
use crate::synth::{synthesize, SynthConfig};
use raindrop_machine::{Image, RegSet};
use rand::Rng;
use std::collections::HashMap;

/// Catalog configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogConfig {
    /// Probability of synthesizing a *new* variant when equivalent gadgets
    /// already exist (gadget diversity).
    pub diversity: f64,
    /// Maximum number of variants kept per exact operation.
    pub max_variants_per_op: usize,
    /// Configuration of the initial scan over pre-existing code.
    pub scan: ScanConfig,
    /// Configuration of the artificial-gadget synthesizer.
    pub synth: SynthConfig,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            diversity: 0.35,
            max_variants_per_op: 4,
            scan: ScanConfig::default(),
            synth: SynthConfig::default(),
        }
    }
}

/// Usage statistics (Table III of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct GadgetStats {
    /// Total number of gadget uses across all chains (column A).
    pub total_used: u64,
    /// Number of distinct gadgets used at least once (column B).
    pub unique_used: u64,
    /// Number of gadgets in the pool (found + synthesized).
    pub pool_size: u64,
    /// Number of artificial gadgets appended to `.text`.
    pub artificial: u64,
}

/// The gadget catalog.
#[derive(Debug, Clone)]
pub struct GadgetCatalog {
    gadgets: Vec<Gadget>,
    by_op: HashMap<GadgetOp, Vec<usize>>,
    usage: Vec<u64>,
    retired: Vec<bool>,
    config: CatalogConfig,
    total_requests: u64,
}

impl GadgetCatalog {
    /// Creates an empty catalog (gadgets will all be synthesized on demand).
    pub fn new(config: CatalogConfig) -> GadgetCatalog {
        GadgetCatalog {
            gadgets: Vec::new(),
            by_op: HashMap::new(),
            usage: Vec::new(),
            retired: Vec::new(),
            config,
            total_requests: 0,
        }
    }

    /// Creates a catalog seeded with the gadgets already present in the
    /// image's `.text` section.
    pub fn from_image(image: &Image, config: CatalogConfig) -> GadgetCatalog {
        let mut cat = GadgetCatalog::new(config);
        for g in scan_image(image, config.scan) {
            cat.insert(g);
        }
        cat
    }

    fn insert(&mut self, g: Gadget) -> usize {
        let idx = self.gadgets.len();
        self.by_op.entry(g.op).or_default().push(idx);
        self.gadgets.push(g);
        self.usage.push(0);
        self.retired.push(false);
        idx
    }

    /// Retires every gadget whose first byte lies in `[start, end)`.
    ///
    /// The rewriter calls this for the address range of each function it is
    /// about to rewrite: materialization replaces that body with the pivot
    /// stub plus `hlt` filler, so gadgets scanned from it would be destroyed.
    /// This keeps the pool limited to artificial gadgets and gadgets from
    /// "program parts left unobfuscated" (§IV-A1 of the paper). Returns how
    /// many gadgets were retired.
    pub fn retire_range(&mut self, start: u64, end: u64) -> usize {
        let mut retired = 0;
        for (i, g) in self.gadgets.iter().enumerate() {
            if !self.retired[i] && g.addr >= start && g.addr < end {
                self.retired[i] = true;
                retired += 1;
            }
        }
        retired
    }

    /// Number of gadgets currently in the pool.
    pub fn pool_size(&self) -> usize {
        self.gadgets.len()
    }

    /// All gadgets in the pool.
    pub fn gadgets(&self) -> &[Gadget] {
        &self.gadgets
    }

    fn suitable(&self, op: GadgetOp, avoid_clobber: RegSet, preserve_flags: bool) -> Vec<usize> {
        self.by_op
            .get(&op)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&i| {
                        let g = &self.gadgets[i];
                        !self.retired[i]
                            && g.clobbers.intersection(avoid_clobber).is_empty()
                            && (!preserve_flags || !g.pollutes_flags)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Requests a gadget implementing `op` that clobbers no register in
    /// `avoid_clobber` (and, when `preserve_flags` is set, does not pollute
    /// the condition flags).
    ///
    /// If no suitable gadget exists — or the diversity roll asks for a fresh
    /// variant — a new artificial gadget is synthesized, appended as dead
    /// code to the image's `.text` section, and returned. Every successful
    /// request counts towards the usage statistics.
    pub fn request<R: Rng + ?Sized>(
        &mut self,
        image: &mut Image,
        op: GadgetOp,
        avoid_clobber: RegSet,
        preserve_flags: bool,
        rng: &mut R,
    ) -> Gadget {
        self.total_requests += 1;
        let candidates = self.suitable(op, avoid_clobber, preserve_flags);
        let want_new = candidates.is_empty()
            || (candidates.len() < self.config.max_variants_per_op
                && rng.gen_bool(self.config.diversity));

        let idx = if want_new {
            let mut g = synthesize(op, avoid_clobber, preserve_flags, self.config.synth, rng);
            let addr = image.append_text(None, &g.encode());
            g.addr = addr;
            self.insert(g)
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        self.usage[idx] += 1;
        self.gadgets[idx].clone()
    }

    /// Usage statistics accumulated so far.
    pub fn stats(&self) -> GadgetStats {
        GadgetStats {
            total_used: self.usage.iter().sum(),
            unique_used: self.usage.iter().filter(|&&u| u > 0).count() as u64,
            pool_size: self.gadgets.len() as u64,
            artificial: self.gadgets.iter().filter(|g| g.artificial).count() as u64,
        }
    }

    /// Resets usage counters (pool contents are kept).
    pub fn reset_stats(&mut self) {
        for u in &mut self.usage {
            *u = 0;
        }
        self.total_requests = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_machine::{Assembler, ImageBuilder, Inst, Reg};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empty_image() -> Image {
        let mut a = Assembler::new();
        a.inst(Inst::MovRI(Reg::Rax, 0)).inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("noop", a);
        b.build().unwrap()
    }

    #[test]
    fn missing_gadgets_are_synthesized_and_land_in_text() {
        let mut img = empty_image();
        let before = img.text.len();
        let mut cat = GadgetCatalog::from_image(&img, CatalogConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let g = cat.request(&mut img, GadgetOp::Pop(Reg::Rdi), RegSet::EMPTY, false, &mut rng);
        assert!(g.addr >= img.text_base + before as u64);
        assert!(img.text.len() > before);
        // The appended bytes really are the gadget.
        let slice = img.text_slice(g.addr, g.byte_len()).unwrap();
        assert_eq!(slice, g.encode().as_slice());
    }

    #[test]
    fn preexisting_gadgets_are_reused() {
        let mut img = empty_image();
        // The noop function itself contains a `ret`, and appending a
        // hand-made pop gadget makes it discoverable by the scan.
        img.append_text(None, &raindrop_machine::encode_all(&[Inst::Pop(Reg::Rdi), Inst::Ret]));
        let mut cat = GadgetCatalog::from_image(
            &img,
            CatalogConfig { diversity: 0.0, ..CatalogConfig::default() },
        );
        let pool_before = cat.pool_size();
        assert!(pool_before >= 1);
        let text_before = img.text.len();
        let mut rng = StdRng::seed_from_u64(2);
        let g = cat.request(&mut img, GadgetOp::Pop(Reg::Rdi), RegSet::EMPTY, false, &mut rng);
        assert!(!g.artificial);
        assert_eq!(img.text.len(), text_before, "no new gadget was appended");
    }

    #[test]
    fn avoid_clobber_is_respected() {
        let mut img = empty_image();
        let mut cat = GadgetCatalog::new(CatalogConfig {
            diversity: 1.0,
            max_variants_per_op: 8,
            ..CatalogConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let avoid = RegSet::from_regs([Reg::Rax, Reg::Rbx, Reg::Rcx]);
        for _ in 0..20 {
            let g = cat.request(&mut img, GadgetOp::Pop(Reg::Rdi), avoid, true, &mut rng);
            assert!(g.clobbers.intersection(avoid).is_empty());
            assert!(!g.pollutes_flags);
        }
    }

    #[test]
    fn stats_track_total_and_unique_usage() {
        let mut img = empty_image();
        let mut cat = GadgetCatalog::new(CatalogConfig {
            diversity: 0.5,
            max_variants_per_op: 3,
            ..CatalogConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..40 {
            cat.request(&mut img, GadgetOp::Pop(Reg::Rsi), RegSet::EMPTY, false, &mut rng);
        }
        let stats = cat.stats();
        assert_eq!(stats.total_used, 40);
        assert!(stats.unique_used >= 1 && stats.unique_used <= 3);
        assert!(stats.unique_used <= stats.pool_size);
        assert_eq!(stats.artificial, stats.pool_size);
        cat.reset_stats();
        assert_eq!(cat.stats().total_used, 0);
    }

    #[test]
    fn diversity_zero_converges_to_a_single_variant() {
        let mut img = empty_image();
        let mut cat =
            GadgetCatalog::new(CatalogConfig { diversity: 0.0, ..CatalogConfig::default() });
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            cat.request(&mut img, GadgetOp::Neg(Reg::Rax), RegSet::EMPTY, false, &mut rng);
        }
        assert_eq!(cat.stats().unique_used, 1);
    }
}
