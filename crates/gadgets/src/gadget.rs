//! Gadget representation and classification.
//!
//! A gadget is a short instruction sequence ending in `ret` (or, for the one
//! JOP gadget the design needs, `jmp reg`) that the chain crafter uses as its
//! instruction-selection vocabulary (§IV-B2 of the paper). Each gadget is
//! classified by the *primary operation* it performs; any other register it
//! writes is recorded as a clobber, and any extra `pop` consumes one chain
//! slot (the crafter fills those with junk immediates, which is one source of
//! the "dynamically dead instructions" diversity of §V-D).

use raindrop_machine::{AluOp, Cond, Inst, Mem, Reg, RegSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The semantic operation a gadget provides to the chain crafter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GadgetOp {
    /// `pop reg` — loads the next chain slot into `reg`.
    Pop(Reg),
    /// `add rsp, reg` — the ROP branch primitive.
    AddRsp(Reg),
    /// `mov dst, src`.
    MovRR(Reg, Reg),
    /// `mov dst, qword [src]`.
    Load(Reg, Reg),
    /// `mov qword [dst], src`.
    Store(Reg, Reg),
    /// `movzx dst, byte [src]`.
    LoadByte(Reg, Reg),
    /// `movsx dst, byte [src]`.
    LoadByteSx(Reg, Reg),
    /// `mov byte [dst], src`.
    StoreByte(Reg, Reg),
    /// `op dst, src`.
    Alu(AluOp, Reg, Reg),
    /// `op dst, qword [src]`.
    AluLoad(AluOp, Reg, Reg),
    /// `op qword [dst], src`.
    AluStore(AluOp, Reg, Reg),
    /// `neg reg`.
    Neg(Reg),
    /// `not reg`.
    Not(Reg),
    /// `imul dst, src`.
    Mul(Reg, Reg),
    /// `div dst, src` (unsigned quotient).
    Div(Reg, Reg),
    /// `rem dst, src` (unsigned remainder).
    Rem(Reg, Reg),
    /// `shl reg, imm`.
    ShlImm(Reg, u8),
    /// `shr reg, imm`.
    ShrImm(Reg, u8),
    /// `sar reg, imm`.
    SarImm(Reg, u8),
    /// `shl dst, src`.
    ShlReg(Reg, Reg),
    /// `shr dst, src`.
    ShrReg(Reg, Reg),
    /// `cmp a, b`.
    Cmp(Reg, Reg),
    /// `test a, b`.
    Test(Reg, Reg),
    /// `cmov<cc> dst, src`.
    Cmov(Cond, Reg, Reg),
    /// `set<cc> reg`.
    Set(Cond, Reg),
    /// `xchg rsp, qword [addr]; jmp target` — the stack-switching JOP gadget
    /// used when calling native code (§IV-B2, step C).
    XchgRspMemJmp(Reg, Reg),
    /// A sequence with no recognized primary operation (still interesting
    /// for statistics and for confusing pattern-matching attackers).
    Unclassified,
}

impl GadgetOp {
    /// A stable, register-independent key used to group equivalent shapes.
    pub fn kind_name(&self) -> &'static str {
        use GadgetOp::*;
        match self {
            Pop(_) => "pop",
            AddRsp(_) => "add_rsp",
            MovRR(..) => "mov_rr",
            Load(..) => "load",
            Store(..) => "store",
            LoadByte(..) => "load_byte",
            LoadByteSx(..) => "load_byte_sx",
            StoreByte(..) => "store_byte",
            Alu(..) => "alu",
            AluLoad(..) => "alu_load",
            AluStore(..) => "alu_store",
            Neg(_) => "neg",
            Not(_) => "not",
            Mul(..) => "mul",
            Div(..) => "div",
            Rem(..) => "rem",
            ShlImm(..) => "shl_imm",
            ShrImm(..) => "shr_imm",
            SarImm(..) => "sar_imm",
            ShlReg(..) => "shl_reg",
            ShrReg(..) => "shr_reg",
            Cmp(..) => "cmp",
            Test(..) => "test",
            Cmov(..) => "cmov",
            Set(..) => "set",
            XchgRspMemJmp(..) => "xchg_rsp_mem_jmp",
            Unclassified => "unclassified",
        }
    }

    /// The primary instruction (without the terminating `ret`) implementing
    /// this operation, when a single instruction suffices.
    pub fn primary_inst(&self) -> Option<Inst> {
        use GadgetOp::*;
        Some(match *self {
            Pop(r) => Inst::Pop(r),
            AddRsp(r) => Inst::Alu(AluOp::Add, Reg::Rsp, r),
            MovRR(d, s) => Inst::MovRR(d, s),
            Load(d, s) => Inst::Load(d, Mem::base(s)),
            Store(d, s) => Inst::Store(Mem::base(d), s),
            LoadByte(d, s) => Inst::LoadB(d, Mem::base(s)),
            LoadByteSx(d, s) => Inst::LoadSxB(d, Mem::base(s)),
            StoreByte(d, s) => Inst::StoreB(Mem::base(d), s),
            Alu(op, d, s) => Inst::Alu(op, d, s),
            AluLoad(op, d, s) => Inst::AluM(op, d, Mem::base(s)),
            AluStore(op, d, s) => Inst::AluStore(op, Mem::base(d), s),
            Neg(r) => Inst::Neg(r),
            Not(r) => Inst::Not(r),
            Mul(d, s) => Inst::Mul(d, s),
            Div(d, s) => Inst::Div(d, s),
            Rem(d, s) => Inst::Rem(d, s),
            ShlImm(r, i) => Inst::Shl(r, i),
            ShrImm(r, i) => Inst::Shr(r, i),
            SarImm(r, i) => Inst::Sar(r, i),
            ShlReg(d, s) => Inst::ShlR(d, s),
            ShrReg(d, s) => Inst::ShrR(d, s),
            Cmp(a, b) => Inst::Cmp(a, b),
            Test(a, b) => Inst::Test(a, b),
            Cmov(c, d, s) => Inst::Cmov(c, d, s),
            Set(c, r) => Inst::Set(c, r),
            XchgRspMemJmp(..) | Unclassified => return None,
        })
    }
}

impl fmt::Display for GadgetOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.primary_inst() {
            Some(i) => write!(f, "{i}"),
            None => match self {
                GadgetOp::XchgRspMemJmp(a, t) => write!(f, "xchg rsp, [{a}]; jmp {t}"),
                _ => write!(f, "<unclassified>"),
            },
        }
    }
}

/// How a gadget transfers control onwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GadgetEnding {
    /// Ends with `ret` (the normal case).
    Ret,
    /// Ends with `jmp reg` (JOP, used only for the native-call stack switch).
    JmpReg(Reg),
}

/// A classified gadget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gadget {
    /// Absolute address of the first instruction.
    pub addr: u64,
    /// The instructions, *excluding* the terminating `ret`/`jmp`.
    pub insts: Vec<Inst>,
    /// How the gadget ends.
    pub ending: GadgetEnding,
    /// The primary operation the chain crafter can use this gadget for.
    pub op: GadgetOp,
    /// Registers written beyond those of the primary operation.
    pub clobbers: RegSet,
    /// Number of `pop` instructions besides one belonging to the primary
    /// operation: each consumes one 8-byte chain slot that the crafter must
    /// fill with a junk immediate.
    pub junk_pops: Vec<Reg>,
    /// Whether any instruction besides the primary operation writes the
    /// condition flags (relevant when flags are live across the gadget).
    pub pollutes_flags: bool,
    /// Whether the gadget was synthesized by the obfuscator (as opposed to
    /// found in pre-existing code).
    pub artificial: bool,
}

impl Gadget {
    /// Total number of chain slots the gadget consumes when executed: one
    /// for its own address plus one per `pop` (primary or junk).
    pub fn chain_slots(&self) -> usize {
        1 + self.insts.iter().filter(|i| matches!(i, Inst::Pop(_))).count()
    }

    /// Byte length of the encoded gadget, including the terminator.
    pub fn byte_len(&self) -> usize {
        let term = match self.ending {
            GadgetEnding::Ret => raindrop_machine::encoded_len(&Inst::Ret),
            GadgetEnding::JmpReg(r) => raindrop_machine::encoded_len(&Inst::JmpReg(r)),
        };
        self.insts.iter().map(raindrop_machine::encoded_len).sum::<usize>() + term
    }

    /// Encodes the gadget (instructions plus terminator) to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = raindrop_machine::encode_all(self.insts.iter());
        match self.ending {
            GadgetEnding::Ret => out.extend(raindrop_machine::encode(&Inst::Ret)),
            GadgetEnding::JmpReg(r) => out.extend(raindrop_machine::encode(&Inst::JmpReg(r))),
        }
        out
    }
}

impl fmt::Display for Gadget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: ", self.addr)?;
        for i in &self.insts {
            write!(f, "{i}; ")?;
        }
        match self.ending {
            GadgetEnding::Ret => write!(f, "ret"),
            GadgetEnding::JmpReg(r) => write!(f, "jmp {r}"),
        }
    }
}

/// Classifies a ret-terminated instruction sequence (terminator excluded).
///
/// The classification is intentionally conservative: the *last* instruction
/// is taken as the primary operation, every other written register becomes a
/// clobber, and sequences that touch memory or the stack pointer outside the
/// recognized shapes are [`GadgetOp::Unclassified`] (the crafter will not
/// select them, but they still populate the pool an attacker sees).
pub fn classify(insts: &[Inst], ending: GadgetEnding) -> (GadgetOp, RegSet, Vec<Reg>, bool) {
    let mut clobbers = RegSet::new();
    let mut junk_pops = Vec::new();
    let mut pollutes_flags = false;

    // JOP stack-switch gadget: exactly `xchg rsp, [a]` + `jmp t`.
    if let GadgetEnding::JmpReg(target) = ending {
        if insts.len() == 1 {
            if let Inst::XchgRM(Reg::Rsp, m) = insts[0] {
                if m.index.is_none() && m.disp == 0 {
                    if let Some(base) = m.base {
                        return (
                            GadgetOp::XchgRspMemJmp(base, target),
                            RegSet::new(),
                            vec![],
                            false,
                        );
                    }
                }
            }
        }
        return (GadgetOp::Unclassified, RegSet::new(), vec![], false);
    }

    let Some((last, prefix)) = insts.split_last() else {
        return (GadgetOp::Unclassified, RegSet::new(), vec![], false);
    };

    for inst in prefix {
        match inst {
            Inst::Pop(r) => {
                junk_pops.push(*r);
                clobbers.insert(*r);
            }
            Inst::MovRR(d, _) | Inst::MovRI(d, _) | Inst::Not(d) => {
                clobbers.insert(*d);
            }
            Inst::Alu(_, d, _)
            | Inst::AluI(_, d, _)
            | Inst::Neg(d)
            | Inst::Shl(d, _)
            | Inst::Shr(d, _)
            | Inst::Sar(d, _) => {
                clobbers.insert(*d);
                pollutes_flags = true;
            }
            Inst::Nop => {}
            _ => {
                // Anything with memory traffic, control flow or the stack
                // pointer in the prefix makes the gadget unusable for
                // crafting.
                return (GadgetOp::Unclassified, RegSet::new(), vec![], false);
            }
        }
        if inst.regs_written().contains(Reg::Rsp) && !matches!(inst, Inst::Pop(_)) {
            return (GadgetOp::Unclassified, RegSet::new(), vec![], false);
        }
    }

    let op = match *last {
        Inst::Pop(r) => GadgetOp::Pop(r),
        Inst::Alu(AluOp::Add, Reg::Rsp, r) => GadgetOp::AddRsp(r),
        Inst::Alu(op, d, s) if d != Reg::Rsp => GadgetOp::Alu(op, d, s),
        Inst::MovRR(d, s) => GadgetOp::MovRR(d, s),
        Inst::Load(d, m) if m.index.is_none() && m.disp == 0 && m.base.is_some() => {
            GadgetOp::Load(d, m.base.expect("checked"))
        }
        Inst::Store(m, s) if m.index.is_none() && m.disp == 0 && m.base.is_some() => {
            GadgetOp::Store(m.base.expect("checked"), s)
        }
        Inst::LoadB(d, m) if m.index.is_none() && m.disp == 0 && m.base.is_some() => {
            GadgetOp::LoadByte(d, m.base.expect("checked"))
        }
        Inst::LoadSxB(d, m) if m.index.is_none() && m.disp == 0 && m.base.is_some() => {
            GadgetOp::LoadByteSx(d, m.base.expect("checked"))
        }
        Inst::StoreB(m, s) if m.index.is_none() && m.disp == 0 && m.base.is_some() => {
            GadgetOp::StoreByte(m.base.expect("checked"), s)
        }
        Inst::AluM(op, d, m) if m.index.is_none() && m.disp == 0 && m.base.is_some() => {
            GadgetOp::AluLoad(op, d, m.base.expect("checked"))
        }
        Inst::AluStore(op, m, s) if m.index.is_none() && m.disp == 0 && m.base.is_some() => {
            GadgetOp::AluStore(op, m.base.expect("checked"), s)
        }
        Inst::Neg(r) => GadgetOp::Neg(r),
        Inst::Not(r) => GadgetOp::Not(r),
        Inst::Mul(d, s) => GadgetOp::Mul(d, s),
        Inst::Div(d, s) => GadgetOp::Div(d, s),
        Inst::Rem(d, s) => GadgetOp::Rem(d, s),
        Inst::Shl(r, i) => GadgetOp::ShlImm(r, i),
        Inst::Shr(r, i) => GadgetOp::ShrImm(r, i),
        Inst::Sar(r, i) => GadgetOp::SarImm(r, i),
        Inst::ShlR(d, s) => GadgetOp::ShlReg(d, s),
        Inst::ShrR(d, s) => GadgetOp::ShrReg(d, s),
        Inst::Cmp(a, b) => GadgetOp::Cmp(a, b),
        Inst::Test(a, b) => GadgetOp::Test(a, b),
        Inst::Cmov(c, d, s) => GadgetOp::Cmov(c, d, s),
        Inst::Set(c, r) => GadgetOp::Set(c, r),
        _ => GadgetOp::Unclassified,
    };

    if op == GadgetOp::Unclassified {
        return (GadgetOp::Unclassified, clobbers, junk_pops, pollutes_flags);
    }
    (op, clobbers, junk_pops, pollutes_flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_pop_gadget_classifies() {
        let (op, clobbers, pops, flags) = classify(&[Inst::Pop(Reg::Rdi)], GadgetEnding::Ret);
        assert_eq!(op, GadgetOp::Pop(Reg::Rdi));
        assert!(clobbers.is_empty());
        assert!(pops.is_empty());
        assert!(!flags);
    }

    #[test]
    fn junk_pop_prefix_is_tracked() {
        // pop rsi; pop rbp; ret — figure 1 of the paper uses this to discard
        // a 0x10-byte chain segment.
        let (op, clobbers, pops, _) =
            classify(&[Inst::Pop(Reg::Rsi), Inst::Pop(Reg::Rbp)], GadgetEnding::Ret);
        assert_eq!(op, GadgetOp::Pop(Reg::Rbp));
        assert_eq!(pops, vec![Reg::Rsi]);
        assert!(clobbers.contains(Reg::Rsi));
    }

    #[test]
    fn add_rsp_gadget_is_the_branch_primitive() {
        let (op, ..) = classify(&[Inst::Alu(AluOp::Add, Reg::Rsp, Reg::Rsi)], GadgetEnding::Ret);
        assert_eq!(op, GadgetOp::AddRsp(Reg::Rsi));
    }

    #[test]
    fn prefix_alu_marks_flag_pollution_and_clobber() {
        let (op, clobbers, _, flags) = classify(
            &[Inst::AluI(AluOp::Xor, Reg::R10, 1), Inst::MovRR(Reg::Rax, Reg::Rbx)],
            GadgetEnding::Ret,
        );
        assert_eq!(op, GadgetOp::MovRR(Reg::Rax, Reg::Rbx));
        assert!(clobbers.contains(Reg::R10));
        assert!(flags);
    }

    #[test]
    fn memory_prefix_is_rejected() {
        let (op, ..) = classify(
            &[Inst::Store(Mem::base(Reg::Rdi), Reg::Rax), Inst::MovRR(Reg::Rax, Reg::Rbx)],
            GadgetEnding::Ret,
        );
        assert_eq!(op, GadgetOp::Unclassified);
    }

    #[test]
    fn jop_stack_switch_gadget_recognized() {
        let (op, ..) = classify(
            &[Inst::XchgRM(Reg::Rsp, Mem::base(Reg::Rbx))],
            GadgetEnding::JmpReg(Reg::Rcx),
        );
        assert_eq!(op, GadgetOp::XchgRspMemJmp(Reg::Rbx, Reg::Rcx));
    }

    #[test]
    fn gadget_slot_and_length_accounting() {
        let g = Gadget {
            addr: 0x1000,
            insts: vec![Inst::Pop(Reg::Rsi), Inst::Pop(Reg::Rbp)],
            ending: GadgetEnding::Ret,
            op: GadgetOp::Pop(Reg::Rbp),
            clobbers: RegSet::from_regs([Reg::Rsi]),
            junk_pops: vec![Reg::Rsi],
            pollutes_flags: false,
            artificial: true,
        };
        assert_eq!(g.chain_slots(), 3);
        assert_eq!(g.byte_len(), 2 + 2 + 1);
        assert_eq!(g.encode().len(), g.byte_len());
        let shown = format!("{g}");
        assert!(shown.contains("pop rsi"));
        assert!(shown.ends_with("ret"));
    }
}
