//! Gadget scanning over an image's `.text` section.
//!
//! The scanner mirrors what exploitation tooling (and the paper's gadget
//! finder) does: locate every `ret` byte in `.text`, then speculatively
//! decode backwards-compatible start offsets and keep every sequence that
//! decodes cleanly into a short instruction run ending exactly at the `ret`.
//! The same machinery doubles as the attacker-side "gadget guessing"
//! primitive of ROPDissector (§VII-A2), which gadget confusion is designed to
//! overwhelm.

use crate::gadget::{classify, Gadget, GadgetEnding};
use raindrop_machine::{decode, Image, Inst, OP_RET};

/// Scanner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanConfig {
    /// Maximum number of instructions preceding the terminator.
    pub max_insts: usize,
    /// Maximum number of bytes to look back before each `ret`.
    pub max_lookback: usize,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig { max_insts: 4, max_lookback: 48 }
    }
}

/// Scans the whole `.text` section for ret-terminated gadgets.
pub fn scan_image(image: &Image, config: ScanConfig) -> Vec<Gadget> {
    scan_bytes(&image.text, image.text_base, config)
}

/// Scans an arbitrary byte region (loaded at `base`) for gadgets.
pub fn scan_bytes(bytes: &[u8], base: u64, config: ScanConfig) -> Vec<Gadget> {
    let mut out = Vec::new();
    for (ret_off, _) in bytes.iter().enumerate().filter(|(_, b)| **b == OP_RET) {
        let lookback_start = ret_off.saturating_sub(config.max_lookback);
        for start in lookback_start..=ret_off {
            if let Some(insts) = decode_exact(&bytes[start..ret_off], config.max_insts) {
                // Reject sequences containing control flow: they would not
                // reach the ret.
                if insts.iter().any(|i| i.is_terminator() || i.is_call() || matches!(i, Inst::Hlt))
                {
                    continue;
                }
                let (op, clobbers, junk_pops, pollutes_flags) = classify(&insts, GadgetEnding::Ret);
                out.push(Gadget {
                    addr: base + start as u64,
                    insts,
                    ending: GadgetEnding::Ret,
                    op,
                    clobbers,
                    junk_pops,
                    pollutes_flags,
                    artificial: false,
                });
            }
        }
    }
    out
}

/// Attempts to decode `bytes` as a sequence of at most `max_insts`
/// instructions covering the slice exactly.
fn decode_exact(bytes: &[u8], max_insts: usize) -> Option<Vec<Inst>> {
    let mut insts = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        if insts.len() >= max_insts {
            return None;
        }
        let (inst, len) = decode(&bytes[pos..]).ok()?;
        if pos + len > bytes.len() {
            return None;
        }
        insts.push(inst);
        pos += len;
    }
    Some(insts)
}

/// Speculative decode at an arbitrary offset: decodes up to `max_insts`
/// instructions starting at `offset`, stopping at the first `ret`,
/// terminator or decode failure. This is the attacker-facing primitive used
/// by the ROP-aware tools; it is defined here so the gadget pool and the
/// attack share one implementation.
pub fn speculative_decode(bytes: &[u8], offset: usize, max_insts: usize) -> Vec<Inst> {
    let mut out = Vec::new();
    let mut pos = offset;
    while pos < bytes.len() && out.len() < max_insts {
        match decode(&bytes[pos..]) {
            Ok((inst, len)) => {
                let stop = inst.is_terminator();
                out.push(inst);
                pos += len;
                if stop {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::GadgetOp;
    use raindrop_machine::{encode_all, AluOp, Reg};

    fn pool_bytes() -> Vec<u8> {
        encode_all(&[
            Inst::Pop(Reg::Rdi),
            Inst::Ret,
            Inst::Alu(AluOp::Add, Reg::Rsp, Reg::Rsi),
            Inst::Ret,
            Inst::Pop(Reg::Rsi),
            Inst::Pop(Reg::Rbp),
            Inst::Ret,
        ])
    }

    #[test]
    fn finds_all_intended_gadgets() {
        let gadgets = scan_bytes(&pool_bytes(), 0x5000, ScanConfig::default());
        assert!(gadgets.iter().any(|g| g.op == GadgetOp::Pop(Reg::Rdi)));
        assert!(gadgets.iter().any(|g| g.op == GadgetOp::AddRsp(Reg::Rsi)));
        assert!(gadgets
            .iter()
            .any(|g| g.op == GadgetOp::Pop(Reg::Rbp) && g.junk_pops == vec![Reg::Rsi]));
    }

    #[test]
    fn finds_unintended_suffix_gadgets() {
        // The pop rsi; pop rbp; ret gadget contains the shorter pop rbp; ret.
        let gadgets = scan_bytes(&pool_bytes(), 0, ScanConfig::default());
        let pop_rbp: Vec<_> = gadgets
            .iter()
            .filter(|g| g.op == GadgetOp::Pop(Reg::Rbp) && g.insts.len() == 1)
            .collect();
        assert_eq!(pop_rbp.len(), 1, "suffix gadget discovered");
    }

    #[test]
    fn control_flow_in_prefix_is_not_a_gadget() {
        let bytes = encode_all(&[Inst::Jmp(2), Inst::Ret]);
        let gadgets = scan_bytes(&bytes, 0, ScanConfig::default());
        assert!(gadgets.iter().all(|g| !g.insts.iter().any(|i| matches!(i, Inst::Jmp(_)))));
    }

    #[test]
    fn speculative_decode_stops_at_ret_or_garbage() {
        let bytes = pool_bytes();
        let seq = speculative_decode(&bytes, 0, 8);
        assert_eq!(seq.len(), 2);
        assert!(matches!(seq[1], Inst::Ret));
        // Decoding from inside an instruction either fails fast or produces
        // a short bogus sequence — it must never panic.
        for off in 0..bytes.len() {
            let _ = speculative_decode(&bytes, off, 8);
        }
    }
}
