//! Robustness contract of the [`Campaign`] driver: a campaign killed at
//! checkpoint boundaries — with the checkpoint log optionally corrupted at
//! crash time — and then resumed converges to the same per-job verdicts as
//! an uninterrupted run. Corruption may only ever *remove* checkpointed
//! state (demoting jobs to a restart); it can never alter it.

use raindrop_attacks::campaign::{
    replay_log, Campaign, CampaignConfig, CampaignReport, CampaignStatus, FaultPlan,
};
use raindrop_attacks::concolic::{DseBudget, DseOutcome, Goal, InputSpec};
use raindrop_attacks::fleet::DseJob;
use raindrop_synth::{codegen, generate_randomfun, paper_structures, Goal as RfGoal, RandomFun};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A fresh, unique campaign directory per test invocation.
fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "raindrop-campaign-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Work-bounded budget: wall clock effectively off, so kills and worker
/// scheduling cannot change which budget dimension ends a run.
fn logical_budget() -> DseBudget {
    DseBudget {
        total_instructions: 4_000_000,
        per_path_instructions: 500_000,
        max_paths: 40,
        max_wall: Duration::from_secs(3600),
        max_solver_calls: 2_000,
        ..DseBudget::default()
    }
}

fn rf(goal: RfGoal, structure_idx: usize, input_size: usize, seed: u64) -> RandomFun {
    let (name, structure) = paper_structures().into_iter().nth(structure_idx).unwrap();
    generate_randomfun(raindrop_synth::RandomFunConfig {
        structure,
        structure_name: name,
        input_size,
        seed,
        goal,
        loop_size: 2,
    })
}

/// The campaign's job corpus. `DseJob` is deliberately not `Clone`, so each
/// run regenerates the identical list — exactly what a restarted campaign
/// binary would do.
fn make_jobs() -> Vec<DseJob> {
    let secret = rf(RfGoal::SecretFinding, 0, 4, 2);
    let coverage = rf(RfGoal::CodeCoverage, 4, 2, 8);
    let defeated = rf(RfGoal::SecretFinding, 3, 4, 7);
    vec![
        DseJob::new(
            "secret",
            codegen::compile(&secret.program).unwrap(),
            &secret.name,
            InputSpec::RegisterArg { size_bytes: 4 },
            logical_budget(),
            Goal::Secret { want: 1 },
        ),
        DseJob::new(
            "coverage",
            codegen::compile(&coverage.program).unwrap(),
            &coverage.name,
            InputSpec::RegisterArg { size_bytes: 2 },
            logical_budget(),
            Goal::Coverage { total_probes: coverage.probe_count },
        ),
        DseJob::new(
            "defeated",
            codegen::compile(&defeated.program).unwrap(),
            &defeated.name,
            InputSpec::RegisterArg { size_bytes: 4 },
            DseBudget { max_paths: 2, ..logical_budget() },
            Goal::Secret { want: 1 },
        ),
    ]
}

/// Slice of 1 path: every checkpoint boundary is a potential kill site.
/// Stragglers and slice timeouts are disabled unless a test opts in.
fn test_config() -> CampaignConfig {
    CampaignConfig {
        workers: 2,
        slice: 1,
        max_retries: 2,
        retry_backoff: Duration::from_millis(1),
        slice_timeout: Duration::from_secs(3600),
        straggler_factor: 1000,
        straggler_after: usize::MAX,
        poll: Duration::from_millis(1),
    }
}

/// Compares two completed campaigns job by job on every determinism-pinned
/// outcome field. `wall`, `emulated_instructions` and `resumed_paths` are
/// excluded: resumed frontier entries re-execute their path prefix instead
/// of restoring an emulator snapshot.
fn assert_same_results(label: &str, reference: &CampaignReport, resumed: &CampaignReport) {
    assert!(reference.completed(), "[{label}] reference campaign completed");
    assert!(resumed.completed(), "[{label}] resumed campaign completed");
    assert_eq!(reference.jobs.len(), resumed.jobs.len(), "[{label}] same job count");
    for (a, b) in reference.jobs.iter().zip(&resumed.jobs) {
        assert_eq!(a.label, b.label, "[{label}] same job order");
        let (ao, bo) = (
            a.outcome().unwrap_or_else(|| panic!("[{label}] reference `{}` done", a.label)),
            b.outcome().unwrap_or_else(|| panic!("[{label}] resumed `{}` done", b.label)),
        );
        assert_same_outcome(&format!("{label}/{}", a.label), ao, bo);
        assert_eq!(a.audit(), b.audit(), "[{label}/{}] same exploration schedule", a.label);
    }
}

fn assert_same_outcome(label: &str, a: &DseOutcome, b: &DseOutcome) {
    assert_eq!(a.success, b.success, "[{label}] same verdict");
    assert_eq!(a.witness, b.witness, "[{label}] same discovered witness");
    assert_eq!(a.paths, b.paths, "[{label}] same path count");
    assert_eq!(a.instructions, b.instructions, "[{label}] same accounted instructions");
    assert_eq!(a.probes_covered, b.probes_covered, "[{label}] same coverage");
    assert_eq!(a.max_constraints, b.max_constraints, "[{label}] same longest record");
    assert_eq!(a.solver_calls, b.solver_calls, "[{label}] same solver schedule");
    assert_eq!(a.solve_cache_hits, b.solve_cache_hits, "[{label}] same cache behaviour");
    assert_eq!(a.hazard_causes, b.hazard_causes, "[{label}] same hazard accounting");
    assert_eq!(a.max_branches_pre_hazard, b.max_branches_pre_hazard, "[{label}] same fork depth");
    assert_eq!(a.exhausted, b.exhausted, "[{label}] same exhaustion dimension");
}

fn run_uninterrupted(tag: &str) -> CampaignReport {
    let report = Campaign::open(fresh_dir(tag), test_config()).unwrap().run(make_jobs()).unwrap();
    assert!(report.completed());
    report
}

#[test]
fn killed_and_resumed_campaign_converges() {
    let reference = run_uninterrupted("ref-kill");

    // Kill the campaign after every single checkpoint write: the harshest
    // schedule, exercising resume at *every* checkpoint boundary. Each
    // cycle simulates a fresh process: reopen the directory, regenerate the
    // job list, run until the fault kills us again.
    let dir = fresh_dir("kill-cycle");
    let mut cycles = 0u64;
    let mut resumed_total = 0usize;
    let finished = loop {
        cycles += 1;
        assert!(cycles < 500, "kill/resume cycle does not converge");
        let campaign = Campaign::open(&dir, test_config())
            .unwrap()
            .with_faults(FaultPlan { kill_after_checkpoints: Some(1), ..FaultPlan::default() });
        let report = campaign.run(make_jobs()).unwrap();
        resumed_total += report.stats.jobs_resumed;
        match report.status {
            CampaignStatus::Completed => break report,
            CampaignStatus::Killed { after_checkpoints } => {
                assert_eq!(after_checkpoints, 1, "fault plan kills after one checkpoint");
            }
        }
    };
    assert!(cycles >= 3, "the corpus spans several checkpoints (got {cycles} cycles)");
    assert!(resumed_total > 0, "at least one cycle resumed a job mid-exploration");
    assert_same_results("kill-cycle", &reference, &finished);
}

#[test]
fn corrupted_checkpoints_demote_to_restart_never_poison() {
    let reference = run_uninterrupted("ref-corrupt");

    // Build a log with a few checkpoints in it, then study its corruption
    // behaviour offline and end-to-end.
    let dir = fresh_dir("corrupt");
    let killed = Campaign::open(&dir, test_config())
        .unwrap()
        .with_faults(FaultPlan { kill_after_checkpoints: Some(3), ..FaultPlan::default() })
        .run(make_jobs())
        .unwrap();
    assert_eq!(killed.status, CampaignStatus::Killed { after_checkpoints: 3 });

    let log_path = dir.join(raindrop_attacks::campaign::CAMPAIGN_LOG);
    let clean = std::fs::read(&log_path).unwrap();
    let (clean_records, clean_dropped) = replay_log(&clean);
    assert_eq!(clean_records.len(), 3, "three checkpoints were written");
    assert_eq!(clean_dropped, 0, "the clean log replays fully");

    // Offline sweep: flipping any single byte must reduce replay to a
    // strict prefix of the clean record list — records after the damage are
    // dropped (restart), but no record is ever altered.
    let step = (clean.len() / 4096).max(1);
    for at in (0..clean.len()).step_by(step) {
        let mut corrupt = clean.clone();
        corrupt[at] ^= 0xA5;
        let (records, dropped) = replay_log(&corrupt);
        assert!(
            records.len() < clean_records.len()
                || (records.len() == clean_records.len() && dropped == 0),
            "byte {at}: replay never grows"
        );
        assert_eq!(
            records.as_slice(),
            &clean_records[..records.len()],
            "byte {at}: surviving records are an exact prefix of the clean log"
        );
        if records.len() < clean_records.len() {
            assert!(dropped > 0, "byte {at}: dropped bytes are accounted");
        }
    }

    // Truncation at any length is likewise a prefix.
    for cut in [1usize, 7, clean.len() / 2, clean.len().saturating_sub(9)] {
        let truncated = &clean[..clean.len() - cut.min(clean.len())];
        let (records, _) = replay_log(truncated);
        assert_eq!(
            records.as_slice(),
            &clean_records[..records.len()],
            "cut {cut}: truncated replay is a prefix"
        );
    }

    // End-to-end: resume from a handful of corrupted logs (including a
    // destroyed header) and from a truncated log; every resumed campaign
    // must converge to the reference results, re-running whatever the
    // corruption demoted.
    let mut sites =
        vec![0usize, raindrop_server::recfile::HEADER_LEN - 1, clean.len() / 2, clean.len() - 1];
    sites.dedup();
    for (i, at) in sites.into_iter().enumerate() {
        let dir = fresh_dir(&format!("corrupt-e2e-{i}"));
        std::fs::create_dir_all(&dir).unwrap();
        let mut corrupt = clean.clone();
        corrupt[at] ^= 0xA5;
        std::fs::write(dir.join(raindrop_attacks::campaign::CAMPAIGN_LOG), &corrupt).unwrap();
        let resumed = Campaign::open(&dir, test_config()).unwrap().run(make_jobs()).unwrap();
        assert_same_results(&format!("corrupt-byte-{at}"), &reference, &resumed);
    }
    {
        let dir = fresh_dir("corrupt-e2e-trunc");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(raindrop_attacks::campaign::CAMPAIGN_LOG),
            &clean[..clean.len() - 5],
        )
        .unwrap();
        let resumed = Campaign::open(&dir, test_config()).unwrap().run(make_jobs()).unwrap();
        assert_same_results("corrupt-truncated", &reference, &resumed);
    }
}

#[test]
fn kill_with_torn_write_still_converges() {
    let reference = run_uninterrupted("ref-torn");

    // The kill itself corrupts the log — a torn write at crash time. Flip a
    // byte inside the last record on the first kill, truncate mid-record on
    // the second; both campaigns must still converge.
    let dir = fresh_dir("torn");
    let mut cycles = 0u64;
    let finished = loop {
        cycles += 1;
        assert!(cycles < 500, "torn-write cycle does not converge");
        let faults = match cycles {
            1 => FaultPlan {
                kill_after_checkpoints: Some(2),
                flip_byte_on_kill: Some(u64::MAX), // clamped: last byte of the log
                ..FaultPlan::default()
            },
            2 => FaultPlan {
                kill_after_checkpoints: Some(2),
                truncate_on_kill: Some(3),
                ..FaultPlan::default()
            },
            _ => FaultPlan::default(),
        };
        let report = Campaign::open(&dir, test_config())
            .unwrap()
            .with_faults(faults)
            .run(make_jobs())
            .unwrap();
        if report.completed() {
            break report;
        }
    };
    assert!(cycles >= 3, "both torn-write kills fired (got {cycles} cycles)");
    assert_same_results("torn-write", &reference, &finished);
}

#[test]
fn panic_injection_retries_and_converges() {
    let reference = run_uninterrupted("ref-panic");

    let report = Campaign::open(fresh_dir("panic"), test_config())
        .unwrap()
        .with_faults(FaultPlan { panic_once: vec![0, 1], ..FaultPlan::default() })
        .run(make_jobs())
        .unwrap();
    assert!(report.stats.retries >= 2, "both injected panics were retried");
    assert_same_results("panic-injection", &reference, &report);
}

#[test]
fn straggler_demotion_keeps_results_correct() {
    let reference = run_uninterrupted("ref-straggler");

    // Factor 0 makes *any* in-flight job a straggler once two jobs have
    // completed; a single worker guarantees the third job is still open at
    // that point. Demotion must only reprioritize, never change results.
    let config =
        CampaignConfig { workers: 1, straggler_factor: 0, straggler_after: 2, ..test_config() };
    let report = Campaign::open(fresh_dir("straggler"), config).unwrap().run(make_jobs()).unwrap();
    assert!(report.stats.stragglers_demoted >= 1, "the trailing job was demoted");
    assert_same_results("straggler", &reference, &report);
}

#[test]
fn finished_jobs_replay_without_reexecution() {
    let dir = fresh_dir("replay");
    let first = Campaign::open(&dir, test_config()).unwrap().run(make_jobs()).unwrap();
    assert!(first.completed());
    assert!(first.stats.slices_run > 0);

    // Re-running the identical campaign replays every job from the log.
    let second = Campaign::open(&dir, test_config()).unwrap().run(make_jobs()).unwrap();
    assert!(second.completed());
    assert_eq!(second.stats.jobs_recovered, first.jobs.len(), "all jobs recovered from the log");
    assert_eq!(second.stats.slices_run, 0, "no slice re-executed");
    assert_same_results("replay", &first, &second);

    // Changing a job (here: its budget) changes its fingerprint; the stale
    // record is discarded and only that job restarts.
    let mut jobs = make_jobs();
    jobs[0].budget.max_paths += 1;
    let third = Campaign::open(&dir, test_config()).unwrap().run(jobs).unwrap();
    assert!(third.completed());
    assert_eq!(third.stats.jobs_restarted, 1, "only the changed job restarted");
    assert_eq!(third.stats.jobs_recovered, 2, "unchanged jobs replayed from the log");
}
