//! Pause/checkpoint/resume determinism of the sliced [`DseExplorer`].
//!
//! A campaign job advances its explorer in bounded path slices and
//! serializes the [`DseFrontier`] between slices; a crash loses the
//! process but not the frontier. These tests pin the core contract the
//! campaign layer builds on: an exploration chopped into slices — with the
//! frontier round-tripped through its serialized form and resumed in a
//! *fresh* attack instance each time, as after a kill — produces the same
//! verdicts, witnesses, schedules and counters as one uninterrupted run.
//! Only `wall`, `emulated_instructions` and `resumed_paths` may differ
//! (resumed entries re-run their prefix instead of restoring a snapshot).

use raindrop::{Rewriter, RopConfig};
use raindrop_attacks::concolic::{
    DseAttack, DseAudit, DseBudget, DseExplorer, DseFrontier, DseOutcome, Goal, InputSpec,
};
use raindrop_machine::Image;
use raindrop_synth::{codegen, generate_randomfun, paper_structures, Goal as RfGoal, RandomFun};
use std::time::Duration;

/// Work-bounded budget: wall clock effectively off, so slicing cannot
/// change which budget dimension ends the run.
fn logical_budget() -> DseBudget {
    DseBudget {
        total_instructions: 4_000_000,
        per_path_instructions: 500_000,
        max_paths: 40,
        max_wall: Duration::from_secs(3600),
        max_solver_calls: 2_000,
        ..DseBudget::default()
    }
}

fn rf(goal: RfGoal, structure_idx: usize, input_size: usize, seed: u64) -> RandomFun {
    let (name, structure) = paper_structures().into_iter().nth(structure_idx).unwrap();
    generate_randomfun(raindrop_synth::RandomFunConfig {
        structure,
        structure_name: name,
        input_size,
        seed,
        goal,
        loop_size: 2,
    })
}

/// Runs the attack uninterrupted, then sliced: every `slice` paths the
/// frontier is serialized to JSON, the attack instance is dropped (the
/// simulated kill — arena, emulator, snapshots, solver all gone), and a
/// fresh instance resumes from the deserialized frontier. Returns both
/// results and the number of kills survived.
fn run_sliced_with_kills(
    image: &Image,
    func: &str,
    spec: InputSpec,
    goal: Goal,
    slice: usize,
) -> ((DseOutcome, DseAudit), (DseOutcome, DseAudit), usize) {
    let budget = logical_budget();
    let uninterrupted = DseAttack::new(image, func, spec.clone(), budget).run_audited(goal);

    let mut saved: Option<DseFrontier> = None;
    let mut kills = 0usize;
    let sliced = loop {
        let mut attack = DseAttack::new(image, func, spec.clone(), budget);
        let mut explorer = match &saved {
            None => DseExplorer::start(&mut attack, goal),
            Some(frontier) => DseExplorer::resume(&mut attack, goal, frontier),
        };
        match explorer.advance(Some(slice)) {
            Some(done) => break done,
            None => {
                // Round-trip the frontier through its wire format so the
                // test proves the *serialized* state is sufficient, not the
                // in-memory explorer.
                let json = serde_json::to_string(&explorer.frontier()).unwrap();
                saved = Some(serde_json::from_str(&json).unwrap());
                kills += 1;
            }
        }
    };
    (uninterrupted, sliced, kills)
}

fn assert_same_verdict(label: &str, a: &(DseOutcome, DseAudit), b: &(DseOutcome, DseAudit)) {
    let (ao, aa) = a;
    let (bo, ba) = b;
    assert_eq!(ao.success, bo.success, "[{label}] same verdict");
    assert_eq!(ao.witness, bo.witness, "[{label}] same discovered witness");
    assert_eq!(ao.paths, bo.paths, "[{label}] same path count");
    assert_eq!(ao.instructions, bo.instructions, "[{label}] same accounted instructions");
    assert_eq!(ao.probes_covered, bo.probes_covered, "[{label}] same coverage");
    assert_eq!(ao.max_constraints, bo.max_constraints, "[{label}] same longest record");
    assert_eq!(ao.solver_calls, bo.solver_calls, "[{label}] same solver schedule");
    assert_eq!(ao.solve_cache_hits, bo.solve_cache_hits, "[{label}] same cache behaviour");
    assert_eq!(ao.hazard_causes, bo.hazard_causes, "[{label}] same hazard accounting");
    assert_eq!(ao.max_branches_pre_hazard, bo.max_branches_pre_hazard, "[{label}] same fork depth");
    assert_eq!(ao.exhausted, bo.exhausted, "[{label}] same exhaustion dimension");
    assert_eq!(aa, ba, "[{label}] same exploration schedule");
}

#[test]
fn killed_and_resumed_exploration_matches_uninterrupted_native() {
    // Slice of 1: the process dies after *every* explored path — the
    // harshest checkpoint-boundary kill schedule.
    let f = rf(RfGoal::SecretFinding, 0, 4, 2);
    let image = codegen::compile(&f.program).unwrap();
    let (full, sliced, kills) = run_sliced_with_kills(
        &image,
        &f.name,
        InputSpec::RegisterArg { size_bytes: 4 },
        Goal::Secret { want: 1 },
        1,
    );
    assert!(kills >= 2, "the workload spans several slices (got {kills} kills)");
    assert_same_verdict("native/secret", &full, &sliced);
}

#[test]
fn killed_and_resumed_exploration_matches_uninterrupted_coverage() {
    let f = rf(RfGoal::CodeCoverage, 4, 2, 8);
    let image = codegen::compile(&f.program).unwrap();
    let (full, sliced, kills) = run_sliced_with_kills(
        &image,
        &f.name,
        InputSpec::RegisterArg { size_bytes: 2 },
        Goal::Coverage { total_probes: f.probe_count },
        1,
    );
    assert!(kills >= 1, "coverage goal spans at least one kill");
    assert_same_verdict("native/coverage", &full, &sliced);
}

#[test]
fn killed_and_resumed_exploration_matches_uninterrupted_rop() {
    let f = rf(RfGoal::SecretFinding, 0, 1, 9);
    let mut image = codegen::compile(&f.program).unwrap();
    let mut rw = Rewriter::new(RopConfig::ropk(1.0).with_seed(9));
    rw.rewrite_function(&mut image, &f.name).unwrap();
    let (full, sliced, _kills) = run_sliced_with_kills(
        &image,
        &f.name,
        InputSpec::RegisterArg { size_bytes: 1 },
        Goal::Secret { want: 1 },
        1,
    );
    assert_same_verdict("rop1.0/secret", &full, &sliced);
}

#[test]
fn killed_and_resumed_exploration_matches_uninterrupted_when_defeated() {
    // A path cap the workload exceeds: both runs must end unsuccessful on
    // the same exhaustion dimension with identical counters.
    let f = rf(RfGoal::SecretFinding, 3, 4, 7);
    let image = codegen::compile(&f.program).unwrap();
    let budget = DseBudget { max_paths: 2, ..logical_budget() };
    let spec = InputSpec::RegisterArg { size_bytes: 4 };
    let goal = Goal::Secret { want: 1 };
    let uninterrupted = DseAttack::new(&image, &f.name, spec.clone(), budget).run_audited(goal);
    assert!(!uninterrupted.0.success, "path cap defeats this attack");

    let mut saved: Option<DseFrontier> = None;
    let sliced = loop {
        let mut attack = DseAttack::new(&image, &f.name, spec.clone(), budget);
        let mut explorer = match &saved {
            None => DseExplorer::start(&mut attack, goal),
            Some(frontier) => DseExplorer::resume(&mut attack, goal, frontier),
        };
        match explorer.advance(Some(1)) {
            Some(done) => break done,
            None => saved = Some(explorer.frontier()),
        }
    };
    assert_same_verdict("defeated/path-cap", &uninterrupted, &sliced);
}

#[test]
fn outcome_and_audit_round_trip_through_both_wire_formats() {
    // A real (not hand-built) result: exercised fields include witness,
    // hazard accounting and the audit's per-path schedule.
    let f = rf(RfGoal::SecretFinding, 0, 4, 2);
    let image = codegen::compile(&f.program).unwrap();
    let (outcome, audit) =
        DseAttack::new(&image, &f.name, InputSpec::RegisterArg { size_bytes: 4 }, logical_budget())
            .run_audited(Goal::Secret { want: 1 });
    assert!(outcome.success, "workload produces a rich outcome");
    assert!(!audit.explored.is_empty(), "audit carries a schedule");

    // The human-readable campaign/bench format.
    let json = serde_json::to_string(&outcome).unwrap();
    let outcome_back: DseOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(outcome, outcome_back, "DseOutcome JSON round-trip is lossless");
    let json = serde_json::to_string(&audit).unwrap();
    let audit_back: DseAudit = serde_json::from_str(&json).unwrap();
    assert_eq!(audit, audit_back, "DseAudit JSON round-trip is lossless");

    // The binary checkpoint-record format the campaign log persists.
    let bytes = raindrop_server::recfile::encode_payload(&outcome);
    let outcome_back: DseOutcome =
        raindrop_server::recfile::decode_payload(&bytes).expect("payload decodes");
    assert_eq!(outcome, outcome_back, "DseOutcome binary round-trip is lossless");
    let bytes = raindrop_server::recfile::encode_payload(&audit);
    let audit_back: DseAudit =
        raindrop_server::recfile::decode_payload(&bytes).expect("payload decodes");
    assert_eq!(audit, audit_back, "DseAudit binary round-trip is lossless");
}

#[test]
fn frontier_round_trips_exactly_through_json() {
    let f = rf(RfGoal::SecretFinding, 0, 4, 2);
    let image = codegen::compile(&f.program).unwrap();
    let budget = logical_budget();
    let mut attack =
        DseAttack::new(&image, &f.name, InputSpec::RegisterArg { size_bytes: 4 }, budget);
    let mut explorer = DseExplorer::start(&mut attack, Goal::Secret { want: 1 });
    assert!(explorer.advance(Some(1)).is_none(), "workload is larger than one path");
    let frontier = explorer.frontier();
    assert!(!frontier.queue.is_empty(), "paused with pending work");
    assert!(frontier.paths > 0, "slice did real work");
    let json = serde_json::to_string(&frontier).unwrap();
    let back: DseFrontier = serde_json::from_str(&json).unwrap();
    assert_eq!(frontier, back, "frontier wire format is lossless");
}
