//! Differential suite pinning the fork-point explorer bit-identical to the
//! re-run-from-start reference oracle.
//!
//! For every workload the two [`ExploreMode`]s must produce the same
//! exploration schedule (inputs explored in order, inputs pushed to the
//! frontier), the same outcome (success, witness, paths, accounted
//! instructions, coverage), and the fork-point engine must never
//! re-execute a prefix already covered by a snapshot — its
//! `emulated_instructions` stay at or below the accounted total, strictly
//! below whenever a path was resumed. Wall-clock budgets are lifted so the
//! comparison is purely logical.

use raindrop::{Rewriter, RopConfig};
use raindrop_attacks::concolic::{DseAttack, DseBudget, ExploreMode, Goal, InputSpec};
use raindrop_attacks::fleet::{AttackFleet, DseJob};
use raindrop_machine::Image;
use raindrop_obfvm::{apply, VmConfig};
use raindrop_synth::{codegen, generate_randomfun, paper_structures, Goal as RfGoal, RandomFun};
use std::time::Duration;

/// A work-bounded budget with the wall-clock safety net effectively off,
/// so both modes perform exactly the same logical exploration.
fn logical_budget() -> DseBudget {
    DseBudget {
        total_instructions: 4_000_000,
        per_path_instructions: 500_000,
        max_paths: 40,
        max_wall: Duration::from_secs(3600),
        max_solver_calls: 2_000,
        ..DseBudget::default()
    }
}

fn rf(goal: RfGoal, structure_idx: usize, input_size: usize, seed: u64) -> RandomFun {
    let (name, structure) = paper_structures().into_iter().nth(structure_idx).unwrap();
    generate_randomfun(raindrop_synth::RandomFunConfig {
        structure,
        structure_name: name,
        input_size,
        seed,
        goal,
        loop_size: 2,
    })
}

fn rop_protect(rf: &RandomFun, k: f64, seed: u64) -> Image {
    let mut image = codegen::compile(&rf.program).unwrap();
    let mut rw = Rewriter::new(RopConfig::ropk(k).with_seed(seed));
    rw.rewrite_function(&mut image, &rf.name).unwrap();
    image
}

/// Runs both modes on one target and asserts bit-identical exploration.
/// Returns `(fork resumed_paths, fork emulated, fork accounted)`.
fn assert_equivalent(
    label: &str,
    image: &Image,
    func: &str,
    spec: InputSpec,
    goal: Goal,
) -> (usize, u64, u64) {
    let budget = logical_budget();
    let mut fork = DseAttack::new(image, func, spec.clone(), budget);
    let (fork_out, fork_audit) = fork.run_audited(goal);
    let mut rerun = DseAttack::new(image, func, spec, budget).with_mode(ExploreMode::Rerun);
    let (rerun_out, rerun_audit) = rerun.run_audited(goal);

    assert_eq!(
        fork_audit.explored, rerun_audit.explored,
        "[{label}] same inputs explored in the same order"
    );
    assert_eq!(fork_audit.pushed, rerun_audit.pushed, "[{label}] same frontier pushes");
    assert_eq!(fork_out.success, rerun_out.success, "[{label}] same outcome");
    assert_eq!(fork_out.witness, rerun_out.witness, "[{label}] same solved witness");
    assert_eq!(fork_out.paths, rerun_out.paths, "[{label}] same path count");
    assert_eq!(
        fork_out.instructions, rerun_out.instructions,
        "[{label}] identical instruction accounting (prefix-inclusive)"
    );
    assert_eq!(fork_out.probes_covered, rerun_out.probes_covered, "[{label}] same coverage");
    assert_eq!(fork_out.max_constraints, rerun_out.max_constraints, "[{label}] same records");
    assert_eq!(fork_out.solver_calls, rerun_out.solver_calls, "[{label}] same solver schedule");
    assert_eq!(fork_out.exhausted, rerun_out.exhausted, "[{label}] same exhaustion dimension");
    assert_eq!(
        fork_out.hazard_causes, rerun_out.hazard_causes,
        "[{label}] same per-cause hazard counts"
    );
    assert_eq!(
        fork_out.max_branches_pre_hazard, rerun_out.max_branches_pre_hazard,
        "[{label}] same pre-hazard branch depth"
    );

    // The reference oracle executes everything; the fork engine must never
    // execute more, and never re-execute a snapshot-covered prefix.
    assert_eq!(rerun_out.resumed_paths, 0, "[{label}] the oracle never resumes");
    assert_eq!(
        rerun_out.emulated_instructions, rerun_out.instructions,
        "[{label}] the oracle emulates every accounted instruction"
    );
    assert!(
        fork_out.emulated_instructions <= fork_out.instructions,
        "[{label}] resumed prefixes are accounted but not re-executed"
    );
    if fork_out.resumed_paths > 0 {
        assert!(
            fork_out.emulated_instructions < fork_out.instructions,
            "[{label}] at least one snapshot-covered prefix was skipped"
        );
    }
    (fork_out.resumed_paths, fork_out.emulated_instructions, fork_out.instructions)
}

#[test]
fn fork_restore_is_bit_identical_on_native_corpus_functions() {
    let mut total_resumed = 0;
    for (si, size, seed) in [(0usize, 1usize, 1u64), (0, 4, 2), (1, 2, 3)] {
        let f = rf(RfGoal::SecretFinding, si, size, seed);
        let image = codegen::compile(&f.program).unwrap();
        let (resumed, ..) = assert_equivalent(
            &format!("native/s{si}/in{size}/secret"),
            &image,
            &f.name,
            InputSpec::RegisterArg { size_bytes: size },
            Goal::Secret { want: 1 },
        );
        total_resumed += resumed;
    }
    let f = rf(RfGoal::CodeCoverage, 1, 1, 4);
    let image = codegen::compile(&f.program).unwrap();
    let (resumed, ..) = assert_equivalent(
        "native/s1/in1/coverage",
        &image,
        &f.name,
        InputSpec::RegisterArg { size_bytes: 1 },
        Goal::Coverage { total_probes: f.probe_count },
    );
    total_resumed += resumed;
    assert!(total_resumed > 0, "fork-point restores actually happen on native workloads");
}

#[test]
fn fork_restore_is_bit_identical_on_rop_obfuscated_workloads() {
    let mut total_resumed = 0;
    for (k, seed) in [(0.0f64, 7u64), (1.0, 9)] {
        let f = rf(RfGoal::SecretFinding, 0, 1, seed);
        let image = rop_protect(&f, k, seed);
        let (resumed, ..) = assert_equivalent(
            &format!("rop{k}/secret"),
            &image,
            &f.name,
            InputSpec::RegisterArg { size_bytes: 1 },
            Goal::Secret { want: 1 },
        );
        total_resumed += resumed;

        let fc = rf(RfGoal::CodeCoverage, 1, 1, seed);
        let image = rop_protect(&fc, k, seed);
        assert_equivalent(
            &format!("rop{k}/coverage"),
            &image,
            &fc.name,
            InputSpec::RegisterArg { size_bytes: 1 },
            Goal::Coverage { total_probes: fc.probe_count },
        );
    }
    assert!(total_resumed > 0, "fork-point restores actually happen on ROP chains");
}

#[test]
fn fork_restore_is_bit_identical_under_vm_obfuscation() {
    let f = rf(RfGoal::SecretFinding, 0, 1, 11);
    let vm = apply(&f.program, &f.name, VmConfig::plain(1)).unwrap();
    let image = codegen::compile(&vm).unwrap();
    assert_equivalent(
        "1vm/secret",
        &image,
        &f.name,
        InputSpec::RegisterArg { size_bytes: 1 },
        Goal::Secret { want: 1 },
    );
}

#[test]
fn fork_restore_is_bit_identical_on_memory_buffer_inputs() {
    // The base64 shape: symbolic bytes in guest memory instead of a
    // register argument.
    let w = raindrop_synth::base64();
    let image = codegen::compile(&w.program).unwrap();
    let inp = image.symbol("b64_in").expect("input buffer");
    let len = 3usize;
    let secret = b"Key";
    let mut emu = raindrop_machine::Emulator::new(&image);
    emu.set_budget(1_000_000_000);
    emu.mem.write_bytes(inp, secret);
    let target = emu.call_named(&image, &w.entry, &[len as u64]).unwrap();
    let spec = InputSpec::MemoryBuffer { addr: inp, len, args: vec![len as u64] };
    assert_equivalent("base64/secret", &image, &w.entry, spec, Goal::Secret { want: target });
}

#[test]
fn fleet_results_are_independent_of_worker_count() {
    let jobs = || {
        let mut out = Vec::new();
        for (goal, seed) in [(RfGoal::SecretFinding, 21u64), (RfGoal::CodeCoverage, 22)] {
            for k in [0.0f64, 1.0] {
                let f = rf(goal, 0, 1, seed);
                let image = rop_protect(&f, k, seed);
                let attack_goal = match goal {
                    RfGoal::SecretFinding => Goal::Secret { want: 1 },
                    RfGoal::CodeCoverage => Goal::Coverage { total_probes: f.probe_count },
                };
                out.push(DseJob::new(
                    format!("{goal:?}/rop{k}"),
                    image,
                    f.name.clone(),
                    InputSpec::RegisterArg { size_bytes: 1 },
                    logical_budget(),
                    attack_goal,
                ));
            }
        }
        out
    };
    let one = AttackFleet::new(1).run_dse(jobs());
    let many = AttackFleet::new(3).run_dse(jobs());
    assert_eq!(one.len(), many.len());
    for (a, b) in one.iter().zip(&many) {
        assert_eq!(a.label, b.label, "job order is preserved");
        assert_eq!(a.outcome.success, b.outcome.success, "[{}]", a.label);
        assert_eq!(a.outcome.witness, b.outcome.witness, "[{}]", a.label);
        assert_eq!(a.outcome.paths, b.outcome.paths, "[{}]", a.label);
        assert_eq!(a.outcome.instructions, b.outcome.instructions, "[{}]", a.label);
        assert_eq!(a.outcome.probes_covered, b.outcome.probes_covered, "[{}]", a.label);
        assert_eq!(a.outcome.solver_calls, b.outcome.solver_calls, "[{}]", a.label);
    }
}
