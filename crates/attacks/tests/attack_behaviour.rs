//! Behavioural tests of the attacker toolbox (§III / §VII-A): the DSE
//! engine cracks unprotected and lightly-protected code, the strengthening
//! predicates make it miss within the same budget, TDS strips dispatch but
//! not input-coupled computation, and the ROP-aware tools are stopped by P2
//! and gadget confusion.

use std::time::Duration;

use raindrop::{Rewriter, RopConfig};
use raindrop_attacks::concolic::{DseAttack, DseBudget, Goal as AttackGoal, InputSpec};
use raindrop_attacks::{
    chain_symbol, flip_exploration, gadget_guess, invert, simplify, BinKind, EvalMemo, ExprArena,
};
use raindrop_machine::{Emulator, Image};
use raindrop_obfvm::{apply, ImplicitAt, VmConfig};
use raindrop_synth::{
    codegen, generate_randomfun, paper_structures, Goal, RandomFun, RandomFunConfig,
};

/// A small point-test function (G1 flavour) with a 1-byte input.
fn secret_fun(seed: u64) -> RandomFun {
    let (name, structure) = paper_structures().into_iter().next().unwrap();
    generate_randomfun(RandomFunConfig {
        structure,
        structure_name: name,
        input_size: 1,
        seed,
        goal: Goal::SecretFinding,
        loop_size: 2,
    })
}

/// The same population in the coverage flavour (G2).
fn coverage_fun(seed: u64) -> RandomFun {
    let (name, structure) = paper_structures().into_iter().nth(1).unwrap();
    generate_randomfun(RandomFunConfig {
        structure,
        structure_name: name,
        input_size: 1,
        seed,
        goal: Goal::CodeCoverage,
        loop_size: 2,
    })
}

fn quick_budget() -> DseBudget {
    DseBudget {
        total_instructions: 4_000_000,
        per_path_instructions: 500_000,
        max_paths: 60,
        max_wall: Duration::from_secs(5),
        ..DseBudget::default()
    }
}

fn rop_protect(rf: &RandomFun, k: f64, seed: u64) -> Image {
    let mut image = codegen::compile(&rf.program).unwrap();
    let mut rw = Rewriter::new(RopConfig::ropk(k).with_seed(seed));
    rw.rewrite_function(&mut image, &rf.name).unwrap();
    image
}

// --- DSE (the S2E stand-in) -------------------------------------------------------

#[test]
fn dse_cracks_the_native_secret_and_reports_a_valid_witness() {
    let rf = secret_fun(1);
    let image = codegen::compile(&rf.program).unwrap();
    let mut attack =
        DseAttack::new(&image, &rf.name, InputSpec::RegisterArg { size_bytes: 1 }, quick_budget());
    let outcome = attack.run(AttackGoal::Secret { want: 1 });
    assert!(outcome.success, "native code falls quickly: {outcome:?}");
    let witness = outcome.witness.expect("witness returned")[0];
    // The witness really passes the point test.
    let mut emu = Emulator::new(&image);
    emu.set_budget(500_000_000);
    assert_eq!(emu.call_named(&image, &rf.name, &[witness]).unwrap(), 1);
    assert!(outcome.paths >= 1);
    assert!(outcome.instructions > 0);
}

#[test]
fn dse_reaches_full_coverage_on_native_code() {
    let rf = coverage_fun(2);
    let image = codegen::compile(&rf.program).unwrap();
    let mut attack =
        DseAttack::new(&image, &rf.name, InputSpec::RegisterArg { size_bytes: 1 }, quick_budget());
    let outcome = attack.run(AttackGoal::Coverage { total_probes: rf.probe_count });
    assert!(outcome.success, "all probes reached: {outcome:?}");
    assert_eq!(outcome.probes_covered as u32, rf.probe_count);
}

#[test]
fn p3_at_full_fraction_exhausts_the_budget_that_cracked_native_code() {
    let rf = secret_fun(1);
    let native = codegen::compile(&rf.program).unwrap();
    let protected = rop_protect(&rf, 1.0, 7);

    let mut native_attack =
        DseAttack::new(&native, &rf.name, InputSpec::RegisterArg { size_bytes: 1 }, quick_budget());
    let native_outcome = native_attack.run(AttackGoal::Secret { want: 1 });
    assert!(native_outcome.success);

    let mut rop_attack = DseAttack::new(
        &protected,
        &rf.name,
        InputSpec::RegisterArg { size_bytes: 1 },
        quick_budget(),
    );
    let rop_outcome = rop_attack.run(AttackGoal::Secret { want: 1 });
    // Either the attack fails outright or it needs far more work — the
    // Table II trend. With this budget the expected outcome is failure.
    if rop_outcome.success {
        assert!(
            rop_outcome.instructions > native_outcome.instructions * 5,
            "ROP1.00 must be much more expensive: {} vs {}",
            rop_outcome.instructions,
            native_outcome.instructions
        );
    } else {
        assert!(!rop_outcome.success);
    }
}

#[test]
fn dse_cost_grows_monotonically_with_the_obfuscation_dial() {
    // NATIVE < ROP0.0 (P1 only) <= ROP1.0 in emulated instructions, on the
    // same function and goal, mirroring the shape of Table II.
    let rf = coverage_fun(3);
    let native = codegen::compile(&rf.program).unwrap();
    let rop_p1 = rop_protect(&rf, 0.0, 5);
    let rop_full = rop_protect(&rf, 1.0, 5);

    let mut cost = Vec::new();
    for image in [&native, &rop_p1, &rop_full] {
        let mut attack = DseAttack::new(
            image,
            &rf.name,
            InputSpec::RegisterArg { size_bytes: 1 },
            quick_budget(),
        );
        let outcome = attack.run(AttackGoal::Coverage { total_probes: rf.probe_count });
        cost.push((outcome.success, outcome.instructions));
    }
    assert!(cost[0].0, "native is fully covered");
    assert!(cost[1].1 > cost[0].1, "the ROP encoding alone already costs more to explore");
    assert!(!cost[2].0 || cost[2].1 >= cost[1].1, "P3 does not make exploration cheaper: {cost:?}");
}

#[test]
fn vm_obfuscation_slows_dse_less_than_high_ropk_within_the_quick_budget() {
    let rf = secret_fun(4);
    let vm = apply(&rf.program, &rf.name, VmConfig::with_implicit(1, ImplicitAt::None)).unwrap();
    let vm_image = codegen::compile(&vm).unwrap();
    let budget = DseBudget { total_instructions: 20_000_000, ..quick_budget() };
    let mut vm_attack =
        DseAttack::new(&vm_image, &rf.name, InputSpec::RegisterArg { size_bytes: 1 }, budget);
    let vm_outcome = vm_attack.run(AttackGoal::Secret { want: 1 });
    assert!(vm_outcome.success, "one VM layer barely helps (Table II): {vm_outcome:?}");

    let rop = rop_protect(&rf, 1.0, 11);
    let mut rop_attack =
        DseAttack::new(&rop, &rf.name, InputSpec::RegisterArg { size_bytes: 1 }, budget);
    let rop_outcome = rop_attack.run(AttackGoal::Secret { want: 1 });
    assert!(
        !rop_outcome.success || rop_outcome.instructions > vm_outcome.instructions,
        "ROP1.00 resists at least as well as 1VM"
    );
}

// --- TDS (taint-driven simplification, A3) ------------------------------------------

#[test]
fn tds_removes_rop_dispatch_but_keeps_input_coupled_work() {
    let rf = secret_fun(6);
    let protected = rop_protect(&rf, 1.0, 13);
    let report = simplify(&protected, &rf.name, rf.secret_input, 60_000_000);
    assert!(report.trace_len > 0);
    assert!(report.dispatch_removed > 0, "ret-driven chain stepping is recognized as dispatch");
    assert!(report.relevant > 0, "input-to-output computation survives");
    assert!(report.reduction > 0.0 && report.reduction < 1.0);
    assert!(report.simplified_unique_addresses > 0);
}

#[test]
fn tds_simplifies_a_vm_interpreter_more_aggressively_than_p3_shielded_rop() {
    let rf = secret_fun(8);
    // 1VM: dispatch dominates the trace and is recognizable.
    let vm = apply(&rf.program, &rf.name, VmConfig::plain(1)).unwrap();
    let vm_image = codegen::compile(&vm).unwrap();
    let vm_report = simplify(&vm_image, &rf.name, rf.secret_input, 100_000_000);

    // ROP1.00: P3 couples the extra work with the input, so a smaller share
    // of the obfuscation can be stripped without breaking semantics.
    let rop = rop_protect(&rf, 1.0, 17);
    let rop_report = simplify(&rop, &rf.name, rf.secret_input, 100_000_000);

    assert!(vm_report.reduction > 0.3, "VM dispatch is largely simplification fodder");
    assert!(
        rop_report.relevant as f64 / rop_report.trace_len as f64
            >= vm_report.relevant as f64 / vm_report.trace_len as f64,
        "a larger fraction of the P3-shielded chain must be kept: rop {:?} vs vm {:?}",
        rop_report,
        vm_report
    );
}

// --- ROP-aware tools (A1 / A2) --------------------------------------------------------

#[test]
fn flag_flipping_reveals_blocks_without_p2_and_is_stopped_by_p2() {
    let rf = coverage_fun(9);

    // Plain ROP (no P2): flipping leaked flags reveals chain offsets that the
    // baseline input did not visit.
    let mut plain_img = codegen::compile(&rf.program).unwrap();
    let mut plain_cfg = RopConfig::plain();
    plain_cfg.p1 = Some(Default::default());
    let mut rw = Rewriter::new(plain_cfg.with_seed(23));
    rw.rewrite_function(&mut plain_img, &rf.name).unwrap();
    let without_p2 = flip_exploration(&plain_img, &rf.name, 1, 50_000_000);
    assert!(without_p2.leak_sites > 0, "branches leak condition flags");
    assert!(without_p2.baseline_blocks > 0);

    // P2 on: the same exploration derails instead of revealing valid blocks.
    let mut p2_img = codegen::compile(&rf.program).unwrap();
    let mut p2_cfg = RopConfig::plain();
    p2_cfg.p1 = Some(Default::default());
    p2_cfg.p2 = true;
    let mut rw = Rewriter::new(p2_cfg.with_seed(23));
    rw.rewrite_function(&mut p2_img, &rf.name).unwrap();
    let with_p2 = flip_exploration(&p2_img, &rf.name, 1, 50_000_000);

    assert!(
        with_p2.derailed_runs > 0 || with_p2.new_blocks < without_p2.new_blocks,
        "P2 must derail or starve the brute-force search: {with_p2:?} vs {without_p2:?}"
    );
}

#[test]
fn gadget_guessing_drowns_in_candidates_under_gadget_confusion() {
    let rf = secret_fun(10);

    let build = |confusion: bool| {
        let mut img = codegen::compile(&rf.program).unwrap();
        let mut cfg = RopConfig::plain();
        cfg.p1 = Some(Default::default());
        cfg.gadget_confusion = confusion;
        let mut rw = Rewriter::new(cfg.with_seed(31));
        rw.rewrite_function(&mut img, &rf.name).unwrap();
        img
    };

    let plain = gadget_guess(&build(false), &chain_symbol(&rf.name));
    let confused = gadget_guess(&build(true), &chain_symbol(&rf.name));
    assert!(plain.chain_bytes > 0 && confused.chain_bytes > 0);
    assert!(plain.plausible_pointers > 0, "gadget addresses are visible as such");
    assert!(confused.plausible_pointers > 0);
    // The attacker-facing explosion §VII-A2 describes: trying every start
    // offset yields at least as many candidate blocks to sift through, and
    // far more candidates than there are real 8-byte strides.
    assert!(confused.unaligned_candidates >= plain.unaligned_candidates);
    assert!(
        confused.unaligned_candidates > confused.decodable * 2,
        "speculative decoding at every offset buries the true positives: {confused:?}"
    );
}

#[test]
fn missing_chain_symbols_yield_an_empty_guess_report() {
    let rf = secret_fun(12);
    let image = codegen::compile(&rf.program).unwrap();
    let report = gadget_guess(&image, &chain_symbol(&rf.name));
    assert_eq!(report.chain_bytes, 0);
    assert_eq!(report.plausible_pointers, 0);
}

// --- the solver (angr/S2E stand-in internals) ------------------------------------------

#[test]
fn the_inversion_solver_handles_the_affine_and_xor_shapes_randomfuns_use() {
    let mut arena = ExprArena::new();
    let mut memo = EvalMemo::default();
    let x = arena.input(0);
    // x + 17 == 59  →  x = 42
    let c17 = arena.constant(17);
    let add = arena.bin(BinKind::Add, x, c17);
    assert_eq!(invert(&mut arena, add, 59, 0, &[0], &mut memo), Some(42));
    // x ^ 0xff == 0x12  →  x = 0xed
    let cff = arena.constant(0xff);
    let xor = arena.bin(BinKind::Xor, x, cff);
    assert_eq!(invert(&mut arena, xor, 0x12, 0, &[0], &mut memo), Some(0xed));
    // (x * 3) + 5 == 3*14+5 → x = 14 (odd multiplier is invertible mod 2^64)
    let c3 = arena.constant(3);
    let mul = arena.bin(BinKind::Mul, x, c3);
    let c5 = arena.constant(5);
    let affine = arena.bin(BinKind::Add, mul, c5);
    let inverted = invert(&mut arena, affine, 3 * 14 + 5, 0, &[0], &mut memo).expect("solvable");
    memo.reset();
    assert_eq!(arena.eval(affine, &[inverted], &mut memo), 3 * 14 + 5);
}
