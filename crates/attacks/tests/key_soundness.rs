//! Property suite pinning the structural-hash constraint keys to the
//! serialization-based reference keys they replaced.
//!
//! The solve cache and the constraint-dedup sets key expressions by their
//! 128-bit structural hash instead of a full canonical serialization; the
//! whole point is to never pay O(tree) for a key on a shared DAG. That is
//! only sound if the hash behaves like the serialization: equal canonical
//! bytes must imply equal hashes (soundness of interning — in fact this
//! direction is exact by construction), and unequal bytes must imply
//! unequal hashes on everything we can throw at it (a collision audit;
//! 128-bit hashes make accidental collisions astronomically unlikely, and
//! any systematic construction error shows up immediately under heavy
//! subterm sharing).

use proptest::prelude::*;
use raindrop_attacks::solver::Constraint;
use raindrop_attacks::sym::{BinKind, ExprArena, ExprId, UnKind};
use raindrop_machine::Cond;
use std::collections::HashMap;

const BINS: [BinKind; 13] = [
    BinKind::Add,
    BinKind::Sub,
    BinKind::Mul,
    BinKind::Div,
    BinKind::Rem,
    BinKind::And,
    BinKind::Or,
    BinKind::Xor,
    BinKind::Shl,
    BinKind::Shr,
    BinKind::Sar,
    BinKind::Eq,
    BinKind::Ult,
];
const UNS: [UnKind; 3] = [UnKind::Neg, UnKind::Not, UnKind::SextByte];

/// One DAG-construction step. Child references index into the pool of
/// already-built nodes (modulo its size), which produces heavy subterm
/// sharing: late nodes reference early ones many times over.
#[derive(Debug, Clone)]
enum Step {
    Const(u64),
    Input(usize),
    Bin(usize, usize, usize),
    Un(usize, usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        // Small constants collide with simplification identities (0, 1,
        // u64::MAX) on purpose — the interesting keys are post-simplify.
        (0u64..4).prop_map(Step::Const),
        any::<u64>().prop_map(Step::Const),
        (0usize..3).prop_map(Step::Input),
        (0usize..BINS.len(), any::<usize>(), any::<usize>())
            .prop_map(|(k, a, b)| Step::Bin(k, a, b)),
        (0usize..UNS.len(), any::<usize>()).prop_map(|(k, a)| Step::Un(k, a)),
    ]
}

/// Replays a step program into the arena, returning every built id.
fn build(arena: &mut ExprArena, steps: &[Step]) -> Vec<ExprId> {
    let mut pool: Vec<ExprId> = vec![arena.input(0)];
    for step in steps {
        let id = match step {
            Step::Const(c) => arena.constant(*c),
            Step::Input(v) => arena.input(*v),
            Step::Bin(k, a, b) => {
                let a = pool[a % pool.len()];
                let b = pool[b % pool.len()];
                arena.bin(BINS[k % BINS.len()], a, b)
            }
            Step::Un(k, a) => {
                let a = pool[a % pool.len()];
                arena.un(UNS[k % UNS.len()], a)
            }
        };
        pool.push(id);
    }
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Equal canonical bytes ⇔ equal structural hash, across every pair of
    /// nodes in a randomly built, heavily shared DAG.
    #[test]
    fn structural_hashes_agree_with_canonical_serialization(
        steps in proptest::collection::vec(step_strategy(), 1..120),
    ) {
        let mut arena = ExprArena::new();
        let pool = build(&mut arena, &steps);
        // Canonical bytes are the retained reference key: an exact
        // pre-order serialization of the (simplified) term.
        let mut by_bytes: HashMap<Vec<u8>, (ExprId, u128)> = HashMap::new();
        for &id in &pool {
            let mut bytes = Vec::new();
            arena.write_canonical(id, &mut bytes);
            let hash = arena.structural_hash(id);
            match by_bytes.get(&bytes) {
                Some(&(prev, prev_hash)) => {
                    // Equal serialization ⇒ equal hash — and, because the
                    // arena interns, the very same id.
                    prop_assert_eq!(hash, prev_hash, "hash must be a function of the bytes");
                    prop_assert_eq!(id, prev, "structurally equal terms intern to one id");
                }
                None => {
                    by_bytes.insert(bytes, (id, hash));
                }
            }
        }
        // Collision audit: distinct serializations must have distinct
        // hashes (a collision here is either a construction bug or a
        // ~2^-64 freak event worth knowing about either way).
        let mut by_hash: HashMap<u128, &Vec<u8>> = HashMap::new();
        for (bytes, &(_, hash)) in &by_bytes {
            if let Some(other) = by_hash.insert(hash, bytes) {
                prop_assert_eq!(
                    other, bytes,
                    "structural-hash collision between distinct canonical terms"
                );
            }
        }
    }

    /// The same program replayed into two different arenas (one pre-warmed
    /// with unrelated nodes so all the ids differ) yields identical hashes
    /// and identical canonical bytes: keys are arena-independent, which is
    /// what lets the solve cache survive across runs.
    #[test]
    fn keys_are_arena_independent(
        steps in proptest::collection::vec(step_strategy(), 1..60),
        warm in 0u64..8,
    ) {
        let mut a = ExprArena::new();
        let mut b = ExprArena::new();
        for i in 0..warm {
            b.constant(0xdead_0000 + i);
            b.input(60 + i as usize);
        }
        let pa = build(&mut a, &steps);
        let pb = build(&mut b, &steps);
        for (&ia, &ib) in pa.iter().zip(&pb) {
            prop_assert_eq!(a.structural_hash(ia), b.structural_hash(ib));
            let mut ba = Vec::new();
            let mut bb = Vec::new();
            a.write_canonical(ia, &mut ba);
            b.write_canonical(ib, &mut bb);
            prop_assert_eq!(ba, bb);
        }
    }

    /// Constraint keys discriminate every component: operands, flag
    /// semantics, condition, and direction — mirrored against the
    /// serialization-based reference key.
    #[test]
    fn constraint_keys_match_their_canonical_bytes(
        steps in proptest::collection::vec(step_strategy(), 2..40),
        flag_is_sub in any::<bool>(),
        taken in any::<bool>(),
        cond_pick in 0usize..4,
    ) {
        let mut arena = ExprArena::new();
        let pool = build(&mut arena, &steps);
        let conds = [Cond::E, Cond::Ne, Cond::B, Cond::Ae];
        let mut by_bytes: HashMap<Vec<u8>, u128> = HashMap::new();
        let mut by_hash: HashMap<u128, Vec<u8>> = HashMap::new();
        for i in 0..pool.len().saturating_sub(1) {
            for &(f, t, c) in &[
                (flag_is_sub, taken, conds[cond_pick]),
                (!flag_is_sub, taken, conds[cond_pick]),
                (flag_is_sub, !taken, conds[cond_pick]),
                (flag_is_sub, taken, conds[(cond_pick + 1) % conds.len()]),
            ] {
                let con = Constraint {
                    lhs: pool[i],
                    rhs: pool[i + 1],
                    flag_is_sub: f,
                    cond: c,
                    taken: t,
                };
                let bytes = con.canonical_bytes(&arena);
                let hash = con.structural_hash(&arena);
                if let Some(&prev) = by_bytes.get(&bytes) {
                    prop_assert_eq!(hash, prev);
                } else {
                    by_bytes.insert(bytes.clone(), hash);
                }
                if let Some(prev_bytes) = by_hash.get(&hash) {
                    prop_assert_eq!(prev_bytes, &bytes, "constraint-key collision");
                } else {
                    by_hash.insert(hash, bytes);
                }
            }
        }
    }
}
