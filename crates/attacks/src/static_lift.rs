//! Static chain lifting — attack surface A1 taken seriously.
//!
//! [`crate::ropaware::gadget_guess`] models a byte-pattern scanner; this
//! module models the *next* attacker up: one who found the chain blob,
//! lifted every gadget to a transfer-function summary
//! ([`raindrop_analysis::absint::summarize`]) and now walks the chain with
//! a symbolic stack pointer ([`ChainWalker`]) to reconstruct the hidden
//! instruction stream without executing it.
//!
//! Against a chain with constant branch displacements the walk forks at
//! every conditional and reconstructs the whole program. Against the
//! paper's P1 predicate the branch displacement is an opaque array load —
//! the walker meets `add rsp, reg` with an unknown register and stops at
//! [`StopReason::OpaqueBranch`]: the static horizon the obfuscation is
//! designed to force. [`lift_function`] packages that outcome per function
//! so the experiment drivers can tabulate it next to
//! [`recovery_score`]-style instruction recovery.

use raindrop_analysis::absint::{ChainWalk, ChainWalker};
use raindrop_machine::Image;
use serde::{Deserialize, Serialize};

pub use raindrop_analysis::absint::{recovery_score, RecoveryScore, StopReason};

/// Outcome of statically lifting one function's ROP chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiftReport {
    /// The function whose chain was lifted.
    pub function: String,
    /// Bytes attributed to the chain blob (to the next data symbol).
    pub chain_bytes: usize,
    /// Distinct chain slots whose gadget the walk visited.
    pub visited: usize,
    /// Total gadget executions across all forked paths.
    pub steps: usize,
    /// Primary instructions recovered along visited gadgets.
    pub recovered_insts: usize,
    /// Whether any path reached the unpivot (full reconstruction).
    pub reached_unpivot: bool,
    /// Whether any path hit an opaque branch — the P1/P2 static horizon.
    pub hit_opaque: bool,
}

/// Locates `__rop_chain_{func}` in `image` and walks it abstractly.
///
/// Returns `None` when the chain symbol is absent (the function was not
/// ROP-rewritten, or the attacker guessed the wrong name). The chain
/// extent is estimated the same way a real attacker would: from the
/// symbol to the next data symbol, or the end of `.data`.
pub fn lift_function(image: &Image, func: &str) -> Option<LiftReport> {
    let addr = image.symbol(&crate::ropaware::chain_symbol(func)).ok()?;
    let start = (addr - image.data_base) as usize;
    let end = image
        .symbols
        .values()
        .copied()
        .filter(|a| image.in_data(*a) && *a > addr)
        .min()
        .map(|a| (a - image.data_base) as usize)
        .unwrap_or(image.data.len());
    let chain_bytes = end - start;
    let walk = ChainWalker::new(image, addr, chain_bytes).walk();
    Some(report(func, chain_bytes, &walk))
}

/// Lifts every `__rop_chain_*` symbol in the image, sorted by function
/// name — what an attacker does after a symbol scan, with no knowledge of
/// which functions were scheduled for rewriting (inner-layer chains of
/// cross-layer compositions are found too).
pub fn lift_image(image: &Image) -> Vec<LiftReport> {
    let mut funcs: Vec<&str> =
        image.symbols.keys().filter_map(|name| name.strip_prefix("__rop_chain_")).collect();
    funcs.sort_unstable();
    funcs.into_iter().filter_map(|f| lift_function(image, f)).collect()
}

fn report(func: &str, chain_bytes: usize, walk: &ChainWalk) -> LiftReport {
    LiftReport {
        function: func.to_string(),
        chain_bytes,
        visited: walk.visited,
        steps: walk.steps,
        recovered_insts: walk.recovered_insts,
        reached_unpivot: walk.reached_unpivot,
        hit_opaque: walk.hit_opaque(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop::{Rewriter, RopConfig};
    use raindrop_synth::codegen;
    use raindrop_synth::minic::{BinOp, Expr, Function, Program, Stmt};

    fn program() -> Program {
        // f(x) = if x < 10 { x * 3 } else { x - 2 }: one conditional, so
        // the walk has something to fork (or be stopped) on.
        Program {
            functions: vec![Function {
                name: "f".into(),
                params: 1,
                locals: 0,
                body: vec![Stmt::If(
                    Expr::bin(BinOp::Lt, Expr::Arg(0), Expr::Const(10)),
                    vec![Stmt::Return(Expr::bin(BinOp::Mul, Expr::Arg(0), Expr::Const(3)))],
                    vec![Stmt::Return(Expr::bin(BinOp::Sub, Expr::Arg(0), Expr::Const(2)))],
                )],
            }],
            globals: vec![],
        }
    }

    fn obfuscated(config: RopConfig) -> Image {
        let mut image = codegen::compile(&program()).unwrap();
        Rewriter::new(config).rewrite_function(&mut image, "f").unwrap();
        image
    }

    #[test]
    fn plain_chains_lift_and_full_strength_chains_hit_the_horizon() {
        let mut plain = RopConfig::plain();
        plain.p1 = None;
        plain.p2 = false;
        let open = lift_function(&obfuscated(plain), "f").unwrap();
        assert!(open.visited > 0 && open.recovered_insts > 0, "{open:?}");

        let shielded = lift_function(&obfuscated(RopConfig::full()), "f").unwrap();
        assert!(
            shielded.hit_opaque,
            "P1/P2 must stop the abstract walk at an opaque branch: {shielded:?}"
        );
        // The horizon is real: the shielded walk must not reconstruct a
        // complete straight-line chain.
        assert!(!shielded.reached_unpivot, "{shielded:?}");
    }

    #[test]
    fn unrewritten_functions_have_no_chain_to_lift() {
        let image = codegen::compile(&program()).unwrap();
        assert_eq!(lift_function(&image, "f"), None);
    }
}
