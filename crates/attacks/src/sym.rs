//! Symbolic expressions over the attacker-controlled input.
//!
//! The concolic attacker shadows a concrete execution with expressions over
//! a small set of input *variables* (the register argument of a RandomFuns
//! target, or the bytes of an input buffer for the base64 case study).
//! Expressions support direct evaluation — the solver works by inversion and
//! bounded search rather than an SMT backend, which is the reproduction's
//! stand-in for angr/S2E's solver (see DESIGN.md).

use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (x/0 = 0, matching the workloads' semantics).
    Div,
    /// Unsigned remainder (x%0 = x).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (count masked to 6 bits).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Equality, producing 0 or 1.
    Eq,
    /// Unsigned less-than, producing 0 or 1.
    Ult,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    /// Two's complement negation.
    Neg,
    /// Bitwise NOT.
    Not,
    /// Sign extension of the low byte.
    SextByte,
}

/// A symbolic expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymExpr {
    /// A concrete 64-bit constant.
    Const(u64),
    /// Input variable `i`.
    Input(usize),
    /// Binary operation.
    Bin(BinKind, Rc<SymExpr>, Rc<SymExpr>),
    /// Unary operation.
    Un(UnKind, Rc<SymExpr>),
}

impl SymExpr {
    /// Shared constant zero.
    pub fn zero() -> Rc<SymExpr> {
        Rc::new(SymExpr::Const(0))
    }

    /// Wraps a constant.
    pub fn constant(v: u64) -> Rc<SymExpr> {
        Rc::new(SymExpr::Const(v))
    }

    /// Wraps an input variable.
    pub fn input(i: usize) -> Rc<SymExpr> {
        Rc::new(SymExpr::Input(i))
    }

    /// Builds a binary node with local constant folding.
    pub fn bin(kind: BinKind, a: Rc<SymExpr>, b: Rc<SymExpr>) -> Rc<SymExpr> {
        if let (SymExpr::Const(x), SymExpr::Const(y)) = (a.as_ref(), b.as_ref()) {
            return SymExpr::constant(eval_bin(kind, *x, *y));
        }
        Rc::new(SymExpr::Bin(kind, a, b))
    }

    /// Builds a unary node with local constant folding.
    pub fn un(kind: UnKind, a: Rc<SymExpr>) -> Rc<SymExpr> {
        if let SymExpr::Const(x) = a.as_ref() {
            return SymExpr::constant(eval_un(kind, *x));
        }
        Rc::new(SymExpr::Un(kind, a))
    }

    /// Evaluates the expression for a concrete assignment of the input
    /// variables (missing variables read as zero).
    pub fn eval(&self, input: &[u64]) -> u64 {
        match self {
            SymExpr::Const(v) => *v,
            SymExpr::Input(i) => input.get(*i).copied().unwrap_or(0),
            SymExpr::Bin(k, a, b) => eval_bin(*k, a.eval(input), b.eval(input)),
            SymExpr::Un(k, a) => eval_un(*k, a.eval(input)),
        }
    }

    /// Whether the expression mentions any input variable.
    pub fn is_symbolic(&self) -> bool {
        match self {
            SymExpr::Const(_) => false,
            SymExpr::Input(_) => true,
            SymExpr::Bin(_, a, b) => a.is_symbolic() || b.is_symbolic(),
            SymExpr::Un(_, a) => a.is_symbolic(),
        }
    }

    /// The set of input variables the expression depends on.
    pub fn variables(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<usize>) {
        match self {
            SymExpr::Const(_) => {}
            SymExpr::Input(i) => {
                out.insert(*i);
            }
            SymExpr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            SymExpr::Un(_, a) => a.collect_vars(out),
        }
    }

    /// Number of nodes in the expression tree (used to bound expression
    /// growth during shadow execution).
    pub fn size(&self) -> usize {
        match self {
            SymExpr::Const(_) | SymExpr::Input(_) => 1,
            SymExpr::Bin(_, a, b) => 1 + a.size() + b.size(),
            SymExpr::Un(_, a) => 1 + a.size(),
        }
    }

    /// Number of times any input variable occurs in the tree.
    pub fn input_occurrences(&self) -> usize {
        match self {
            SymExpr::Const(_) => 0,
            SymExpr::Input(_) => 1,
            SymExpr::Bin(_, a, b) => a.input_occurrences() + b.input_occurrences(),
            SymExpr::Un(_, a) => a.input_occurrences(),
        }
    }

    /// Appends a canonical byte serialization of the expression to `out`.
    ///
    /// Two expressions serialize to the same bytes iff they are structurally
    /// equal, so the encoding can be used as an exact (collision-free) map
    /// key. The DSE constraint cache keys normalized path-constraint sets
    /// with it: duplicated constraints along a path collapse to one key, and
    /// equivalent frontier entries hit the same solver-cache slot.
    pub fn write_canonical(&self, out: &mut Vec<u8>) {
        match self {
            SymExpr::Const(v) => {
                out.push(0x01);
                out.extend_from_slice(&v.to_le_bytes());
            }
            SymExpr::Input(i) => {
                out.push(0x02);
                out.extend_from_slice(&(*i as u64).to_le_bytes());
            }
            SymExpr::Bin(k, a, b) => {
                out.push(0x03);
                out.push(*k as u8);
                a.write_canonical(out);
                b.write_canonical(out);
            }
            SymExpr::Un(k, a) => {
                out.push(0x04);
                out.push(*k as u8);
                a.write_canonical(out);
            }
        }
    }
}

/// Node-identity evaluation memo for one concrete input assignment.
///
/// Shadow execution builds expressions incrementally, so the constraints of
/// one path share subtrees heavily (a P3-strengthened ROP path measures
/// ~86× more tree nodes than distinct `Rc` nodes). Evaluating through a
/// memo keyed by node identity visits every distinct node once, which
/// turns a full path-constraint scan from a quadratic tree walk into a
/// linear pass. A memo is only meaningful for a single input — create a
/// fresh one (or [`EvalMemo::default`]) per candidate.
#[derive(Default)]
pub struct EvalMemo {
    map: HashMap<*const SymExpr, u64>,
}

/// Evaluates `expr` for `input` through `memo`, sharing work across all
/// expressions that reference the same nodes. Results are identical to
/// [`SymExpr::eval`].
pub fn eval_shared(expr: &Rc<SymExpr>, input: &[u64], memo: &mut EvalMemo) -> u64 {
    match expr.as_ref() {
        SymExpr::Const(v) => *v,
        SymExpr::Input(i) => input.get(*i).copied().unwrap_or(0),
        _ => {
            let key = Rc::as_ptr(expr);
            if let Some(&v) = memo.map.get(&key) {
                return v;
            }
            let v = match expr.as_ref() {
                SymExpr::Bin(k, a, b) => {
                    eval_bin(*k, eval_shared(a, input, memo), eval_shared(b, input, memo))
                }
                SymExpr::Un(k, a) => eval_un(*k, eval_shared(a, input, memo)),
                _ => unreachable!("leaves handled above"),
            };
            memo.map.insert(key, v);
            v
        }
    }
}

fn eval_bin(kind: BinKind, a: u64, b: u64) -> u64 {
    match kind {
        BinKind::Add => a.wrapping_add(b),
        BinKind::Sub => a.wrapping_sub(b),
        BinKind::Mul => a.wrapping_mul(b),
        BinKind::Div => a.checked_div(b).unwrap_or(0),
        BinKind::Rem => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        BinKind::And => a & b,
        BinKind::Or => a | b,
        BinKind::Xor => a ^ b,
        BinKind::Shl => a << (b & 63),
        BinKind::Shr => a >> (b & 63),
        BinKind::Sar => ((a as i64) >> (b & 63)) as u64,
        BinKind::Eq => (a == b) as u64,
        BinKind::Ult => (a < b) as u64,
    }
}

fn eval_un(kind: UnKind, a: u64) -> u64 {
    match kind {
        UnKind::Neg => (a as i64).wrapping_neg() as u64,
        UnKind::Not => !a,
        UnKind::SextByte => a as u8 as i8 as i64 as u64,
    }
}

/// Attempts to find a value of variable `var` such that `expr == target`,
/// assuming all other variables keep the values in `input`. Succeeds when
/// the variable occurs exactly once along an invertible operator chain.
pub fn invert(expr: &SymExpr, target: u64, var: usize, input: &[u64]) -> Option<u64> {
    match expr {
        SymExpr::Const(v) => {
            if *v == target {
                Some(input.get(var).copied().unwrap_or(0))
            } else {
                None
            }
        }
        SymExpr::Input(i) => {
            if *i == var {
                Some(target)
            } else {
                None
            }
        }
        SymExpr::Un(k, a) => {
            let new_target = match k {
                UnKind::Neg => (target as i64).wrapping_neg() as u64,
                UnKind::Not => !target,
                UnKind::SextByte => {
                    // Invertible only if the target is a valid sign extension.
                    let low = target as u8;
                    if (low as i8 as i64 as u64) == target {
                        // Any value with that low byte works; keep the rest 0.
                        low as u64
                    } else {
                        return None;
                    }
                }
            };
            invert(a, new_target, var, input)
        }
        SymExpr::Bin(k, a, b) => {
            let a_has = a.variables().contains(&var);
            let b_has = b.variables().contains(&var);
            if a_has && b_has {
                return None;
            }
            if !a_has && !b_has {
                return None;
            }
            let (sym, other_value, var_on_left) = if a_has {
                (a.as_ref(), b.eval(input), true)
            } else {
                (b.as_ref(), a.eval(input), false)
            };
            let new_target = match (k, var_on_left) {
                (BinKind::Add, _) => target.wrapping_sub(other_value),
                (BinKind::Xor, _) => target ^ other_value,
                (BinKind::Sub, true) => target.wrapping_add(other_value),
                (BinKind::Sub, false) => other_value.wrapping_sub(target),
                (BinKind::Mul, _) => {
                    if other_value % 2 == 0 {
                        return None;
                    }
                    target.wrapping_mul(mod_inverse(other_value))
                }
                (BinKind::And, _)
                    // x & m == target requires target ⊆ m; any x with those
                    // bits works, pick target itself.
                    if target & other_value == target => {
                        target
                    }
                (BinKind::Or, _)
                    // x | m == target requires m ⊆ target.
                    if other_value & target == other_value => {
                        target & !other_value
                    }
                (BinKind::Shl, true) => {
                    let s = other_value & 63;
                    if target.trailing_zeros() as u64 >= s {
                        target >> s
                    } else {
                        return None;
                    }
                }
                (BinKind::Shr, true) => {
                    let s = other_value & 63;
                    if target.leading_zeros() as u64 >= s {
                        target << s
                    } else {
                        return None;
                    }
                }
                _ => return None,
            };
            invert(sym, new_target, var, input)
        }
    }
}

/// Node-identity memo of "does this subtree mention variable `var`" for
/// one fixed variable; companion to [`EvalMemo`] for [`invert_shared`].
#[derive(Default)]
pub struct VarMemo {
    map: HashMap<*const SymExpr, bool>,
}

fn contains_var(expr: &Rc<SymExpr>, var: usize, memo: &mut VarMemo) -> bool {
    match expr.as_ref() {
        SymExpr::Const(_) => false,
        SymExpr::Input(i) => *i == var,
        _ => {
            let key = Rc::as_ptr(expr);
            if let Some(&v) = memo.map.get(&key) {
                return v;
            }
            let v = match expr.as_ref() {
                SymExpr::Bin(_, a, b) => contains_var(a, var, memo) || contains_var(b, var, memo),
                SymExpr::Un(_, a) => contains_var(a, var, memo),
                _ => unreachable!("leaves handled above"),
            };
            memo.map.insert(key, v);
            v
        }
    }
}

/// [`invert`] through shared-subtree memos: identical results, but the
/// per-node "which side holds the variable" test and the constant-side
/// evaluation are O(1) amortized instead of a sub-walk each — on the
/// heavily shared expressions P3 builds, plain `invert` is quadratic and
/// dominates the solver.
pub fn invert_shared(
    expr: &Rc<SymExpr>,
    target: u64,
    var: usize,
    input: &[u64],
    eval: &mut EvalMemo,
    vars: &mut VarMemo,
) -> Option<u64> {
    match expr.as_ref() {
        SymExpr::Const(v) => {
            if *v == target {
                Some(input.get(var).copied().unwrap_or(0))
            } else {
                None
            }
        }
        SymExpr::Input(i) => {
            if *i == var {
                Some(target)
            } else {
                None
            }
        }
        SymExpr::Un(k, a) => {
            let new_target = match k {
                UnKind::Neg => (target as i64).wrapping_neg() as u64,
                UnKind::Not => !target,
                UnKind::SextByte => {
                    let low = target as u8;
                    if (low as i8 as i64 as u64) == target {
                        low as u64
                    } else {
                        return None;
                    }
                }
            };
            invert_shared(a, new_target, var, input, eval, vars)
        }
        SymExpr::Bin(k, a, b) => {
            let a_has = contains_var(a, var, vars);
            let b_has = contains_var(b, var, vars);
            if a_has == b_has {
                return None;
            }
            let (sym, other_value, var_on_left) = if a_has {
                (a, eval_shared(b, input, eval), true)
            } else {
                (b, eval_shared(a, input, eval), false)
            };
            let new_target = match (k, var_on_left) {
                (BinKind::Add, _) => target.wrapping_sub(other_value),
                (BinKind::Xor, _) => target ^ other_value,
                (BinKind::Sub, true) => target.wrapping_add(other_value),
                (BinKind::Sub, false) => other_value.wrapping_sub(target),
                (BinKind::Mul, _) => {
                    if other_value % 2 == 0 {
                        return None;
                    }
                    target.wrapping_mul(mod_inverse(other_value))
                }
                (BinKind::And, _) if target & other_value == target => target,
                (BinKind::Or, _) if other_value & target == other_value => target & !other_value,
                (BinKind::Shl, true) => {
                    let s = other_value & 63;
                    if target.trailing_zeros() as u64 >= s {
                        target >> s
                    } else {
                        return None;
                    }
                }
                (BinKind::Shr, true) => {
                    let s = other_value & 63;
                    if target.leading_zeros() as u64 >= s {
                        target << s
                    } else {
                        return None;
                    }
                }
                _ => return None,
            };
            invert_shared(sym, new_target, var, input, eval, vars)
        }
    }
}

/// Modular inverse of an odd 64-bit value (Newton iteration).
fn mod_inverse(a: u64) -> u64 {
    debug_assert!(a % 2 == 1);
    let mut x = a; // correct to 3 bits
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Rc<SymExpr> {
        SymExpr::input(0)
    }

    #[test]
    fn evaluation_and_constant_folding() {
        let e = SymExpr::bin(BinKind::Add, SymExpr::constant(2), SymExpr::constant(40));
        assert_eq!(*e, SymExpr::Const(42), "constants fold");
        let e = SymExpr::bin(BinKind::Mul, x(), SymExpr::constant(3));
        assert_eq!(e.eval(&[7]), 21);
        assert!(e.is_symbolic());
        assert_eq!(e.variables().len(), 1);
        assert_eq!(e.size(), 3);
        assert_eq!(e.input_occurrences(), 1);
    }

    #[test]
    fn inversion_of_affine_and_xor_chains() {
        // ((x ^ 0x55) + 100) * 7 == target
        let e = SymExpr::bin(
            BinKind::Mul,
            SymExpr::bin(
                BinKind::Add,
                SymExpr::bin(BinKind::Xor, x(), SymExpr::constant(0x55)),
                SymExpr::constant(100),
            ),
            SymExpr::constant(7),
        );
        let want = 0xDEADBEEFu64;
        let target = e.eval(&[want]);
        let got = invert(&e, target, 0, &[0]).expect("invertible");
        assert_eq!(e.eval(&[got]), target);
        assert_eq!(got, want);
    }

    #[test]
    fn inversion_of_not_neg_sub_div_free_chain() {
        // ~( 1000 - x ) == target
        let e = SymExpr::un(UnKind::Not, SymExpr::bin(BinKind::Sub, SymExpr::constant(1000), x()));
        let target = e.eval(&[123]);
        let got = invert(&e, target, 0, &[0]).unwrap();
        assert_eq!(e.eval(&[got]), target);
    }

    #[test]
    fn inversion_through_and_mask_respects_feasibility() {
        let e = SymExpr::bin(BinKind::And, x(), SymExpr::constant(0xffff));
        assert_eq!(invert(&e, 0x1234, 0, &[0]), Some(0x1234));
        assert_eq!(invert(&e, 0x1_0000, 0, &[0]), None, "target outside the mask");
    }

    #[test]
    fn inversion_gives_up_on_multiple_occurrences() {
        let e = SymExpr::bin(BinKind::Add, x(), x());
        assert_eq!(invert(&e, 10, 0, &[0]), None);
    }

    #[test]
    fn mod_inverse_is_correct() {
        for a in [1u64, 3, 5, 7, 0xDEADBEEF | 1, u64::MAX] {
            assert_eq!(a.wrapping_mul(mod_inverse(a)), 1, "a = {a}");
        }
    }
}
