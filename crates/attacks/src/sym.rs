//! Hash-consed symbolic expressions over the attacker-controlled input.
//!
//! The concolic attacker shadows a concrete execution with expressions over
//! a small set of input *variables* (the register argument of a RandomFuns
//! target, or the bytes of an input buffer for the base64 case study).
//! Expressions support direct evaluation — the solver works by inversion and
//! bounded search rather than an SMT backend, which is the reproduction's
//! stand-in for angr/S2E's solver (see DESIGN.md).
//!
//! # The arena
//!
//! All expressions live in an [`ExprArena`] and are handled through interned
//! [`ExprId`]s: building a node that already exists returns the existing id,
//! so *id equality is structural equality* within one arena. Interning buys
//! three things the previous `Rc`-tree representation could not provide:
//!
//! * **O(1) structural keys.** Every node carries a 128-bit structural hash
//!   computed at construction from its kind and its children's hashes. The
//!   hash depends only on the expression's *structure* — never on arena
//!   layout or creation order — so two arenas (e.g. two runs of one attack)
//!   assign equal hashes to equal expressions and the persistent solve
//!   cache keys stay valid across runs.
//! * **Real size accounting.** Nodes cache their tree size (what a naive
//!   walk would visit) *and* the arena can compute the DAG size (distinct
//!   nodes reachable — the real memory footprint). Shadow execution bounds
//!   expression growth by DAG size, so shared subterms are no longer
//!   counted once per reference: a P3-strengthened chain measures ~86×
//!   more tree nodes than distinct nodes, which is exactly the factor by
//!   which the old tree-size hazard fired too early.
//! * **Build-time simplification.** Constant folding, identity and
//!   annihilator elimination, double negation and commutative operand
//!   ordering run before a node is interned, so the arena never stores the
//!   reducible forms at all.
//!
//! # Example
//!
//! ```
//! use raindrop_attacks::sym::{BinKind, ExprArena};
//!
//! let mut arena = ExprArena::new();
//! let x = arena.input(0);
//! let c = arena.constant(17);
//! let e = arena.bin(BinKind::Add, x, c);
//!
//! // Interning: rebuilding the same expression yields the same id.
//! let c2 = arena.constant(17);
//! let e2 = arena.bin(BinKind::Add, x, c2);
//! assert_eq!(e, e2);
//!
//! // Identity elimination: x + 0 is x itself, no node is created.
//! let zero = arena.constant(0);
//! assert_eq!(arena.bin(BinKind::Add, x, zero), x);
//!
//! let mut memo = raindrop_attacks::sym::EvalMemo::default();
//! assert_eq!(arena.eval(e, &[25], &mut memo), 42);
//! ```

use std::collections::{BTreeSet, HashMap};

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (x/0 = 0, matching the workloads' semantics).
    Div,
    /// Unsigned remainder (x%0 = x).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (count masked to 6 bits).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Equality, producing 0 or 1.
    Eq,
    /// Unsigned less-than, producing 0 or 1.
    Ult,
}

impl BinKind {
    /// Whether the operator is commutative under [`eval_bin`] semantics.
    fn commutative(self) -> bool {
        matches!(
            self,
            BinKind::Add | BinKind::Mul | BinKind::And | BinKind::Or | BinKind::Xor | BinKind::Eq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnKind {
    /// Two's complement negation.
    Neg,
    /// Bitwise NOT.
    Not,
    /// Sign extension of the low byte.
    SextByte,
}

/// An interned expression handle: a cheap `Copy` index into an
/// [`ExprArena`]. Two ids of the same arena are equal iff the expressions
/// are structurally equal (hash-consing interns every node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// The arena slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shape of one expression node, with children as interned ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A concrete 64-bit constant.
    Const(u64),
    /// Input variable `i`.
    Input(u32),
    /// Binary operation.
    Bin(BinKind, ExprId, ExprId),
    /// Unary operation.
    Un(UnKind, ExprId),
}

/// Per-node cached facts, computed once at intern time.
struct Node {
    expr: Expr,
    /// Structural 128-bit hash; depends only on the expression's structure,
    /// not on the arena that holds it.
    hash: u128,
    /// Tree-node count a naive walk would visit (saturating).
    tree: u64,
    /// Bitmask of input variables `0..64` the expression mentions.
    vars: u64,
    /// Whether any input variable `>= 64` is mentioned.
    vars_hi: bool,
}

/// Encoding of the per-node DAG-size cache: 0 = unknown; with
/// [`DAG_LOWER_BOUND`] set the low bits are a *lower bound* on the distinct
/// node count (the traversal aborted there); otherwise the value is exact.
const DAG_LOWER_BOUND: u32 = 0x8000_0000;

/// A hash-consing arena of symbolic expressions.
///
/// One arena backs one shadow execution engine (one [`DseAttack`] run or
/// one [`shadow_run`]); ids from different arenas must not be mixed. The
/// arena grows monotonically — interned nodes are never dropped while the
/// engine lives — and its [`Default`] state is empty.
///
/// [`DseAttack`]: crate::concolic::DseAttack
/// [`shadow_run`]: crate::concolic::shadow_run
#[derive(Default)]
pub struct ExprArena {
    nodes: Vec<Node>,
    intern: HashMap<Expr, ExprId>,
    /// DAG-size cache, parallel to `nodes` (see [`DAG_LOWER_BOUND`]).
    dag: Vec<u32>,
    /// Visit stamps for bounded traversals, parallel to `nodes`.
    stamp: Vec<u32>,
    epoch: u32,
    scratch: Vec<ExprId>,
}

impl ExprArena {
    /// Creates an empty arena.
    pub fn new() -> ExprArena {
        ExprArena::default()
    }

    /// Number of distinct nodes interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no nodes yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node shape behind an id.
    #[inline]
    pub fn expr(&self, id: ExprId) -> Expr {
        self.nodes[id.index()].expr
    }

    /// The structural hash of the expression. Equal for structurally equal
    /// expressions across *different* arenas, which is what lets solver
    /// caches persist across engine runs.
    #[inline]
    pub fn structural_hash(&self, id: ExprId) -> u128 {
        self.nodes[id.index()].hash
    }

    /// Tree-node count (what a naive recursive walk would visit),
    /// saturating at `u64::MAX`. Cached, O(1).
    #[inline]
    pub fn tree_size(&self, id: ExprId) -> u64 {
        self.nodes[id.index()].tree
    }

    /// Whether the expression mentions any input variable. O(1).
    #[inline]
    pub fn is_symbolic(&self, id: ExprId) -> bool {
        let n = &self.nodes[id.index()];
        n.vars != 0 || n.vars_hi
    }

    /// Whether the expression mentions input variable `var`. O(1) for
    /// variables below 64 (the bitmask covers them); a bounded traversal
    /// otherwise.
    pub fn contains_var(&mut self, id: ExprId, var: usize) -> bool {
        let n = &self.nodes[id.index()];
        if var < 64 {
            return n.vars & (1u64 << var) != 0;
        }
        if !n.vars_hi {
            return false;
        }
        // Rare slow path: a buffer wider than 64 variables.
        self.begin_visit();
        let mut stack = std::mem::take(&mut self.scratch);
        stack.clear();
        stack.push(id);
        let mut found = false;
        while let Some(cur) = stack.pop() {
            if !self.visit(cur) {
                continue;
            }
            match self.nodes[cur.index()].expr {
                Expr::Const(_) => {}
                Expr::Input(i) => {
                    if i as usize == var {
                        found = true;
                        break;
                    }
                }
                Expr::Bin(_, a, b) => {
                    if self.nodes[a.index()].vars_hi {
                        stack.push(a);
                    }
                    if self.nodes[b.index()].vars_hi {
                        stack.push(b);
                    }
                }
                Expr::Un(_, a) => {
                    if self.nodes[a.index()].vars_hi {
                        stack.push(a);
                    }
                }
            }
        }
        self.scratch = stack;
        found
    }

    /// The set of input variables the expression depends on.
    pub fn variables(&mut self, id: ExprId, out: &mut BTreeSet<usize>) {
        if !self.is_symbolic(id) {
            return;
        }
        self.begin_visit();
        let mut stack = std::mem::take(&mut self.scratch);
        stack.clear();
        stack.push(id);
        while let Some(cur) = stack.pop() {
            if !self.visit(cur) {
                continue;
            }
            match self.nodes[cur.index()].expr {
                Expr::Const(_) => {}
                Expr::Input(i) => {
                    out.insert(i as usize);
                }
                Expr::Bin(_, a, b) => {
                    if self.is_symbolic(a) {
                        stack.push(a);
                    }
                    if self.is_symbolic(b) {
                        stack.push(b);
                    }
                }
                Expr::Un(_, a) => {
                    if self.is_symbolic(a) {
                        stack.push(a);
                    }
                }
            }
        }
        self.scratch = stack;
    }

    /// Whether the expression's *DAG size* (distinct reachable nodes — the
    /// real memory footprint) exceeds `limit`.
    ///
    /// Fast paths make the check O(1) almost always: a tree size within the
    /// limit bounds the DAG size from above, and once an expression has
    /// been measured oversized, every expression built on top of it
    /// inherits the verdict without traversal (a node's DAG is a superset
    /// of each child's). Only the first crossing pays a bounded traversal
    /// of at most `limit + 1` distinct nodes.
    pub fn dag_oversize(&mut self, id: ExprId, limit: usize) -> bool {
        if self.nodes[id.index()].tree <= limit as u64 {
            return false;
        }
        let cached = self.dag[id.index()];
        if cached != 0 {
            let val = (cached & !DAG_LOWER_BOUND) as usize;
            if val > limit {
                return true;
            }
            if cached & DAG_LOWER_BOUND == 0 {
                return false;
            }
        }
        match self.dag_size_up_to(id, limit) {
            Some(exact) => {
                self.dag[id.index()] = exact;
                false
            }
            None => {
                self.dag[id.index()] = (limit as u32 + 1) | DAG_LOWER_BOUND;
                true
            }
        }
    }

    /// Counts distinct reachable nodes, giving up (returning `None`) once
    /// the count exceeds `limit`.
    fn dag_size_up_to(&mut self, id: ExprId, limit: usize) -> Option<u32> {
        self.begin_visit();
        let mut stack = std::mem::take(&mut self.scratch);
        stack.clear();
        stack.push(id);
        let mut count: usize = 0;
        let mut over = false;
        while let Some(cur) = stack.pop() {
            if !self.visit(cur) {
                continue;
            }
            count += 1;
            if count > limit {
                over = true;
                break;
            }
            match self.nodes[cur.index()].expr {
                Expr::Const(_) | Expr::Input(_) => {}
                Expr::Bin(_, a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Expr::Un(_, a) => stack.push(a),
            }
        }
        self.scratch = stack;
        if over {
            None
        } else {
            Some(count as u32)
        }
    }

    /// Exact DAG size (distinct reachable nodes) of the expression.
    pub fn dag_size(&mut self, id: ExprId) -> usize {
        self.dag_size_up_to(id, usize::MAX - 1).expect("unbounded count cannot abort") as usize
    }

    fn begin_visit(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `id` visited in the current traversal; returns false if it
    /// already was.
    #[inline]
    fn visit(&mut self, id: ExprId) -> bool {
        let s = &mut self.stamp[id.index()];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }

    /// Interns a constant.
    pub fn constant(&mut self, v: u64) -> ExprId {
        self.intern_node(Expr::Const(v))
    }

    /// Interns input variable `i`.
    pub fn input(&mut self, i: usize) -> ExprId {
        self.intern_node(Expr::Input(i as u32))
    }

    /// As [`ExprArena::constant`] for the value 0.
    pub fn zero(&mut self) -> ExprId {
        self.constant(0)
    }

    fn as_const(&self, id: ExprId) -> Option<u64> {
        match self.nodes[id.index()].expr {
            Expr::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Builds a binary node, applying constant folding, identity and
    /// annihilator elimination and commutative operand ordering before
    /// interning. All rewrites preserve the evaluation semantics exactly
    /// (including `x/0 = 0`, `x%0 = x` and 6-bit shift-count masking).
    pub fn bin(&mut self, kind: BinKind, a: ExprId, b: ExprId) -> ExprId {
        use BinKind::*;
        let ca = self.as_const(a);
        let cb = self.as_const(b);
        if let (Some(x), Some(y)) = (ca, cb) {
            return self.constant(eval_bin(kind, x, y));
        }
        match kind {
            Add => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
            }
            Sub => {
                if cb == Some(0) {
                    return a;
                }
                if a == b {
                    return self.constant(0);
                }
            }
            Mul => {
                if ca == Some(0) || cb == Some(0) {
                    return self.constant(0);
                }
                if ca == Some(1) {
                    return b;
                }
                if cb == Some(1) {
                    return a;
                }
            }
            Div => {
                // x/1 = x; x/0 = 0 and 0/x = 0 under the workload semantics.
                if cb == Some(1) {
                    return a;
                }
                if cb == Some(0) || ca == Some(0) {
                    return self.constant(0);
                }
            }
            Rem => {
                // x%1 = 0; x%0 = x; 0%x = 0 (both the x%0=x and the normal
                // branch agree on 0 for a zero dividend).
                if cb == Some(1) {
                    return self.constant(0);
                }
                if cb == Some(0) {
                    return a;
                }
                if ca == Some(0) {
                    return self.constant(0);
                }
            }
            And => {
                if ca == Some(0) || cb == Some(0) {
                    return self.constant(0);
                }
                if ca == Some(u64::MAX) {
                    return b;
                }
                if cb == Some(u64::MAX) {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            Or => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
                if ca == Some(u64::MAX) || cb == Some(u64::MAX) {
                    return self.constant(u64::MAX);
                }
                if a == b {
                    return a;
                }
            }
            Xor => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
                if a == b {
                    return self.constant(0);
                }
            }
            Shl | Shr | Sar => {
                // Shift counts are masked to 6 bits, so a count ≡ 0 (mod 64)
                // is the identity; a zero subject stays zero.
                if cb.is_some_and(|c| c & 63 == 0) {
                    return a;
                }
                if ca == Some(0) {
                    return self.constant(0);
                }
            }
            Eq => {
                if a == b {
                    return self.constant(1);
                }
            }
            Ult => {
                if a == b || cb == Some(0) {
                    // x < x and x < 0 are both unsigned-false.
                    return self.constant(0);
                }
            }
        }
        let (a, b) =
            if kind.commutative() && self.nodes[a.index()].hash > self.nodes[b.index()].hash {
                (b, a)
            } else {
                (a, b)
            };
        self.intern_node(Expr::Bin(kind, a, b))
    }

    /// Builds a unary node with constant folding and double-negation /
    /// double-NOT elimination (`SextByte` is idempotent).
    pub fn un(&mut self, kind: UnKind, a: ExprId) -> ExprId {
        if let Some(x) = self.as_const(a) {
            return self.constant(eval_un(kind, x));
        }
        match (kind, self.nodes[a.index()].expr) {
            (UnKind::Neg, Expr::Un(UnKind::Neg, inner)) => return inner,
            (UnKind::Not, Expr::Un(UnKind::Not, inner)) => return inner,
            (UnKind::SextByte, Expr::Un(UnKind::SextByte, _)) => return a,
            _ => {}
        }
        self.intern_node(Expr::Un(kind, a))
    }

    fn intern_node(&mut self, expr: Expr) -> ExprId {
        if let Some(&id) = self.intern.get(&expr) {
            return id;
        }
        let (hash, tree, vars, vars_hi) = match expr {
            Expr::Const(v) => (structural_hash_leaf(0x01, v), 1, 0, false),
            Expr::Input(i) => {
                let vars = if i < 64 { 1u64 << i } else { 0 };
                (structural_hash_leaf(0x02, i as u64), 1, vars, i >= 64)
            }
            Expr::Bin(k, a, b) => {
                let na = &self.nodes[a.index()];
                let nb = &self.nodes[b.index()];
                (
                    structural_hash_bin(k, na.hash, nb.hash),
                    1u64.saturating_add(na.tree).saturating_add(nb.tree),
                    na.vars | nb.vars,
                    na.vars_hi || nb.vars_hi,
                )
            }
            Expr::Un(k, a) => {
                let na = &self.nodes[a.index()];
                (structural_hash_un(k, na.hash), 1u64.saturating_add(na.tree), na.vars, na.vars_hi)
            }
        };
        let id = ExprId(u32::try_from(self.nodes.len()).expect("arena holds < 2^32 nodes"));
        // A child already measured (or bounded) seeds the parent's DAG-size
        // cache: the parent's DAG is a superset of each child's, so the
        // child's count is a valid lower bound and an oversized child makes
        // the parent oversized without any traversal.
        let dag_seed = match expr {
            Expr::Const(_) | Expr::Input(_) => 0,
            Expr::Un(_, a) => self.dag[a.index()] & !DAG_LOWER_BOUND,
            Expr::Bin(_, a, b) => {
                (self.dag[a.index()] & !DAG_LOWER_BOUND).max(self.dag[b.index()] & !DAG_LOWER_BOUND)
            }
        };
        self.nodes.push(Node { expr, hash, tree, vars, vars_hi });
        self.dag.push(if dag_seed == 0 { 0 } else { dag_seed | DAG_LOWER_BOUND });
        self.stamp.push(0);
        self.intern.insert(expr, id);
        id
    }

    /// Evaluates the expression for a concrete assignment of the input
    /// variables (missing variables read as zero). Iterative and memoized:
    /// each distinct node is visited once per [`EvalMemo`] epoch, so
    /// scanning a whole path's constraints is linear in distinct nodes.
    pub fn eval(&self, root: ExprId, input: &[u64], memo: &mut EvalMemo) -> u64 {
        memo.ensure(self.nodes.len());
        if let Some(v) = memo.get(root) {
            return v;
        }
        let mut stack = std::mem::take(&mut memo.stack);
        stack.clear();
        stack.push(root);
        while let Some(&id) = stack.last() {
            if memo.get(id).is_some() {
                stack.pop();
                continue;
            }
            let v = match self.nodes[id.index()].expr {
                Expr::Const(v) => v,
                Expr::Input(i) => input.get(i as usize).copied().unwrap_or(0),
                Expr::Bin(k, a, b) => match (memo.get(a), memo.get(b)) {
                    (Some(x), Some(y)) => eval_bin(k, x, y),
                    (ma, mb) => {
                        if mb.is_none() {
                            stack.push(b);
                        }
                        if ma.is_none() {
                            stack.push(a);
                        }
                        continue;
                    }
                },
                Expr::Un(k, a) => match memo.get(a) {
                    Some(x) => eval_un(k, x),
                    None => {
                        stack.push(a);
                        continue;
                    }
                },
            };
            memo.set(id, v);
            stack.pop();
        }
        memo.stack = stack;
        memo.get(root).expect("root evaluated")
    }

    /// Appends a canonical byte serialization of the expression to `out`.
    ///
    /// Two expressions serialize to the same bytes iff they are structurally
    /// equal, so the encoding is an exact (collision-free) key. The engine
    /// itself keys constraints by interned ids and structural hashes; the
    /// serialization is retained as the *reference* key for the key-soundness
    /// property suite (equal bytes ⇔ equal structural hash) and for audits.
    /// The output is tree-sized — exponential in depth under heavy sharing —
    /// so it must never sit on a hot path.
    pub fn write_canonical(&self, root: ExprId, out: &mut Vec<u8>) {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            match self.nodes[id.index()].expr {
                Expr::Const(v) => {
                    out.push(0x01);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Expr::Input(i) => {
                    out.push(0x02);
                    out.extend_from_slice(&(i as u64).to_le_bytes());
                }
                Expr::Bin(k, a, b) => {
                    out.push(0x03);
                    out.push(k as u8);
                    stack.push(b);
                    stack.push(a);
                }
                Expr::Un(k, a) => {
                    out.push(0x04);
                    out.push(k as u8);
                    stack.push(a);
                }
            }
        }
    }
}

/// Epoch-stamped evaluation memo for one concrete input assignment.
///
/// Dense arrays indexed by [`ExprId`] (no hashing on the hot path). A memo
/// is only meaningful for a single input; [`EvalMemo::reset`] invalidates
/// all entries in O(1) by bumping the epoch, so one allocation serves every
/// candidate the solver tries.
#[derive(Default)]
pub struct EvalMemo {
    vals: Vec<u64>,
    stamps: Vec<u32>,
    epoch: u32,
    stack: Vec<ExprId>,
}

impl EvalMemo {
    /// Invalidates every memoized value (O(1)); call when switching to a
    /// different input assignment.
    pub fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    fn ensure(&mut self, len: usize) {
        if self.epoch == 0 {
            self.epoch = 1;
        }
        if self.vals.len() < len {
            self.vals.resize(len, 0);
            self.stamps.resize(len, 0);
        }
    }

    #[inline]
    fn get(&self, id: ExprId) -> Option<u64> {
        (self.stamps[id.index()] == self.epoch).then(|| self.vals[id.index()])
    }

    #[inline]
    fn set(&mut self, id: ExprId, v: u64) {
        self.stamps[id.index()] = self.epoch;
        self.vals[id.index()] = v;
    }
}

/// Structural hash of a leaf: a tag byte plus the payload.
fn structural_hash_leaf(tag: u8, payload: u64) -> u128 {
    hash_stream(&[tag as u128, payload as u128])
}

fn structural_hash_bin(k: BinKind, a: u128, b: u128) -> u128 {
    hash_stream(&[0x03, k as u8 as u128, a, b])
}

fn structural_hash_un(k: UnKind, a: u128) -> u128 {
    hash_stream(&[0x04, k as u8 as u128, a])
}

/// 128-bit FNV-1a-style mix over a word stream: two independent 64-bit
/// lanes (multiply-xor and rotate-multiply) combined, the same construction
/// the canonical-byte hash used previously. Not cryptographic — collision
/// odds across the ≤ 2^32 nodes of an arena are ~2^-64.
pub(crate) fn hash_stream(words: &[u128]) -> u128 {
    let mut lo = 0xcbf29ce484222325u64;
    let mut hi = 0x9e3779b97f4a7c15u64;
    for w in words {
        for part in [*w as u64, (*w >> 64) as u64] {
            lo = (lo ^ part).wrapping_mul(0x100000001b3);
            hi = (hi ^ part).wrapping_mul(0xff51afd7ed558ccd).rotate_left(23);
        }
    }
    ((hi as u128) << 64) | lo as u128
}

/// Concrete semantics of the binary operators (shift counts masked to 6
/// bits, `x/0 = 0`, `x%0 = x`, comparisons producing 0/1).
pub(crate) fn eval_bin(kind: BinKind, a: u64, b: u64) -> u64 {
    match kind {
        BinKind::Add => a.wrapping_add(b),
        BinKind::Sub => a.wrapping_sub(b),
        BinKind::Mul => a.wrapping_mul(b),
        BinKind::Div => a.checked_div(b).unwrap_or(0),
        BinKind::Rem => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        BinKind::And => a & b,
        BinKind::Or => a | b,
        BinKind::Xor => a ^ b,
        BinKind::Shl => a << (b & 63),
        BinKind::Shr => a >> (b & 63),
        BinKind::Sar => ((a as i64) >> (b & 63)) as u64,
        BinKind::Eq => (a == b) as u64,
        BinKind::Ult => (a < b) as u64,
    }
}

/// Concrete semantics of the unary operators.
pub(crate) fn eval_un(kind: UnKind, a: u64) -> u64 {
    match kind {
        UnKind::Neg => (a as i64).wrapping_neg() as u64,
        UnKind::Not => !a,
        UnKind::SextByte => a as u8 as i8 as i64 as u64,
    }
}

/// Attempts to find a value of variable `var` such that `expr == target`,
/// assuming all other variables keep the values in `input`. Succeeds when
/// the variable occurs exactly once along an invertible operator chain.
/// Iterative over the operator spine, with O(1) variable-occurrence tests
/// from the arena's cached masks, so deep chains neither recurse nor
/// re-walk subtrees.
pub fn invert(
    arena: &mut ExprArena,
    expr: ExprId,
    target: u64,
    var: usize,
    input: &[u64],
    memo: &mut EvalMemo,
) -> Option<u64> {
    let mut cur = expr;
    let mut target = target;
    loop {
        match arena.expr(cur) {
            Expr::Const(v) => {
                return (v == target).then(|| input.get(var).copied().unwrap_or(0));
            }
            Expr::Input(i) => {
                return (i as usize == var).then_some(target);
            }
            Expr::Un(k, a) => {
                target = match k {
                    UnKind::Neg => (target as i64).wrapping_neg() as u64,
                    UnKind::Not => !target,
                    UnKind::SextByte => {
                        // Invertible only if the target is a valid sign
                        // extension; any value with that low byte works.
                        let low = target as u8;
                        if (low as i8 as i64 as u64) == target {
                            low as u64
                        } else {
                            return None;
                        }
                    }
                };
                cur = a;
            }
            Expr::Bin(k, a, b) => {
                let a_has = arena.contains_var(a, var);
                let b_has = arena.contains_var(b, var);
                if a_has == b_has {
                    return None;
                }
                let (sym, other_value, var_on_left) = if a_has {
                    (a, arena.eval(b, input, memo), true)
                } else {
                    (b, arena.eval(a, input, memo), false)
                };
                target = match (k, var_on_left) {
                    (BinKind::Add, _) => target.wrapping_sub(other_value),
                    (BinKind::Xor, _) => target ^ other_value,
                    (BinKind::Sub, true) => target.wrapping_add(other_value),
                    (BinKind::Sub, false) => other_value.wrapping_sub(target),
                    (BinKind::Mul, _) => {
                        if other_value % 2 == 0 {
                            return None;
                        }
                        target.wrapping_mul(mod_inverse(other_value))
                    }
                    (BinKind::And, _)
                        // x & m == target requires target ⊆ m; any x with
                        // those bits works, pick target itself.
                        if target & other_value == target => target,
                    (BinKind::Or, _)
                        // x | m == target requires m ⊆ target.
                        if other_value & target == other_value => target & !other_value,
                    (BinKind::Shl, true) => {
                        let s = other_value & 63;
                        if target.trailing_zeros() as u64 >= s {
                            target >> s
                        } else {
                            return None;
                        }
                    }
                    (BinKind::Shr, true) => {
                        let s = other_value & 63;
                        if target.leading_zeros() as u64 >= s {
                            target << s
                        } else {
                            return None;
                        }
                    }
                    _ => return None,
                };
                cur = sym;
            }
        }
    }
}

/// Modular inverse of an odd 64-bit value (Newton iteration).
pub(crate) fn mod_inverse(a: u64) -> u64 {
    debug_assert!(a % 2 == 1);
    let mut x = a; // correct to 3 bits
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_and_constant_folding() {
        let mut ar = ExprArena::new();
        let a = ar.constant(2);
        let b = ar.constant(40);
        let e = ar.bin(BinKind::Add, a, b);
        assert_eq!(ar.expr(e), Expr::Const(42), "constants fold");
        let x = ar.input(0);
        let three = ar.constant(3);
        let e = ar.bin(BinKind::Mul, x, three);
        let mut memo = EvalMemo::default();
        assert_eq!(ar.eval(e, &[7], &mut memo), 21);
        assert!(ar.is_symbolic(e));
        let mut vars = BTreeSet::new();
        ar.variables(e, &mut vars);
        assert_eq!(vars.len(), 1);
        assert_eq!(ar.tree_size(e), 3);
    }

    #[test]
    fn interning_gives_id_equality_for_structural_equality() {
        let mut ar = ExprArena::new();
        let x = ar.input(0);
        let c = ar.constant(17);
        let e1 = ar.bin(BinKind::Add, x, c);
        let x2 = ar.input(0);
        let c2 = ar.constant(17);
        let e2 = ar.bin(BinKind::Add, x2, c2);
        assert_eq!(e1, e2, "hash-consing interns structurally equal nodes");
        assert_eq!(ar.structural_hash(e1), ar.structural_hash(e2));
        // Commutative ordering: both operand orders intern to one node.
        let e3 = ar.bin(BinKind::Add, c, x);
        assert_eq!(e1, e3);
    }

    #[test]
    fn structural_hashes_are_arena_independent() {
        let build = |ar: &mut ExprArena| {
            let x = ar.input(3);
            let k = ar.constant(0x55);
            let xor = ar.bin(BinKind::Xor, x, k);
            ar.un(UnKind::SextByte, xor)
        };
        let mut a1 = ExprArena::new();
        let mut a2 = ExprArena::new();
        // Pollute the second arena first so ids diverge.
        for i in 0..10 {
            a2.input(i);
        }
        let e1 = build(&mut a1);
        let e2 = build(&mut a2);
        assert_ne!(e1, e2, "ids differ across arenas");
        assert_eq!(a1.structural_hash(e1), a2.structural_hash(e2), "hashes do not");
    }

    #[test]
    fn simplification_rules_preserve_semantics() {
        let mut ar = ExprArena::new();
        let x = ar.input(0);
        let zero = ar.constant(0);
        let one = ar.constant(1);
        let ones = ar.constant(u64::MAX);
        assert_eq!(ar.bin(BinKind::Add, x, zero), x);
        assert_eq!(ar.bin(BinKind::Sub, x, zero), x);
        assert_eq!(ar.bin(BinKind::Sub, x, x), zero);
        assert_eq!(ar.bin(BinKind::Mul, x, one), x);
        assert_eq!(ar.bin(BinKind::Mul, x, zero), zero);
        assert_eq!(ar.bin(BinKind::Div, x, one), x);
        assert_eq!(ar.bin(BinKind::Div, x, zero), zero, "x/0 = 0 semantics");
        assert_eq!(ar.bin(BinKind::Rem, x, zero), x, "x%0 = x semantics");
        assert_eq!(ar.bin(BinKind::Rem, x, one), zero);
        assert_eq!(ar.bin(BinKind::And, x, ones), x);
        assert_eq!(ar.bin(BinKind::And, x, zero), zero);
        assert_eq!(ar.bin(BinKind::And, x, x), x);
        assert_eq!(ar.bin(BinKind::Or, x, zero), x);
        assert_eq!(ar.bin(BinKind::Or, x, x), x);
        assert_eq!(ar.bin(BinKind::Xor, x, zero), x);
        assert_eq!(ar.bin(BinKind::Xor, x, x), zero);
        let sixty_four = ar.constant(64);
        assert_eq!(ar.bin(BinKind::Shl, x, sixty_four), x, "count ≡ 0 mod 64");
        assert_eq!(ar.bin(BinKind::Shl, x, zero), x);
        assert_eq!(ar.bin(BinKind::Eq, x, x), one);
        assert_eq!(ar.bin(BinKind::Ult, x, x), zero);
        assert_eq!(ar.bin(BinKind::Ult, x, zero), zero, "nothing is unsigned-below 0");
        let neg = ar.un(UnKind::Neg, x);
        assert_eq!(ar.un(UnKind::Neg, neg), x, "double negation");
        let not = ar.un(UnKind::Not, x);
        assert_eq!(ar.un(UnKind::Not, not), x, "double NOT");
        let sext = ar.un(UnKind::SextByte, x);
        assert_eq!(ar.un(UnKind::SextByte, sext), sext, "sign extension is idempotent");
    }

    #[test]
    fn tree_size_saturates_while_dag_size_stays_exact() {
        let mut ar = ExprArena::new();
        // acc = acc + acc doubles the tree each step but adds one node.
        let mut acc = ar.input(0);
        let one = ar.constant(1);
        for _ in 0..80 {
            let next = ar.bin(BinKind::Add, acc, one);
            acc = ar.bin(BinKind::Mul, next, next); // shared subterm
        }
        assert_eq!(ar.tree_size(acc), u64::MAX, "tree size saturates");
        let dag = ar.dag_size(acc);
        assert!(dag <= 3 + 2 * 80, "DAG stays linear, got {dag}");
        assert!(!ar.dag_oversize(acc, 4096));
        assert!(ar.dag_oversize(acc, 10));
    }

    #[test]
    fn dag_oversize_propagates_to_parents_without_traversal() {
        let mut ar = ExprArena::new();
        let mut acc = ar.input(0);
        for i in 0..100u64 {
            let c = ar.constant(i.wrapping_mul(0x9e3779b9));
            acc = ar.bin(BinKind::Add, acc, c);
        }
        assert!(ar.dag_oversize(acc, 50));
        // Children built on top inherit the verdict from the cached bound.
        let one = ar.constant(1);
        let parent = ar.bin(BinKind::Xor, acc, one);
        assert!(ar.dag_oversize(parent, 50));
        assert!(!ar.dag_oversize(parent, 4096));
    }

    #[test]
    fn eval_handles_deep_chains_without_recursion() {
        let mut ar = ExprArena::new();
        let mut e = ar.input(0);
        for i in 0..200_000u64 {
            let c = ar.constant(i | 1);
            e = ar.bin(BinKind::Add, e, c);
        }
        let mut memo = EvalMemo::default();
        let v = ar.eval(e, &[1], &mut memo);
        let expected = (0..200_000u64).fold(1u64, |a, i| a.wrapping_add(i | 1));
        assert_eq!(v, expected);
    }

    #[test]
    fn eval_memo_reset_switches_inputs_correctly() {
        let mut ar = ExprArena::new();
        let x = ar.input(0);
        let c = ar.constant(5);
        let e = ar.bin(BinKind::Add, x, c);
        let mut memo = EvalMemo::default();
        assert_eq!(ar.eval(e, &[1], &mut memo), 6);
        memo.reset();
        assert_eq!(ar.eval(e, &[10], &mut memo), 15);
    }

    #[test]
    fn inversion_of_affine_and_xor_chains() {
        let mut ar = ExprArena::new();
        // ((x ^ 0x55) + 100) * 7 == target
        let x = ar.input(0);
        let c55 = ar.constant(0x55);
        let xor = ar.bin(BinKind::Xor, x, c55);
        let c100 = ar.constant(100);
        let add = ar.bin(BinKind::Add, xor, c100);
        let c7 = ar.constant(7);
        let e = ar.bin(BinKind::Mul, add, c7);
        let want = 0xDEADBEEFu64;
        let mut memo = EvalMemo::default();
        let target = ar.eval(e, &[want], &mut memo);
        memo.reset();
        let got = invert(&mut ar, e, target, 0, &[0], &mut memo).expect("invertible");
        memo.reset();
        assert_eq!(ar.eval(e, &[got], &mut memo), target);
        assert_eq!(got, want);
    }

    #[test]
    fn inversion_of_not_neg_sub_chain() {
        let mut ar = ExprArena::new();
        // ~( 1000 - x ) == target
        let c1000 = ar.constant(1000);
        let x = ar.input(0);
        let sub = ar.bin(BinKind::Sub, c1000, x);
        let e = ar.un(UnKind::Not, sub);
        let mut memo = EvalMemo::default();
        let target = ar.eval(e, &[123], &mut memo);
        memo.reset();
        let got = invert(&mut ar, e, target, 0, &[0], &mut memo).unwrap();
        memo.reset();
        assert_eq!(ar.eval(e, &[got], &mut memo), target);
    }

    #[test]
    fn inversion_through_and_mask_respects_feasibility() {
        let mut ar = ExprArena::new();
        let x = ar.input(0);
        let mask = ar.constant(0xffff);
        let e = ar.bin(BinKind::And, x, mask);
        let mut memo = EvalMemo::default();
        assert_eq!(invert(&mut ar, e, 0x1234, 0, &[0], &mut memo), Some(0x1234));
        memo.reset();
        assert_eq!(
            invert(&mut ar, e, 0x1_0000, 0, &[0], &mut memo),
            None,
            "target outside the mask"
        );
    }

    #[test]
    fn inversion_gives_up_on_multiple_occurrences() {
        let mut ar = ExprArena::new();
        let x = ar.input(0);
        let y = ar.input(1);
        let xy = ar.bin(BinKind::Add, x, y);
        let e = ar.bin(BinKind::Mul, xy, x);
        let mut memo = EvalMemo::default();
        assert_eq!(invert(&mut ar, e, 10, 0, &[0, 0], &mut memo), None);
    }

    #[test]
    fn canonical_bytes_match_iff_hashes_match_on_samples() {
        let mut ar = ExprArena::new();
        let x = ar.input(0);
        let y = ar.input(1);
        let c = ar.constant(3);
        let mut exprs = vec![x, y, c];
        for k in [BinKind::Add, BinKind::Sub, BinKind::Shl, BinKind::Ult] {
            let a = exprs[exprs.len() - 3];
            let b = exprs[exprs.len() - 1];
            exprs.push(ar.bin(k, a, b));
        }
        for i in 0..exprs.len() {
            for j in 0..exprs.len() {
                let (mut bi, mut bj) = (Vec::new(), Vec::new());
                ar.write_canonical(exprs[i], &mut bi);
                ar.write_canonical(exprs[j], &mut bj);
                assert_eq!(
                    bi == bj,
                    ar.structural_hash(exprs[i]) == ar.structural_hash(exprs[j]),
                    "bytes and hashes must agree on equality ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn mod_inverse_is_correct() {
        for a in [1u64, 3, 5, 7, 0xDEADBEEF | 1, u64::MAX] {
            assert_eq!(a.wrapping_mul(mod_inverse(a)), 1, "a = {a}");
        }
    }
}
