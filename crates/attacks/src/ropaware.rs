//! ROP-aware analyses: the ROPMEMU / ROPDissector attack surface (A2 / A1).
//!
//! Two tools, mirroring §III-B2 and the extensions discussed in §VII-A2:
//!
//! * [`flip_exploration`] — ROPMEMU-style dynamic multi-path exploration: run
//!   the chain, find the gadgets that leak condition flags into data
//!   (`set<cc>`/`cmov<cc>`), and re-run forcing each leak to the opposite
//!   value, hoping to reveal chain blocks the recorded input did not reach.
//!   P2's opaque RSP adjustments derail exactly these forced runs.
//! * [`gadget_guess`] — ROPDissector-style static gadget guessing over the
//!   chain bytes: treat every plausible text address as a gadget pointer and
//!   speculatively decode from it. Gadget confusion (disguised immediates +
//!   unaligned layout) buries the true positives in noise.

use raindrop_gadgets::speculative_decode;
use raindrop_machine::{Cond, EmuError, Emulator, Image, Inst, Reg, RunExit};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Result of the flag-flipping multi-path exploration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlipReport {
    /// Flag-leak sites (set/cmov gadgets with live flag inputs) seen in the
    /// baseline run.
    pub leak_sites: usize,
    /// Distinct chain offsets (RSP values inside the chain) visited by the
    /// baseline run.
    pub baseline_blocks: usize,
    /// Distinct *new* chain offsets revealed by all forced runs combined.
    pub new_blocks: usize,
    /// Forced runs that derailed (decode fault / budget exhaustion) instead
    /// of producing a clean alternate trace.
    pub derailed_runs: usize,
    /// Forced runs attempted.
    pub forced_runs: usize,
}

fn chain_offsets(image: &Image, emu_trace: &[u64]) -> BTreeSet<u64> {
    emu_trace.iter().copied().filter(|rsp| image.in_data(*rsp)).collect()
}

/// Runs the chain once, recording the RSP values at every `ret`, while
/// optionally forcing the `skip`-th flag-leaking instruction to the opposite
/// outcome (by inverting the leaked value right after it is produced).
fn run_once(
    image: &Image,
    func: &str,
    input: u64,
    flip_index: Option<usize>,
    budget: u64,
) -> Result<(Vec<u64>, usize), EmuError> {
    let mut emu = Emulator::new(image);
    emu.set_budget(budget);
    let faddr = image.function(func).expect("function exists").addr;
    emu.cpu.set_reg(Reg::Rsp, raindrop_machine::STACK_TOP);
    emu.cpu.set_reg(Reg::Rdi, input);
    let sp = emu.cpu.reg(Reg::Rsp) - 8;
    emu.cpu.set_reg(Reg::Rsp, sp);
    emu.mem.write_u64(sp, raindrop_machine::RETURN_SENTINEL);
    emu.cpu.rip = faddr;

    let mut rsp_at_ret = Vec::new();
    let mut leaks_seen = 0usize;
    loop {
        // Peek to recognize flag-leaking instructions and `ret`s; the peek
        // goes through the emulator's predecoded cache, so it costs a table
        // hit rather than a re-decode.
        let inst = emu.peek_inst().map(|(i, _)| i).ok();
        if let Some(Inst::Ret) = inst {
            rsp_at_ret.push(emu.cpu.reg(Reg::Rsp));
        }
        let leak_dest = match inst {
            Some(Inst::Set(_, d)) => Some(d),
            Some(Inst::Cmov(_, d, _)) => Some(d),
            Some(Inst::Alu(raindrop_machine::AluOp::Adc, d, _)) => Some(d),
            _ => None,
        };
        let step = emu.step()?;
        if let Some(d) = leak_dest {
            let this_leak = leaks_seen;
            leaks_seen += 1;
            if flip_index == Some(this_leak) {
                // Invert the leaked boolean (ROPMEMU flips the leaked CPU
                // flag; forcing the materialized value is equivalent for the
                // chains the rewriter emits).
                let v = emu.reg(d);
                emu.set_reg(d, if v == 0 { 1 } else { 0 });
            }
        }
        match step {
            Some(RunExit::Returned(_)) | Some(RunExit::Halted) => break,
            None => {
                if emu.cpu.rip == raindrop_machine::RETURN_SENTINEL {
                    break;
                }
            }
        }
    }
    Ok((rsp_at_ret, leaks_seen))
}

/// ROPMEMU-style exploration: baseline run plus one forced run per observed
/// flag leak.
pub fn flip_exploration(image: &Image, func: &str, input: u64, budget: u64) -> FlipReport {
    let (baseline, leaks) = match run_once(image, func, input, None, budget) {
        Ok(x) => x,
        Err(_) => {
            return FlipReport {
                leak_sites: 0,
                baseline_blocks: 0,
                new_blocks: 0,
                derailed_runs: 0,
                forced_runs: 0,
            }
        }
    };
    let baseline_blocks = chain_offsets(image, &baseline);
    let mut new_blocks: BTreeSet<u64> = BTreeSet::new();
    let mut derailed = 0usize;
    let mut forced = 0usize;
    for i in 0..leaks.min(64) {
        forced += 1;
        match run_once(image, func, input, Some(i), budget) {
            Ok((trace, _)) => {
                for off in chain_offsets(image, &trace) {
                    if !baseline_blocks.contains(&off) {
                        new_blocks.insert(off);
                    }
                }
            }
            Err(_) => derailed += 1,
        }
    }
    FlipReport {
        leak_sites: leaks,
        baseline_blocks: baseline_blocks.len(),
        new_blocks: new_blocks.len(),
        derailed_runs: derailed,
        forced_runs: forced,
    }
}

/// Result of static gadget guessing over a chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuessReport {
    /// 8-byte chain strides whose value looks like a `.text` address.
    pub plausible_pointers: usize,
    /// Of those, how many decode to a clean, `ret`-terminated sequence.
    pub decodable: usize,
    /// Candidate blocks found by also trying every unaligned offset.
    pub unaligned_candidates: usize,
    /// Chain size in bytes.
    pub chain_bytes: usize,
}

/// ROPDissector-style gadget guessing over the chain stored at `chain_sym`.
pub fn gadget_guess(image: &Image, chain_sym: &str) -> GuessReport {
    let Ok(addr) = image.symbol(chain_sym) else {
        return GuessReport {
            plausible_pointers: 0,
            decodable: 0,
            unaligned_candidates: 0,
            chain_bytes: 0,
        };
    };
    // The chain extends to the next symbol or the end of .data; take a
    // generous slice.
    let start = (addr - image.data_base) as usize;
    let end = image
        .symbols
        .values()
        .copied()
        .filter(|a| image.in_data(*a) && *a > addr)
        .min()
        .map(|a| (a - image.data_base) as usize)
        .unwrap_or(image.data.len());
    let bytes = &image.data[start..end];

    let mut plausible = 0usize;
    let mut decodable = 0usize;
    for stride in bytes.chunks_exact(8) {
        let value = u64::from_le_bytes(stride.try_into().expect("8 bytes"));
        if image.in_text(value) {
            plausible += 1;
            let off = (value - image.text_base) as usize;
            let seq = speculative_decode(&image.text, off, 8);
            if seq.iter().any(|i| matches!(i, Inst::Ret)) {
                decodable += 1;
            }
        }
    }
    // Unaligned speculative execution attempts: every byte offset of the
    // chain is a potential RSP landing point under gadget confusion.
    let mut unaligned = 0usize;
    for off in 0..bytes.len().saturating_sub(8) {
        let value = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
        if image.in_text(value) && off % 8 != 0 {
            unaligned += 1;
        }
    }
    GuessReport {
        plausible_pointers: plausible,
        decodable,
        unaligned_candidates: unaligned,
        chain_bytes: bytes.len(),
    }
}

/// Convenience: chain symbol name produced by the rewriter for a function.
pub fn chain_symbol(func: &str) -> String {
    format!("__rop_chain_{func}")
}

/// A condition-flag flip helper exported for the efficacy experiments:
/// whether flipping `cond` changes the outcome for the given flag state.
pub fn flip_changes_outcome(cond: Cond, flags: raindrop_machine::Flags) -> bool {
    cond.eval(flags) != cond.negate().eval(flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop::{Rewriter, RopConfig};
    use raindrop_synth::{codegen, randomfuns, Goal};

    fn obfuscated(config: RopConfig) -> (Image, String, u64) {
        let rf = randomfuns::generate(raindrop_synth::RandomFunConfig {
            structure: randomfuns::Ctrl::if_(randomfuns::Ctrl::bb(4), randomfuns::Ctrl::bb(4)),
            structure_name: "(if (bb 4) (bb 4))".into(),
            input_size: 2,
            seed: 9,
            goal: Goal::SecretFinding,
            loop_size: 3,
        });
        let mut image = codegen::compile(&rf.program).unwrap();
        let mut rw = Rewriter::new(config);
        rw.rewrite_function(&mut image, &rf.name).unwrap();
        (image, rf.name, rf.secret_input)
    }

    #[test]
    fn flipping_reveals_blocks_without_p2_but_derails_with_p2() {
        let mut no_p2 = RopConfig::plain();
        no_p2.p1 = None;
        no_p2.p2 = false;
        let (img, name, _) = obfuscated(no_p2);
        let open = flip_exploration(&img, &name, 0, 50_000_000);
        assert!(open.leak_sites > 0, "branch encoding leaks flags into data");

        let mut with_p2 = RopConfig::plain();
        with_p2.p2 = true;
        let (img2, name2, _) = obfuscated(with_p2);
        let shielded = flip_exploration(&img2, &name2, 0, 50_000_000);
        // With P2, forced runs either derail or reveal nothing beyond noise.
        assert!(
            shielded.derailed_runs > 0 || shielded.new_blocks <= open.new_blocks,
            "P2 must not make flipping *more* effective: {shielded:?} vs {open:?}"
        );
    }

    #[test]
    fn gadget_confusion_inflates_guessing_noise() {
        let mut plain = RopConfig::plain();
        plain.gadget_confusion = false;
        let (img_plain, name, _) = obfuscated(plain);
        let report_plain = gadget_guess(&img_plain, &chain_symbol(&name));
        assert!(report_plain.plausible_pointers > 0);
        assert!(report_plain.decodable > 0);

        let mut confused = RopConfig::plain();
        confused.gadget_confusion = true;
        let (img_conf, name2, _) = obfuscated(confused);
        let report_conf = gadget_guess(&img_conf, &chain_symbol(&name2));
        assert!(
            report_conf.plausible_pointers + report_conf.unaligned_candidates
                > report_plain.plausible_pointers,
            "confusion adds plausible-but-fake pointers: {report_conf:?} vs {report_plain:?}"
        );
    }

    #[test]
    fn missing_chain_symbol_yields_empty_report() {
        let (img, _, _) = obfuscated(RopConfig::plain());
        let r = gadget_guess(&img, "__rop_chain_not_there");
        assert_eq!(r.chain_bytes, 0);
        assert_eq!(r.plausible_pointers, 0);
    }
}
