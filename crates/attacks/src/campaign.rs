//! Checkpointed, resumable attack campaigns with fault injection and
//! straggler defense.
//!
//! A [`Campaign`] is the long-running driver for a set of [`DseJob`]s: it
//! schedules them on a [`raindrop_sched::Scheduler`], advances every attack
//! in bounded *slices* (a few explored paths per scheduler submission), and
//! checkpoints durable state to disk between slices so a killed process
//! loses at most one slice of work per job. The checkpoint file reuses the
//! [`recfile`] discipline of the artifact store: a magic+version header,
//! framed records with per-record crc64 seals, and tolerant replay — a
//! torn or corrupted record demotes the affected jobs to "restart from
//! scratch" instead of poisoning the campaign.
//!
//! # What is (and is not) persisted
//!
//! Per job, the log carries the latest of:
//!
//! * `Done { outcome, audit }` — the finished result, replayed verbatim;
//! * `InFlight { frontier, .. }` — a serialized [`DseFrontier`]: pending
//!   flip candidates (the solved-input queue), the dedup set, solve-cache
//!   digests, counters and the solver's RNG position. Fork-point emulator
//!   snapshots are deliberately **not** serialized — on resume, restored
//!   frontier entries re-execute their path deterministically, which the
//!   `frontier_resume` suite pins result-identical;
//! * `Failed { reason, .. }` — a job that exhausted its retry budget.
//!
//! Jobs are keyed by a *fingerprint* (stable hash of label, function,
//! input spec, budget, goal, explore mode and the encoded image), not by
//! position alone: resuming a campaign against a changed job list restarts
//! the changed jobs from scratch.
//!
//! # Robustness layer
//!
//! * slices that panic are retried with exponential backoff up to
//!   [`CampaignConfig::max_retries`], then recorded as `Failed`;
//! * slices exceeding [`CampaignConfig::slice_timeout`] are cancelled and
//!   requeued under the same handle ([`Scheduler::requeue`]);
//! * jobs whose accumulated wall exceeds
//!   [`CampaignConfig::straggler_factor`] × the median wall of completed
//!   jobs are demoted to low priority (and their queued slice is requeued
//!   there), so one pathological attack cannot starve the campaign;
//! * a [`FaultPlan`] injects the failures the integration tests drive:
//!   kill the campaign after K checkpoint writes (optionally flipping or
//!   truncating checkpoint bytes, simulating a torn write at crash time)
//!   and panic inside a worker.
//!
//! Under work-bounded budgets a killed-and-resumed campaign converges to
//! the same per-job verdicts, witnesses and schedules as an uninterrupted
//! run — only wall-clock and re-execution counters differ.
//!
//! [`recfile`]: raindrop_server::recfile

use crate::concolic::{DseAttack, DseAudit, DseExplorer, DseFrontier, DseOutcome};
use crate::fleet::DseJob;
use raindrop::stable_hash_bytes;
use raindrop_sched::{JobCtl, JobHandle, JobOutcome, Scheduler};
use raindrop_server::codec::encode_image;
use raindrop_server::recfile::{self, FramedReader};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Magic of the campaign checkpoint log.
pub const CAMPAIGN_MAGIC: [u8; 4] = *b"RDCM";
/// Version stamped into the log header.
pub const CAMPAIGN_VERSION: u32 = 1;
/// File name of the checkpoint log inside the campaign directory.
pub const CAMPAIGN_LOG: &str = "campaign.rdc";

/// Tuning knobs of the campaign driver.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Scheduler worker threads (0 = the machine's available parallelism).
    pub workers: usize,
    /// Paths explored per slice: the checkpoint granularity. Smaller slices
    /// lose less work per crash but pay more checkpoint and re-execution
    /// overhead.
    pub slice: usize,
    /// Consecutive failed attempts (panic or timeout) a slice may burn
    /// before the job is recorded as `Failed`.
    pub max_retries: u32,
    /// Base backoff before retrying a failed slice; doubles per attempt.
    pub retry_backoff: Duration,
    /// Wall limit for one slice in flight; beyond it the slice is
    /// cancelled and requeued (counting one retry).
    pub slice_timeout: Duration,
    /// A job is a straggler when its accumulated wall exceeds this factor
    /// times the median wall of completed jobs (0 demotes anything still
    /// running once the median exists — useful in tests).
    pub straggler_factor: u32,
    /// Completed jobs required before the straggler median is trusted.
    pub straggler_after: usize,
    /// Poll quantum used when waiting on in-flight slices.
    pub poll: Duration,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            workers: 0,
            slice: 4,
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            slice_timeout: Duration::from_secs(120),
            straggler_factor: 4,
            straggler_after: 2,
            poll: Duration::from_millis(2),
        }
    }
}

/// Injected faults, driven by the robustness integration tests.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Abort [`Campaign::run`] (a simulated process kill) right after this
    /// many checkpoint writes.
    pub kill_after_checkpoints: Option<u64>,
    /// When the kill fires, XOR-flip the byte at this offset of the log
    /// (clamped to the file) — a torn-write simulation.
    pub flip_byte_on_kill: Option<u64>,
    /// When the kill fires, truncate this many bytes off the log tail.
    pub truncate_on_kill: Option<u64>,
    /// Jobs (by index) whose first scheduled slice panics in the worker.
    pub panic_once: Vec<usize>,
}

/// Durable per-job state, exactly as persisted in the checkpoint log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// No checkpoint has been written yet (never persisted; reported for
    /// jobs a killed campaign had not reached).
    Pending,
    /// The job is mid-exploration; `frontier` is everything a fresh
    /// process needs to continue it.
    InFlight {
        /// The serialized exploration state at the last slice boundary.
        frontier: DseFrontier,
        /// Consecutive failed attempts of the current slice.
        attempts: u32,
    },
    /// The job finished; the result streams back verbatim on resume.
    Done {
        /// The attack outcome.
        outcome: DseOutcome,
        /// The exploration schedule.
        audit: DseAudit,
    },
    /// The job exhausted its retry budget.
    Failed {
        /// The last failure reason (panic message or timeout).
        reason: String,
        /// Attempts burned.
        attempts: u32,
    },
}

/// One replayed checkpoint record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointRecord {
    /// Index of the job in the submitted job list.
    pub job: u64,
    /// Fingerprint of the job the record belongs to.
    pub fingerprint: u128,
    /// The persisted state.
    pub state: JobState,
}

/// Replays a checkpoint log image: the decoded records in file order, plus
/// the number of trailing bytes dropped as torn/corrupt. Replay is
/// all-or-prefix — a damaged frame (bad length, bad crc64, undecodable
/// payload) ends it, so a corrupted byte can only ever *remove* state
/// (demoting jobs to restart), never alter it.
pub fn replay_log(bytes: &[u8]) -> (Vec<CheckpointRecord>, u64) {
    if recfile::read_header(bytes, CAMPAIGN_MAGIC) != Some(CAMPAIGN_VERSION) {
        return (Vec::new(), bytes.len() as u64);
    }
    let mut records = Vec::new();
    let mut end = recfile::HEADER_LEN;
    let mut reader = FramedReader::new(bytes, recfile::HEADER_LEN);
    // Not a `for` loop: `reader.pos()` is consulted between items.
    #[allow(clippy::while_let_on_iterator)]
    while let Some(body) = reader.next() {
        match recfile::decode_payload::<CheckpointRecord>(body) {
            Some(rec) => records.push(rec),
            None => break,
        }
        end = reader.pos();
    }
    (records, (bytes.len() - end) as u64)
}

/// How a campaign run ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum CampaignStatus {
    /// Every job reached a terminal state (`Done` or `Failed`).
    Completed,
    /// A [`FaultPlan`] kill fired; resume with a fresh [`Campaign::open`].
    Killed {
        /// Checkpoints written when the kill fired.
        after_checkpoints: u64,
    },
}

/// Aggregate counters of one campaign run.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct CampaignStats {
    /// Checkpoint records written.
    pub checkpoints_written: u64,
    /// Bytes appended to the log (frames, including seals).
    pub checkpoint_bytes: u64,
    /// Wall time spent writing and syncing checkpoints.
    pub checkpoint_write_wall: Duration,
    /// Slices submitted to the scheduler (excluding requeues).
    pub slices_run: u64,
    /// Failed slice attempts that were retried.
    pub retries: u64,
    /// Jobs demoted to low priority by the straggler defense.
    pub stragglers_demoted: u64,
    /// Jobs restored as `Done`/`Failed` straight from the log.
    pub jobs_recovered: usize,
    /// Jobs resumed mid-exploration from an `InFlight` frontier.
    pub jobs_resumed: usize,
    /// Jobs whose log record had a stale fingerprint and restarted.
    pub jobs_restarted: usize,
    /// Torn/corrupt bytes dropped from the log tail at open.
    pub log_bytes_dropped: u64,
}

/// Per-job result of a campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignJobReport {
    /// The job's label ([`DseJob::label`]).
    pub label: String,
    /// Terminal or last-checkpointed state.
    pub state: JobState,
}

impl CampaignJobReport {
    /// The finished outcome, when the job completed.
    pub fn outcome(&self) -> Option<&DseOutcome> {
        match &self.state {
            JobState::Done { outcome, .. } => Some(outcome),
            _ => None,
        }
    }

    /// The exploration audit, when the job completed.
    pub fn audit(&self) -> Option<&DseAudit> {
        match &self.state {
            JobState::Done { audit, .. } => Some(audit),
            _ => None,
        }
    }
}

/// The report of one [`Campaign::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// How the run ended.
    pub status: CampaignStatus,
    /// Per-job states, in submission order.
    pub jobs: Vec<CampaignJobReport>,
    /// Aggregate counters.
    pub stats: CampaignStats,
}

impl CampaignReport {
    /// Whether every job reached a terminal state.
    pub fn completed(&self) -> bool {
        self.status == CampaignStatus::Completed
    }

    /// Groups job outcomes by workload class (the `class/` prefix of each
    /// label, see [`class_of_label`]), in first-appearance order. Jobs
    /// without a class prefix are grouped under `"unclassified"`.
    pub fn class_summary(&self) -> Vec<ClassOutcomes> {
        let mut out: Vec<ClassOutcomes> = Vec::new();
        for job in &self.jobs {
            let class = class_of_label(&job.label).unwrap_or("unclassified");
            let entry = match out.iter_mut().find(|c| c.class == class) {
                Some(e) => e,
                None => {
                    out.push(ClassOutcomes {
                        class: class.to_string(),
                        jobs: 0,
                        finished: 0,
                        defeated: 0,
                    });
                    out.last_mut().unwrap()
                }
            };
            entry.jobs += 1;
            if let Some(outcome) = job.outcome() {
                entry.finished += 1;
                if outcome.success {
                    entry.defeated += 1;
                }
            }
        }
        out
    }
}

/// Aggregated attack outcomes for one workload class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ClassOutcomes {
    /// Class name (label prefix).
    pub class: String,
    /// Jobs submitted under this class.
    pub jobs: usize,
    /// Jobs that reached a terminal outcome.
    pub finished: usize,
    /// Finished jobs whose goal was reached (the obfuscation was defeated).
    pub defeated: usize,
}

/// The workload class a job label belongs to: the segment before the first
/// `/` of a `class/program/config` label, or `None` for unprefixed labels.
pub fn class_of_label(label: &str) -> Option<&str> {
    match label.split_once('/') {
        Some((class, _)) if !class.is_empty() => Some(class),
        _ => None,
    }
}

/// The identity of a job for resume purposes: any change to what the job
/// *is* (not how long it has run) must change the fingerprint.
#[derive(Serialize)]
struct FingerprintParts {
    label: String,
    func: String,
    spec: crate::concolic::InputSpec,
    budget: crate::concolic::DseBudget,
    goal: crate::concolic::Goal,
    mode: crate::concolic::ExploreMode,
}

/// Stable fingerprint of a job: label, target, spec, budget, goal, mode
/// and the full encoded image.
pub fn job_fingerprint(job: &DseJob) -> u128 {
    let mut bytes = recfile::encode_payload(&FingerprintParts {
        label: job.label.clone(),
        func: job.func.clone(),
        spec: job.spec.clone(),
        budget: job.budget,
        goal: job.goal,
        mode: job.mode,
    });
    bytes.extend_from_slice(&encode_image(&job.image));
    stable_hash_bytes(&bytes)
}

/// What one scheduled slice produced.
enum SliceRun {
    /// The attack ran to completion inside this slice.
    Done(Box<(DseOutcome, DseAudit)>),
    /// The slice cap paused the attack; here is the frontier to persist.
    Paused(Box<DseFrontier>),
}

/// Runs one slice of `job`, starting fresh or resuming `from` a frontier.
/// Self-contained: builds a fresh attack instance per slice, exactly like
/// a post-crash resume would, so in-process and post-kill execution take
/// the identical code path.
fn run_slice(
    job: &DseJob,
    from: Option<&DseFrontier>,
    slice: usize,
    panic_fault: bool,
) -> SliceRun {
    if panic_fault {
        panic!("fault injection: worker panic in `{}`", job.label);
    }
    let mut attack =
        DseAttack::new(&job.image, &job.func, job.spec.clone(), job.budget).with_mode(job.mode);
    let mut explorer = match from {
        None => DseExplorer::start(&mut attack, job.goal),
        Some(frontier) => DseExplorer::resume(&mut attack, job.goal, frontier),
    };
    match explorer.advance(Some(slice)) {
        Some(done) => SliceRun::Done(Box::new(done)),
        None => SliceRun::Paused(Box::new(explorer.frontier())),
    }
}

/// In-memory tracking of one campaign job.
struct JobSlot {
    /// Index in the submitted job list (the log key).
    index: u64,
    job: Arc<DseJob>,
    fingerprint: u128,
    /// Last checkpointed frontier (the resume point of the next slice).
    frontier: Option<DseFrontier>,
    /// Terminal state, once reached.
    resolved: Option<JobState>,
    /// The in-flight slice, when one is scheduled.
    handle: Option<JobHandle<SliceRun>>,
    /// When the in-flight slice was submitted.
    slice_started: Instant,
    /// Consecutive failed attempts of the current slice.
    attempts: u32,
    /// Wall accumulated across this job's finished slices.
    wall: Duration,
    demoted: bool,
    /// One-shot worker-panic fault still to fire.
    panic_armed: bool,
}

/// A checkpointed, resumable attack campaign over one directory.
///
/// # Example
///
/// ```no_run
/// use raindrop_attacks::campaign::{Campaign, CampaignConfig};
/// # fn jobs() -> Vec<raindrop_attacks::DseJob> { Vec::new() }
///
/// let campaign = Campaign::open("/tmp/campaign", CampaignConfig::default()).unwrap();
/// let report = campaign.run(jobs()).unwrap();
/// assert!(report.completed());
/// // Killed mid-run? `Campaign::open` the same directory again and re-run
/// // the same job list: finished jobs replay from the log, in-flight jobs
/// // resume from their frontier, and the aggregate results converge.
/// ```
pub struct Campaign {
    dir: PathBuf,
    log: File,
    config: CampaignConfig,
    faults: FaultPlan,
    /// Latest replayed record per job index.
    recovered: BTreeMap<u64, CheckpointRecord>,
    stats: CampaignStats,
}

impl Campaign {
    /// Opens (or creates) a campaign directory and replays its checkpoint
    /// log. Following the artifact-store discipline, the log is rewritten
    /// to its longest valid prefix — torn or corrupt tail bytes are
    /// dropped here, demoting the affected jobs to a restart.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating the directory or log file.
    pub fn open(dir: impl AsRef<Path>, config: CampaignConfig) -> io::Result<Campaign> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(CAMPAIGN_LOG);
        let bytes = std::fs::read(&path).unwrap_or_default();
        let (records, dropped) = replay_log(&bytes);
        let mut recovered = BTreeMap::new();
        let mut log = File::create(&path)?;
        recfile::write_header(&mut log, CAMPAIGN_MAGIC, CAMPAIGN_VERSION)?;
        for rec in records {
            log.write_all(&recfile::frame_record(&recfile::encode_payload(&rec)))?;
            recovered.insert(rec.job, rec);
        }
        log.sync_data()?;
        let stats = CampaignStats { log_bytes_dropped: dropped, ..CampaignStats::default() };
        Ok(Campaign { dir, log, config, faults: FaultPlan::default(), recovered, stats })
    }

    /// Installs a fault-injection plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Campaign {
        self.faults = faults;
        self
    }

    /// The states replayed from the checkpoint log at open, keyed by job
    /// index. Corruption never alters a record — it only removes it and
    /// everything after it (see [`replay_log`]).
    pub fn recovered(&self) -> Vec<(u64, u128, JobState)> {
        self.recovered.values().map(|r| (r.job, r.fingerprint, r.state.clone())).collect()
    }

    /// Drives `jobs` to terminal states, checkpointing between slices.
    /// Jobs already `Done`/`Failed` in the log (with matching
    /// fingerprints) are replayed without re-execution; `InFlight` jobs
    /// resume from their persisted frontier; fingerprint mismatches and
    /// corruption-dropped records restart from scratch.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint-write I/O failures. Job-level failures never
    /// error — they are bounded-retried and then recorded as
    /// [`JobState::Failed`].
    pub fn run(mut self, jobs: Vec<DseJob>) -> io::Result<CampaignReport> {
        let workers = match self.config.workers {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        };
        let mut slots = self.seed_slots(jobs);
        let sched: Scheduler<()> = Scheduler::new(workers);
        for slot in slots.iter_mut() {
            if slot.resolved.is_none() {
                self.submit_slice(&sched, slot);
            }
        }

        let mut completed_walls: Vec<Duration> =
            slots.iter().filter_map(|s| terminal_wall(s.resolved.as_ref())).collect();
        let killed = 'drive: loop {
            let mut open_jobs = false;
            for i in 0..slots.len() {
                if slots[i].resolved.is_some() {
                    continue;
                }
                open_jobs = true;
                let Some(handle) = slots[i].handle.take() else { continue };
                let done = match handle.wait_timeout(self.config.poll) {
                    Err(handle) => {
                        self.police_slice(&sched, &mut slots[i], handle)?;
                        continue;
                    }
                    Ok(done) => done,
                };
                match done.outcome {
                    JobOutcome::Completed(SliceRun::Done(result)) => {
                        let (outcome, audit) = *result;
                        completed_walls.push(outcome.wall);
                        let state = JobState::Done { outcome, audit };
                        let kill = self.checkpoint(&slots[i], &state)?;
                        slots[i].resolved = Some(state);
                        if kill {
                            break 'drive true;
                        }
                        self.scan_stragglers(&sched, &mut slots, &completed_walls);
                    }
                    JobOutcome::Completed(SliceRun::Paused(frontier)) => {
                        slots[i].attempts = 0;
                        slots[i].wall = frontier.wall;
                        let state =
                            JobState::InFlight { frontier: (*frontier).clone(), attempts: 0 };
                        slots[i].frontier = Some(*frontier);
                        let kill = self.checkpoint(&slots[i], &state)?;
                        if kill {
                            break 'drive true;
                        }
                        self.submit_slice(&sched, &mut slots[i]);
                    }
                    JobOutcome::Panicked(reason) => {
                        if self.fail_or_retry(&sched, &mut slots[i], reason)? {
                            break 'drive true;
                        }
                    }
                    JobOutcome::Cancelled => {
                        // A cancelled attempt that was not requeued (e.g. a
                        // kill raced the queue): just schedule the slice
                        // again from the last checkpoint.
                        self.submit_slice(&sched, &mut slots[i]);
                    }
                }
            }
            if !open_jobs {
                break false;
            }
        };

        if killed {
            for slot in &slots {
                if let Some(handle) = &slot.handle {
                    handle.cancel();
                }
            }
            drop(sched);
            self.apply_kill_corruption()?;
            return Ok(self.report(
                slots,
                CampaignStatus::Killed { after_checkpoints: self.stats.checkpoints_written },
            ));
        }
        drop(sched);
        Ok(self.report(slots, CampaignStatus::Completed))
    }

    /// Builds the per-job slots, consuming the replayed log states.
    fn seed_slots(&mut self, jobs: Vec<DseJob>) -> Vec<JobSlot> {
        jobs.into_iter()
            .enumerate()
            .map(|(i, job)| {
                let fingerprint = job_fingerprint(&job);
                let mut slot = JobSlot {
                    index: i as u64,
                    job: Arc::new(job),
                    fingerprint,
                    frontier: None,
                    resolved: None,
                    handle: None,
                    slice_started: Instant::now(),
                    attempts: 0,
                    wall: Duration::ZERO,
                    demoted: false,
                    panic_armed: self.faults.panic_once.contains(&i),
                };
                match self.recovered.get(&(i as u64)) {
                    Some(rec) if rec.fingerprint == fingerprint => match &rec.state {
                        JobState::Done { .. } | JobState::Failed { .. } => {
                            self.stats.jobs_recovered += 1;
                            slot.resolved = Some(rec.state.clone());
                        }
                        JobState::InFlight { frontier, attempts } => {
                            self.stats.jobs_resumed += 1;
                            slot.wall = frontier.wall;
                            slot.attempts = *attempts;
                            slot.frontier = Some(frontier.clone());
                        }
                        JobState::Pending => {}
                    },
                    Some(_) => self.stats.jobs_restarted += 1,
                    None => {}
                }
                slot
            })
            .collect()
    }

    /// Submits the next slice of `slot` at its current priority.
    fn submit_slice(&mut self, sched: &Scheduler<()>, slot: &mut JobSlot) {
        let job = Arc::clone(&slot.job);
        let from = slot.frontier.clone();
        let slice = self.config.slice.max(1);
        let panic_fault = std::mem::take(&mut slot.panic_armed);
        let priority = if slot.demoted { -1 } else { 0 };
        slot.slice_started = Instant::now();
        self.stats.slices_run += 1;
        slot.handle = Some(sched.submit_prio(priority, move |_: &mut (), _: &JobCtl| {
            run_slice(&job, from.as_ref(), slice, panic_fault)
        }));
    }

    /// Timeout policing of an in-flight slice: hands the handle back when
    /// within budget, otherwise cancels and requeues (or fails the job once
    /// retries are exhausted).
    fn police_slice(
        &mut self,
        sched: &Scheduler<()>,
        slot: &mut JobSlot,
        handle: JobHandle<SliceRun>,
    ) -> io::Result<()> {
        if slot.slice_started.elapsed() <= self.config.slice_timeout {
            slot.handle = Some(handle);
            return Ok(());
        }
        slot.attempts += 1;
        handle.cancel();
        if slot.attempts > self.config.max_retries {
            let state = JobState::Failed {
                reason: format!("slice exceeded {:?}", self.config.slice_timeout),
                attempts: slot.attempts,
            };
            self.checkpoint(slot, &state)?;
            slot.resolved = Some(state);
            // The kill check is deliberately ignored here: a fail record on
            // the timeout path is not a checkpoint boundary worth killing
            // at (the integration tests kill at progress checkpoints).
            return Ok(());
        }
        self.stats.retries += 1;
        let job = Arc::clone(&slot.job);
        let from = slot.frontier.clone();
        let slice = self.config.slice.max(1);
        let priority = if slot.demoted { -1 } else { 0 };
        slot.slice_started = Instant::now();
        let superseded = sched.requeue(&handle, priority, move |_: &mut (), _: &JobCtl| {
            run_slice(&job, from.as_ref(), slice, false)
        });
        // If the cancel lost the race and the old attempt completed, its
        // result is superseded by the requeued attempt, which re-runs the
        // same slice from the same frontier — deterministic duplicate work,
        // never divergent state.
        drop(superseded);
        slot.handle = Some(handle);
        std::thread::sleep(self.backoff(slot.attempts));
        Ok(())
    }

    /// Retry-with-backoff on a panicked slice; `Failed` once retries are
    /// exhausted. Returns whether a kill fired on the fail checkpoint.
    fn fail_or_retry(
        &mut self,
        sched: &Scheduler<()>,
        slot: &mut JobSlot,
        reason: String,
    ) -> io::Result<bool> {
        slot.attempts += 1;
        if slot.attempts > self.config.max_retries {
            let state = JobState::Failed { reason, attempts: slot.attempts };
            let kill = self.checkpoint(slot, &state)?;
            slot.resolved = Some(state);
            return Ok(kill);
        }
        self.stats.retries += 1;
        std::thread::sleep(self.backoff(slot.attempts));
        self.submit_slice(sched, slot);
        Ok(false)
    }

    fn backoff(&self, attempts: u32) -> Duration {
        self.config.retry_backoff * 2u32.saturating_pow(attempts.saturating_sub(1).min(16))
    }

    /// Demotes jobs whose accumulated wall exceeds the straggler cap and
    /// requeues their queued slice at low priority under the same handle.
    fn scan_stragglers(
        &mut self,
        sched: &Scheduler<()>,
        slots: &mut [JobSlot],
        completed_walls: &[Duration],
    ) {
        if completed_walls.len() < self.config.straggler_after.max(1) {
            return;
        }
        let mut sorted = completed_walls.to_vec();
        sorted.sort();
        let cap = sorted[sorted.len() / 2] * self.config.straggler_factor;
        for slot in slots.iter_mut() {
            if slot.resolved.is_some() || slot.demoted {
                continue;
            }
            if slot.wall + slot.slice_started.elapsed() <= cap {
                continue;
            }
            slot.demoted = true;
            self.stats.stragglers_demoted += 1;
            if let Some(handle) = slot.handle.take() {
                handle.cancel();
                let job = Arc::clone(&slot.job);
                let from = slot.frontier.clone();
                let slice = self.config.slice.max(1);
                slot.slice_started = Instant::now();
                let superseded = sched.requeue(&handle, -1, move |_: &mut (), _: &JobCtl| {
                    run_slice(&job, from.as_ref(), slice, false)
                });
                drop(superseded);
                slot.handle = Some(handle);
            }
        }
    }

    /// Appends one framed, crc-sealed record and syncs it. Returns whether
    /// the fault plan's kill fires at this checkpoint.
    fn checkpoint(&mut self, slot: &JobSlot, state: &JobState) -> io::Result<bool> {
        let started = Instant::now();
        let record = CheckpointRecord {
            job: slot.index,
            fingerprint: slot.fingerprint,
            state: state.clone(),
        };
        let framed = recfile::frame_record(&recfile::encode_payload(&record));
        self.log.write_all(&framed)?;
        self.log.sync_data()?;
        self.stats.checkpoint_bytes += framed.len() as u64;
        self.stats.checkpoints_written += 1;
        self.stats.checkpoint_write_wall += started.elapsed();
        Ok(self.faults.kill_after_checkpoints.is_some_and(|k| self.stats.checkpoints_written >= k))
    }

    /// Applies the fault plan's on-kill log corruption (torn-write
    /// simulation).
    fn apply_kill_corruption(&mut self) -> io::Result<()> {
        let path = self.dir.join(CAMPAIGN_LOG);
        if let Some(offset) = self.faults.flip_byte_on_kill {
            let mut bytes = std::fs::read(&path)?;
            if !bytes.is_empty() {
                let at = (offset as usize).min(bytes.len() - 1);
                bytes[at] ^= 0xA5;
                std::fs::write(&path, &bytes)?;
            }
        }
        if let Some(cut) = self.faults.truncate_on_kill {
            let file = OpenOptions::new().write(true).open(&path)?;
            let len = file.metadata()?.len();
            file.set_len(len.saturating_sub(cut))?;
            file.sync_data()?;
        }
        Ok(())
    }

    fn report(&self, slots: Vec<JobSlot>, status: CampaignStatus) -> CampaignReport {
        let jobs = slots
            .into_iter()
            .map(|slot| CampaignJobReport {
                label: slot.job.label.clone(),
                state: match (slot.resolved, slot.frontier) {
                    (Some(state), _) => state,
                    (None, Some(frontier)) => {
                        JobState::InFlight { frontier, attempts: slot.attempts }
                    }
                    (None, None) => JobState::Pending,
                },
            })
            .collect();
        CampaignReport { status, jobs, stats: self.stats.clone() }
    }
}

/// Wall clock a terminal state accounts for (straggler median seeding on
/// resumed campaigns).
fn terminal_wall(state: Option<&JobState>) -> Option<Duration> {
    match state {
        Some(JobState::Done { outcome, .. }) => Some(outcome.wall),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(label: &str, success: bool) -> CampaignJobReport {
        let outcome = DseOutcome {
            success,
            witness: None,
            paths: 1,
            instructions: 1,
            emulated_instructions: 1,
            resumed_paths: 0,
            wall: Duration::ZERO,
            probes_covered: 0,
            max_constraints: 0,
            solver_calls: 0,
            solve_cache_hits: 0,
            hazard_causes: Vec::new(),
            max_branches_pre_hazard: 0,
            exhausted: None,
        };
        CampaignJobReport {
            label: label.to_string(),
            state: JobState::Done { outcome, audit: DseAudit::default() },
        }
    }

    #[test]
    fn labels_resolve_to_their_class_prefix() {
        assert_eq!(class_of_label("database/db-hash/rop-1.0"), Some("database"));
        assert_eq!(class_of_label("application/app-crc/native"), Some("application"));
        assert_eq!(class_of_label("no-prefix-label"), None);
        assert_eq!(class_of_label("/degenerate"), None);
    }

    #[test]
    fn class_summary_groups_outcomes_by_label_prefix() {
        let report = CampaignReport {
            status: CampaignStatus::Completed,
            jobs: vec![
                done("database/db-hash/native", true),
                done("database/db-btree/rop-1.0", false),
                done("application/app-crc/native", true),
                CampaignJobReport {
                    label: "database/db-hash/vm2".into(),
                    state: JobState::Pending,
                },
                done("bare-label", true),
            ],
            stats: CampaignStats::default(),
        };
        let summary = report.class_summary();
        assert_eq!(summary.len(), 3);
        assert_eq!(summary[0].class, "database");
        assert_eq!((summary[0].jobs, summary[0].finished, summary[0].defeated), (3, 2, 1));
        assert_eq!(summary[1].class, "application");
        assert_eq!((summary[1].jobs, summary[1].finished, summary[1].defeated), (1, 1, 1));
        assert_eq!(summary[2].class, "unclassified");
        assert_eq!(summary[2].jobs, 1);
    }
}
