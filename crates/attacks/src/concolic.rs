//! Concolic (dynamic symbolic) execution — the reproduction's S2E stand-in.
//!
//! A shadow executor runs the target function concretely on the RM64
//! emulator while propagating arena-interned expressions ([`ExprId`]s) for
//! registers and memory bytes that depend on the attacker-controlled input.
//! Every conditional branch whose flags depend on the input yields a path
//! [`Constraint`]; the DSE driver performs generational search — negate one
//! constraint at a time, ask the [`Solver`] for an input, re-execute — until
//! the goal is reached or the work budget runs out. The cost unit is
//! emulated instructions, so the relative slowdowns caused by ROP chains,
//! P1/P3 and VM interpreters are measured on the same scale the paper uses
//! wall-clock time for.
//!
//! # Fork-point exploration
//!
//! The explorer runs in one of two [`ExploreMode`]s. The production mode,
//! [`ExploreMode::ForkPoint`], captures an emulator [`Snapshot`] plus a
//! clone of the shadow state at the *first occurrence* of every distinct
//! symbolic branch along a path. When the generational search flips that
//! branch, the new frontier entry restores the snapshot, patches every
//! input-dependent register, memory cell and flag state by re-evaluating its
//! shadow expression under the new input, and resumes from the fork — the
//! prefix is never re-executed. Instruction *accounting* still includes the
//! skipped prefix (the snapshot carries its [`ExecStats`]), so budgets,
//! outcomes and the frontier schedule are bit-identical to the reference
//! [`ExploreMode::Rerun`] oracle that re-executes every path from scratch;
//! only the wall-clock cost drops. [`DseOutcome::emulated_instructions`]
//! reports the instructions actually stepped.
//!
//! Patching is exact only while the shadow tracking is exact. Whenever an
//! instruction would make input-dependent state escape the shadow (an
//! oversized expression is concretized, a memory access goes through an
//! input-dependent address, tainted flags are consumed, a carry chain or a
//! symbolic divisor shows up), the run sets a *hazard* flag and stops
//! capturing fork points; flips past that point fall back to a full re-run,
//! which keeps the two modes equivalent instead of subtly wrong. The first
//! hazard of each path is reported (cause plus the number of distinct
//! branch constraints recorded before it) and aggregated per cause into
//! [`DseOutcome::hazard_causes`], so a suite where expression-size
//! concretization caps symbolic depth is visible as such instead of
//! folding silently into "defeated".
//!
//! # Constraint caching
//!
//! All expressions of one attack live in a single hash-consed [`ExprArena`]
//! owned by the engine, so a [`Constraint`] — a `Copy` struct of interned
//! ids — *is* its own exact structural key. Two cache layers exploit that:
//! duplicated constraints along one path (ROP chains re-execute the same
//! compare at many program points) make the flip provably unsatisfiable, so
//! they are skipped without calling the solver at all; and solver queries
//! are memoized under their *normalized* form — a duplicate-safe
//! [`SetDigest`] of the distinct prefix-constraint structural hashes plus
//! the negated constraint's hash — so equivalent frontier entries across
//! paths (and across runs: structural hashes are arena-independent) are
//! solved exactly once.
//!
//! [`ExecStats`]: raindrop_machine::ExecStats
//! [`Snapshot`]: raindrop_machine::Snapshot

use crate::solver::{Constraint, SearchSolver, SetDigest, Solver, VarDomain};
use crate::sym::{BinKind, EvalMemo, ExprArena, ExprId, UnKind};
use raindrop_machine::{AluOp, Cond, EmuError, Emulator, Image, Inst, Reg, Snapshot};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Cap on shadow-expression size, measured as the *DAG size* (distinct
/// arena nodes reachable — the real memory footprint); larger expressions
/// are concretized, the standard concolic fallback (§VII-C3 discusses its
/// limits on table lookups). The previous representation measured the
/// unrolled tree, ~86× larger than the node graph on P3-strengthened
/// chains, which tripped this hazard after only ~a hundred branches.
const MAX_EXPR_NODES: usize = 4096;

/// Cap on fork points captured per path: bounds the snapshot memory a
/// single deep path can pin while its flips wait in the frontier.
const MAX_FORK_POINTS: usize = 128;

/// Cap on frontier entries that may pin a fork-point snapshot at any one
/// time. Entries queued past it carry no resume point and fall back to a
/// re-run — identical results, only slower — so frontier memory stays
/// bounded by this cap instead of [`DseBudget::max_frontier`].
const FRONTIER_RESUME_CAP: usize = 4096;

/// How the symbolic input reaches the target function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputSpec {
    /// A single 64-bit register argument (variable 0), masked to
    /// `size_bytes` meaningful bytes. This is the RandomFuns shape.
    RegisterArg {
        /// Number of meaningful input bytes (1, 2, 4 or 8).
        size_bytes: usize,
    },
    /// `len` input bytes in guest memory at `addr` (variables `0..len`),
    /// each in `0..=255`. Extra arguments are passed unchanged. This is the
    /// base64 shape.
    MemoryBuffer {
        /// Guest address of the buffer.
        addr: u64,
        /// Number of symbolic bytes.
        len: usize,
        /// Concrete arguments passed to the function (e.g. the length).
        args: Vec<u64>,
    },
}

impl InputSpec {
    /// Number of input variables.
    pub fn vars(&self) -> usize {
        match self {
            InputSpec::RegisterArg { .. } => 1,
            InputSpec::MemoryBuffer { len, .. } => *len,
        }
    }

    /// Domain mask of one variable.
    pub fn var_mask(&self) -> u64 {
        match self {
            InputSpec::RegisterArg { size_bytes } => {
                if *size_bytes >= 8 {
                    u64::MAX
                } else {
                    (1u64 << (8 * size_bytes)) - 1
                }
            }
            InputSpec::MemoryBuffer { .. } => 0xff,
        }
    }

    /// The solver-facing variable domain.
    pub fn domain(&self) -> VarDomain {
        let exhaustive = match self {
            InputSpec::RegisterArg { size_bytes } if *size_bytes <= 2 => {
                Some(1u64 << (8 * *size_bytes))
            }
            InputSpec::MemoryBuffer { .. } => Some(256),
            _ => None,
        };
        VarDomain { vars: self.vars(), mask: self.var_mask(), exhaustive }
    }
}

/// Result of one shadowed execution.
#[derive(Debug, Clone)]
pub struct PathRecord {
    /// Return value of the function.
    pub return_value: u64,
    /// Path constraints whose operands mention the input.
    pub constraints: Vec<Constraint>,
    /// Instructions executed.
    pub instructions: u64,
    /// Probe indices observed set after the run.
    pub probes_hit: BTreeSet<u32>,
    /// The first hazard that stopped exact shadow tracking, if any.
    pub hazard_cause: Option<&'static str>,
    /// Distinct branch constraints recorded before the first hazard (the
    /// whole path's distinct count when no hazard occurred): the depth to
    /// which the explorer can still fork exactly.
    pub branches_pre_hazard: usize,
}

/// One shadowed execution together with the arena its constraint
/// expressions live in (returned by [`shadow_run`]).
pub struct ShadowRun {
    /// The expression arena every [`Constraint`] id of `record` points into.
    pub arena: ExprArena,
    /// The recorded path.
    pub record: PathRecord,
}

/// How the real machine flags were computed, in terms of shadow
/// expressions, so a fork-point restore can replay them exactly for a new
/// input.
#[derive(Clone, Copy)]
enum FlagReplay {
    /// `Flags::set_sub(a, b, false)`.
    Sub(ExprId, ExprId),
    /// `Flags::set_add(a, b, false)`.
    Add(ExprId, ExprId),
    /// `Flags::set_logic(v)`.
    Logic(ExprId),
}

/// Shadow model of the machine flags: the constraint operands (the model
/// the solver reasons over) plus the exact replay recipe.
#[derive(Clone, Copy)]
struct FlagShadow {
    /// Constraint model: left operand.
    lhs: ExprId,
    /// Constraint model: right operand.
    rhs: ExprId,
    /// Constraint model: subtraction (`cmp`-style) vs AND (`test`-style).
    is_sub: bool,
    /// Exact flag computation for fork-point patching.
    replay: FlagReplay,
}

impl FlagShadow {
    fn symbolic(&self, arena: &ExprArena) -> bool {
        arena.is_symbolic(self.lhs) || arena.is_symbolic(self.rhs)
    }

    /// Whether the constraint model `(lhs, rhs, is_sub)` predicts the real
    /// branch outcome for `cond` exactly. `cmp`/`test`/`neg`-sourced flags
    /// are modeled exactly for every condition; ALU add/sub flags are
    /// modeled as "result vs 0", which is exact only for the ZF-based
    /// conditions (CF/OF differ from the real computation). Interned ids
    /// make the operand comparison structural.
    fn model_exact_for(&self, cond: Cond) -> bool {
        match self.replay {
            FlagReplay::Logic(_) => true,
            FlagReplay::Sub(a, b) => {
                (self.is_sub && a == self.lhs && b == self.rhs)
                    || matches!(cond, Cond::E | Cond::Ne)
            }
            FlagReplay::Add(..) => matches!(cond, Cond::E | Cond::Ne),
        }
    }

    /// The carry-flag value as an expression over the input: `cmp`/`sub`
    /// flags carry iff `a < b`, `add` flags iff the sum wrapped, logic
    /// flags never. Lets `adc`/`sbb` (the chain flag-leak idiom) be
    /// tracked exactly instead of concretized.
    fn carry_expr(&self, arena: &mut ExprArena) -> ExprId {
        match self.replay {
            FlagReplay::Sub(a, b) => arena.bin(BinKind::Ult, a, b),
            FlagReplay::Add(a, b) => {
                let sum = arena.bin(BinKind::Add, a, b);
                arena.bin(BinKind::Ult, sum, a)
            }
            FlagReplay::Logic(_) => arena.constant(0),
        }
    }

    fn replay_into(
        &self,
        arena: &ExprArena,
        input: &[u64],
        memo: &mut EvalMemo,
        flags: &mut raindrop_machine::Flags,
    ) {
        match self.replay {
            FlagReplay::Sub(a, b) => {
                flags.set_sub(arena.eval(a, input, memo), arena.eval(b, input, memo), false);
            }
            FlagReplay::Add(a, b) => {
                flags.set_add(arena.eval(a, input, memo), arena.eval(b, input, memo), false);
            }
            FlagReplay::Logic(v) => flags.set_logic(arena.eval(v, input, memo)),
        }
    }
}

/// Shadow knowledge about the machine flags.
#[derive(Clone, Copy)]
enum FlagTrack {
    /// Flags are input-independent.
    Concrete,
    /// Flags are described exactly by the carried [`FlagShadow`] (which may
    /// still be non-symbolic if both operands folded to constants).
    Exact(FlagShadow),
    /// Flags depend on the input but are not modeled (e.g. set by a shift
    /// of a symbolic value). Consuming them is a fork hazard.
    Tainted,
}

impl FlagTrack {
    fn symbolic_shadow(&self, arena: &ExprArena) -> Option<FlagShadow> {
        match self {
            FlagTrack::Exact(fs) if fs.symbolic(arena) => Some(*fs),
            _ => None,
        }
    }
}

/// Shadow state: symbolic expressions for registers and memory.
///
/// Memory is tracked at two granularities to keep expressions small: whole
/// 64-bit words stored at an exact address (the common case — stack slots,
/// locals, VM operand stacks) and individual bytes (byte-oriented workloads
/// such as base64). A 64-bit reload of a word stored at the same address
/// returns the original expression unchanged, so values round-tripped
/// through push/pop or spill slots do not blow up.
///
/// The `hazard` flag records that some input-dependent state escaped the
/// tracking (concretization, symbolic addressing, tainted-flag consumption):
/// from that point on the state can no longer be reconstructed for a
/// different input, so fork-point capture stops for the rest of the path.
#[derive(Clone)]
struct Shadow {
    regs: [Option<ExprId>; 16],
    words: HashMap<u64, ExprId>,
    bytes: HashMap<u64, ExprId>,
    flags: FlagTrack,
    hazard: bool,
    hazard_cause: Option<&'static str>,
}

impl Shadow {
    fn new() -> Shadow {
        Shadow {
            regs: Default::default(),
            words: HashMap::new(),
            bytes: HashMap::new(),
            flags: FlagTrack::Concrete,
            hazard: false,
            hazard_cause: None,
        }
    }

    fn set_hazard(&mut self, cause: &'static str) {
        self.hazard = true;
        if self.hazard_cause.is_none() {
            self.hazard_cause = Some(cause);
        }
    }

    fn reg_symbolic(&self, r: Reg) -> bool {
        self.regs[r.index()].is_some()
    }

    fn set_reg(&mut self, arena: &mut ExprArena, r: Reg, e: Option<ExprId>) {
        let e = match e {
            Some(e) if arena.is_symbolic(e) => {
                if !arena.dag_oversize(e, MAX_EXPR_NODES) {
                    Some(e)
                } else {
                    // Concretization: the register value still depends on
                    // the input, but the dependence is dropped.
                    self.set_hazard("expr-size concretization (register)");
                    None
                }
            }
            _ => None,
        };
        self.regs[r.index()] = e;
    }

    fn clear_range(&mut self, addr: u64, len: u64) {
        for i in 0..len {
            self.bytes.remove(&addr.wrapping_add(i));
        }
        let end = addr.wrapping_add(len);
        for d in 0..8u64 {
            let w = addr.wrapping_sub(d);
            if self.words.contains_key(&w) {
                // Overlap test: word [w, w+8) vs [addr, addr+len).
                if w < end && addr < w.wrapping_add(8) {
                    self.words.remove(&w);
                    // Dropping a partially-overlapped word loses tracking
                    // for the bytes outside the cleared range.
                    if w < addr || w.wrapping_add(8) > end {
                        self.set_hazard("partial overwrite of tracked word");
                    }
                }
            }
        }
        for i in 1..len {
            let w = addr.wrapping_add(i);
            if self.words.remove(&w).is_some() && w.wrapping_add(8) > end {
                self.set_hazard("partial overwrite of tracked word");
            }
        }
    }

    fn mem_symbolic(&self, addr: u64, len: u64) -> bool {
        (0..len).any(|i| self.bytes.contains_key(&addr.wrapping_add(i)))
            || (0..(len + 7)).any(|d| {
                let w = addr.wrapping_add(len).wrapping_sub(1).wrapping_sub(d);
                self.words.contains_key(&w) && w.wrapping_add(8) > addr
            })
    }

    fn mem_byte(&self, arena: &mut ExprArena, addr: u64, concrete: u8) -> ExprId {
        if let Some(&e) = self.bytes.get(&addr) {
            return e;
        }
        for d in 0..8u64 {
            let w = addr.wrapping_sub(d);
            if let Some(&e) = self.words.get(&w) {
                let shift = arena.constant(8 * d);
                let shr = arena.bin(BinKind::Shr, e, shift);
                let mask = arena.constant(0xff);
                return arena.bin(BinKind::And, shr, mask);
            }
        }
        arena.constant(concrete as u64)
    }

    fn load64(&mut self, arena: &mut ExprArena, addr: u64, concrete: u64) -> ExprId {
        if let Some(&e) = self.words.get(&addr) {
            return e;
        }
        if !self.mem_symbolic(addr, 8) {
            return arena.constant(concrete);
        }
        let mut acc = arena.constant(0);
        for i in 0..8u64 {
            let byte = self.mem_byte(arena, addr + i, (concrete >> (8 * i)) as u8);
            let shift = arena.constant(8 * i);
            let shl = arena.bin(BinKind::Shl, byte, shift);
            acc = arena.bin(BinKind::Or, acc, shl);
        }
        if arena.dag_oversize(acc, MAX_EXPR_NODES) {
            self.set_hazard("expr-size concretization (load)");
            arena.constant(concrete)
        } else {
            acc
        }
    }

    fn store64(&mut self, arena: &mut ExprArena, addr: u64, expr: Option<ExprId>) {
        self.clear_range(addr, 8);
        if let Some(e) = expr {
            if arena.is_symbolic(e) {
                if !arena.dag_oversize(e, MAX_EXPR_NODES) {
                    self.words.insert(addr, e);
                } else {
                    self.set_hazard("expr-size concretization (store64)");
                }
            }
        }
    }

    fn store8(&mut self, arena: &mut ExprArena, addr: u64, expr: Option<ExprId>) {
        self.clear_range(addr, 1);
        if let Some(e) = expr {
            if arena.is_symbolic(e) {
                if !arena.dag_oversize(e, MAX_EXPR_NODES) {
                    let mask = arena.constant(0xff);
                    let masked = arena.bin(BinKind::And, e, mask);
                    self.bytes.insert(addr, masked);
                } else {
                    self.set_hazard("expr-size concretization (store8)");
                }
            }
        }
    }
}

/// Writes every input-dependent piece of machine state for `input` into a
/// freshly restored fork-point snapshot: tracked registers, memory words
/// and bytes are re-evaluated under the new input, and the flags are
/// replayed through the exact computation that produced them. Used by the
/// fork-point explorer; valid only while the shadow carries no hazard.
/// One shared [`EvalMemo`] serves the whole patch: every expression is
/// evaluated under the same input, so shared subterms across registers,
/// words and bytes are computed once.
fn patch_for_input(
    emu: &mut Emulator,
    arena: &ExprArena,
    shadow: &Shadow,
    input: &[u64],
    memo: &mut EvalMemo,
) {
    memo.reset();
    for r in Reg::ALL {
        if let Some(e) = shadow.regs[r.index()] {
            emu.cpu.set_reg(r, arena.eval(e, input, memo));
        }
    }
    for (addr, e) in &shadow.words {
        emu.mem.write_u64(*addr, arena.eval(*e, input, memo));
    }
    for (addr, e) in &shadow.bytes {
        emu.mem.write_u8(*addr, arena.eval(*e, input, memo) as u8);
    }
    if let Some(fs) = shadow.flags.symbolic_shadow(arena) {
        fs.replay_into(arena, input, memo, &mut emu.cpu.flags);
    }
}

/// Runs the target once with a concrete input while recording symbolic path
/// constraints. Returns the record together with the arena that owns its
/// constraint expressions.
///
/// # Errors
///
/// Propagates emulator errors (budget exhaustion, decode faults — both are
/// treated by the DSE driver as "this path costs too much / derails").
pub fn shadow_run(
    image: &Image,
    func: &str,
    spec: &InputSpec,
    input: &[u64],
    budget: u64,
) -> Result<ShadowRun, EmuError> {
    let mut engine = Engine::new(image, func, spec.clone(), false);
    let record = engine.run_path(input, budget, None)?.record;
    Ok(ShadowRun { arena: engine.arena, record })
}

/// Pre-execution facts an instruction's shadow propagation needs: the
/// concrete register file before the step (destination registers get
/// overwritten by it), the resolved memory-operand address, and whether the
/// address itself depends on the input (a fork hazard: under a different
/// input the access would go elsewhere).
struct PreState {
    concrete_regs: [u64; 16],
    flags_before: raindrop_machine::Flags,
    mem_addr: Option<u64>,
    mem_concrete: u64,
    any_symbolic: bool,
    addr_symbolic: bool,
}

impl PreState {
    fn capture(emu: &Emulator, shadow: &Shadow, inst: &Inst) -> PreState {
        let mut concrete_regs = [0u64; 16];
        for r in Reg::ALL {
            concrete_regs[r.index()] = emu.reg(r);
        }
        let mut any = inst.regs_read().iter().any(|r| shadow.reg_symbolic(r));
        let mut addr_symbolic = false;
        let mem_addr = inst.mem_operand().map(|m| {
            let mut a = m.disp as i64 as u64;
            if let Some(b) = m.base {
                a = a.wrapping_add(emu.reg(b));
                addr_symbolic |= shadow.reg_symbolic(b);
            }
            if let Some(i) = m.index {
                a = a.wrapping_add(emu.reg(i).wrapping_mul(m.scale as u64));
                addr_symbolic |= shadow.reg_symbolic(i);
            }
            a
        });
        let mut mem_concrete = 0;
        if let Some(addr) = mem_addr {
            mem_concrete = emu.mem.read_u64(addr);
            if shadow.mem_symbolic(addr, 8) {
                any = true;
            }
        }
        PreState {
            concrete_regs,
            flags_before: emu.cpu.flags,
            mem_addr,
            mem_concrete,
            any_symbolic: any,
            addr_symbolic,
        }
    }
}

/// The expression a register held before the instruction executed.
fn op_expr(arena: &mut ExprArena, shadow: &Shadow, pre: &PreState, r: Reg) -> ExprId {
    match shadow.regs[r.index()] {
        Some(e) => e,
        None => arena.constant(pre.concrete_regs[r.index()]),
    }
}

fn alu_kind(op: AluOp) -> BinKind {
    match op {
        AluOp::Add | AluOp::Adc => BinKind::Add,
        AluOp::Sub | AluOp::Sbb => BinKind::Sub,
        AluOp::And => BinKind::And,
        AluOp::Or => BinKind::Or,
        AluOp::Xor => BinKind::Xor,
    }
}

/// The carry-in expression an ALU op consumes: `adc`/`sbb` read the carry
/// flag, everything else ignores it.
fn alu_carry(
    op: AluOp,
    arena: &mut ExprArena,
    shadow: &mut Shadow,
    pre: &PreState,
) -> Option<ExprId> {
    if matches!(op, AluOp::Adc | AluOp::Sbb) {
        carry_in_expr(arena, shadow, pre)
    } else {
        None
    }
}

/// Shadow outcome of a symbolic ALU operation: the result expression
/// (carry included) and the flag tracking — exact for the carry-less ops,
/// tainted for `adc`/`sbb` (their flag outputs are not modeled). One
/// helper so the four ALU addressing forms cannot drift apart.
fn alu_shadow(
    arena: &mut ExprArena,
    op: AluOp,
    a: ExprId,
    b: ExprId,
    carry: Option<ExprId>,
) -> (ExprId, FlagTrack) {
    let e = alu_result(arena, op, a, b, carry);
    let flags = if matches!(op, AluOp::Adc | AluOp::Sbb) {
        FlagTrack::Tainted
    } else {
        alu_flags(arena, op, e, a, b)
    };
    (e, flags)
}

/// Builds the flag shadow for an ALU-style flag write: the solver model is
/// "result vs 0 via sub", the replay is the real operand computation.
fn alu_flags(arena: &mut ExprArena, op: AluOp, result: ExprId, a: ExprId, b: ExprId) -> FlagTrack {
    let replay = match op {
        AluOp::Add | AluOp::Adc => FlagReplay::Add(a, b),
        AluOp::Sub | AluOp::Sbb => FlagReplay::Sub(a, b),
        AluOp::And | AluOp::Or | AluOp::Xor => FlagReplay::Logic(result),
    };
    let zero = arena.constant(0);
    FlagTrack::Exact(FlagShadow { lhs: result, rhs: zero, is_sub: true, replay })
}

/// Records the constraint for a flag-consuming instruction (`jcc`, `cmov`,
/// `setcc`) if the flags are symbolic; marks a hazard when the flags are
/// tainted (input-dependent but unmodeled) or when the model is inexact for
/// this condition (the solver would reason over wrong CF/OF semantics).
fn consume_flags(
    arena: &ExprArena,
    shadow: &mut Shadow,
    cond: Cond,
    taken: bool,
    constraints: &mut Vec<Constraint>,
) -> bool {
    match shadow.flags {
        FlagTrack::Tainted => {
            shadow.set_hazard("tainted-flag branch");
            false
        }
        FlagTrack::Exact(fs) if fs.symbolic(arena) => {
            if !fs.model_exact_for(cond) {
                shadow.set_hazard("inexact flag model for condition");
            }
            constraints.push(Constraint {
                lhs: fs.lhs,
                rhs: fs.rhs,
                flag_is_sub: fs.is_sub,
                cond,
                taken,
            });
            true
        }
        _ => false,
    }
}

/// Propagates shadow state across one executed instruction. `emu` holds the
/// post-state; `pre` holds operand expressions captured before execution.
fn propagate(
    inst: &Inst,
    pre: &PreState,
    emu: &Emulator,
    arena: &mut ExprArena,
    shadow: &mut Shadow,
    constraints: &mut Vec<Constraint>,
) {
    use Inst::*;
    // Lazy concretization: a symbolic stack pointer is pinned to its
    // concrete value at its next implicit use, and an input-dependent
    // effective address is pinned per access. Under the pinned prefix the
    // shadow's concrete-address tracking stays exact for any input the
    // solver produces.
    if uses_rsp(inst) && shadow.reg_symbolic(Reg::Rsp) {
        let e = op_expr(arena, shadow, pre, Reg::Rsp);
        constraints.push(pin_constraint(arena, e, pre.concrete_regs[Reg::Rsp.index()]));
        shadow.set_reg(arena, Reg::Rsp, None);
    }
    if pre.addr_symbolic && !matches!(inst, Lea(..)) {
        let m = inst.mem_operand().expect("addr_symbolic implies a mem operand");
        let e = addr_expr(arena, shadow, pre, m);
        constraints.push(pin_constraint(arena, e, pre.mem_addr.expect("resolved")));
    }
    match *inst {
        MovRR(d, s) => {
            let e = shadow.regs[s.index()];
            shadow.set_reg(arena, d, e);
        }
        MovRI(d, _) => shadow.set_reg(arena, d, None),
        Load(d, _) => {
            let addr = pre.mem_addr.expect("load has mem");
            let e = shadow.load64(arena, addr, emu.reg(d));
            shadow.set_reg(arena, d, Some(e));
        }
        LoadB(d, _) | LoadSxB(d, _) => {
            let addr = pre.mem_addr.expect("load has mem");
            let byte = shadow.mem_byte(arena, addr, emu.mem.read_u8(addr));
            let e =
                if matches!(inst, LoadSxB(..)) { arena.un(UnKind::SextByte, byte) } else { byte };
            shadow.set_reg(arena, d, Some(e));
        }
        Store(_, s) => {
            let addr = pre.mem_addr.expect("store has mem");
            let e = shadow.regs[s.index()];
            shadow.store64(arena, addr, e);
        }
        StoreI(_, _) => {
            let addr = pre.mem_addr.expect("store has mem");
            shadow.store64(arena, addr, None);
        }
        StoreB(_, s) => {
            let addr = pre.mem_addr.expect("store has mem");
            let e = shadow.regs[s.index()];
            shadow.store8(arena, addr, e);
        }
        Lea(d, m) => {
            let e = if pre.addr_symbolic { Some(addr_expr(arena, shadow, pre, m)) } else { None };
            shadow.set_reg(arena, d, e);
        }
        Push(r) => {
            let sp = emu.reg(Reg::Rsp);
            let e = shadow.regs[r.index()];
            shadow.store64(arena, sp, e);
        }
        PushI(_) => {
            let sp = emu.reg(Reg::Rsp);
            shadow.store64(arena, sp, None);
        }
        Pop(d) => {
            let sp = emu.reg(Reg::Rsp).wrapping_sub(8);
            let e = if shadow.mem_symbolic(sp, 8) {
                Some(shadow.load64(arena, sp, emu.reg(d)))
            } else {
                None
            };
            shadow.set_reg(arena, d, e);
        }
        Alu(op, d, s) => {
            let carry = alu_carry(op, arena, shadow, pre);
            let carry_sym = carry.is_some_and(|c| arena.is_symbolic(c));
            if pre.any_symbolic || carry_sym {
                let a = op_expr(arena, shadow, pre, d);
                let b = op_expr(arena, shadow, pre, s);
                let (e, flags) = alu_shadow(arena, op, a, b, carry);
                shadow.flags = flags;
                shadow.set_reg(arena, d, Some(e));
            } else {
                shadow.set_reg(arena, d, None);
                shadow.flags = FlagTrack::Concrete;
            }
        }
        AluI(op, d, imm) => {
            let carry = alu_carry(op, arena, shadow, pre);
            let carry_sym = carry.is_some_and(|c| arena.is_symbolic(c));
            if shadow.reg_symbolic(d) || carry_sym {
                let a = op_expr(arena, shadow, pre, d);
                let b = arena.constant(imm as i64 as u64);
                let (e, flags) = alu_shadow(arena, op, a, b, carry);
                shadow.flags = flags;
                shadow.set_reg(arena, d, Some(e));
            } else {
                shadow.set_reg(arena, d, None);
                shadow.flags = FlagTrack::Concrete;
            }
        }
        AluM(op, d, _) => {
            let carry = alu_carry(op, arena, shadow, pre);
            let carry_sym = carry.is_some_and(|c| arena.is_symbolic(c));
            let addr = pre.mem_addr.expect("mem operand");
            if pre.any_symbolic || carry_sym {
                let a = op_expr(arena, shadow, pre, d);
                let b = shadow.load64(arena, addr, pre.mem_concrete);
                let (e, flags) = alu_shadow(arena, op, a, b, carry);
                shadow.flags = flags;
                shadow.set_reg(arena, d, Some(e));
            } else {
                shadow.set_reg(arena, d, None);
                shadow.flags = FlagTrack::Concrete;
            }
        }
        AluStore(op, _, s) => {
            let carry = alu_carry(op, arena, shadow, pre);
            let carry_sym = carry.is_some_and(|c| arena.is_symbolic(c));
            let addr = pre.mem_addr.expect("mem operand");
            if pre.any_symbolic || carry_sym {
                let a = shadow.load64(arena, addr, pre.mem_concrete);
                let b = op_expr(arena, shadow, pre, s);
                let (e, flags) = alu_shadow(arena, op, a, b, carry);
                shadow.store64(arena, addr, Some(e));
                shadow.flags = flags;
            } else {
                shadow.store64(arena, addr, None);
                shadow.flags = FlagTrack::Concrete;
            }
        }
        Neg(r) => {
            if shadow.reg_symbolic(r) {
                let pre_r = op_expr(arena, shadow, pre, r);
                let zero = arena.constant(0);
                let e = arena.un(UnKind::Neg, pre_r);
                // neg sets flags as 0 - r, which `Flags::set_neg` matches
                // bit-exactly, so model and replay coincide.
                shadow.flags = FlagTrack::Exact(FlagShadow {
                    lhs: zero,
                    rhs: pre_r,
                    is_sub: true,
                    replay: FlagReplay::Sub(zero, pre_r),
                });
                shadow.set_reg(arena, r, Some(e));
            } else {
                shadow.set_reg(arena, r, None);
                shadow.flags = FlagTrack::Concrete;
            }
        }
        Not(r) => {
            if shadow.reg_symbolic(r) {
                let pre_r = op_expr(arena, shadow, pre, r);
                let e = arena.un(UnKind::Not, pre_r);
                shadow.set_reg(arena, r, Some(e));
            } else {
                shadow.set_reg(arena, r, None);
            }
        }
        Mul(d, s) => {
            if pre.any_symbolic {
                let pre_d = op_expr(arena, shadow, pre, d);
                let pre_s = op_expr(arena, shadow, pre, s);
                let e = arena.bin(BinKind::Mul, pre_d, pre_s);
                shadow.set_reg(arena, d, Some(e));
                // The emulator sets flags from the widening product; the
                // shadow does not model them.
                shadow.flags = FlagTrack::Tainted;
            } else {
                shadow.set_reg(arena, d, None);
                shadow.flags = FlagTrack::Concrete;
            }
        }
        MulI(d, s, imm) => {
            if shadow.reg_symbolic(s) {
                let pre_s = op_expr(arena, shadow, pre, s);
                let k = arena.constant(imm as i64 as u64);
                let e = arena.bin(BinKind::Mul, pre_s, k);
                shadow.set_reg(arena, d, Some(e));
                shadow.flags = FlagTrack::Tainted;
            } else {
                shadow.set_reg(arena, d, None);
                shadow.flags = FlagTrack::Concrete;
            }
        }
        Div(d, s) | Rem(d, s) => {
            if shadow.reg_symbolic(s) {
                // Under a different input the divisor could be zero, where
                // the emulator faults but the expression language yields
                // 0/x — the path shapes are not reconstructible.
                shadow.set_hazard("symbolic divisor");
            }
            if pre.any_symbolic {
                let kind = if matches!(inst, Div(..)) { BinKind::Div } else { BinKind::Rem };
                let pre_d = op_expr(arena, shadow, pre, d);
                let pre_s = op_expr(arena, shadow, pre, s);
                let e = arena.bin(kind, pre_d, pre_s);
                shadow.set_reg(arena, d, Some(e));
            } else {
                shadow.set_reg(arena, d, None);
            }
        }
        Shl(r, i) | Shr(r, i) | Sar(r, i) => {
            if shadow.reg_symbolic(r) {
                let kind = match inst {
                    Shl(..) => BinKind::Shl,
                    Shr(..) => BinKind::Shr,
                    _ => BinKind::Sar,
                };
                let pre_r = op_expr(arena, shadow, pre, r);
                let k = arena.constant(i as u64);
                let e = arena.bin(kind, pre_r, k);
                shadow.set_reg(arena, r, Some(e));
                shadow.flags = FlagTrack::Tainted;
            } else {
                shadow.set_reg(arena, r, None);
                shadow.flags = FlagTrack::Concrete;
            }
        }
        ShlR(d, s) | ShrR(d, s) => {
            if pre.any_symbolic {
                let kind = if matches!(inst, ShlR(..)) { BinKind::Shl } else { BinKind::Shr };
                let pre_d = op_expr(arena, shadow, pre, d);
                let pre_s = op_expr(arena, shadow, pre, s);
                let e = arena.bin(kind, pre_d, pre_s);
                shadow.set_reg(arena, d, Some(e));
                shadow.flags = FlagTrack::Tainted;
            } else {
                shadow.set_reg(arena, d, None);
                shadow.flags = FlagTrack::Concrete;
            }
        }
        Cmp(a, bb) => {
            if pre.any_symbolic {
                let ea = op_expr(arena, shadow, pre, a);
                let eb = op_expr(arena, shadow, pre, bb);
                shadow.flags = FlagTrack::Exact(FlagShadow {
                    lhs: ea,
                    rhs: eb,
                    is_sub: true,
                    replay: FlagReplay::Sub(ea, eb),
                });
            } else {
                shadow.flags = FlagTrack::Concrete;
            }
        }
        CmpI(a, imm) => {
            if shadow.reg_symbolic(a) {
                let ea = op_expr(arena, shadow, pre, a);
                let eb = arena.constant(imm as i64 as u64);
                shadow.flags = FlagTrack::Exact(FlagShadow {
                    lhs: ea,
                    rhs: eb,
                    is_sub: true,
                    replay: FlagReplay::Sub(ea, eb),
                });
            } else {
                shadow.flags = FlagTrack::Concrete;
            }
        }
        CmpMI(_, imm) => {
            let addr = pre.mem_addr.expect("mem operand");
            if shadow.mem_symbolic(addr, 8) {
                let ea = shadow.load64(arena, addr, pre.mem_concrete);
                let eb = arena.constant(imm as i64 as u64);
                shadow.flags = FlagTrack::Exact(FlagShadow {
                    lhs: ea,
                    rhs: eb,
                    is_sub: true,
                    replay: FlagReplay::Sub(ea, eb),
                });
            } else {
                shadow.flags = FlagTrack::Concrete;
            }
        }
        Test(a, bb) => {
            if pre.any_symbolic {
                let ea = op_expr(arena, shadow, pre, a);
                let eb = op_expr(arena, shadow, pre, bb);
                let and = arena.bin(BinKind::And, ea, eb);
                shadow.flags = FlagTrack::Exact(FlagShadow {
                    lhs: ea,
                    rhs: eb,
                    is_sub: false,
                    replay: FlagReplay::Logic(and),
                });
            } else {
                shadow.flags = FlagTrack::Concrete;
            }
        }
        TestI(a, imm) => {
            if shadow.reg_symbolic(a) {
                let ea = op_expr(arena, shadow, pre, a);
                let eb = arena.constant(imm as i64 as u64);
                let and = arena.bin(BinKind::And, ea, eb);
                shadow.flags = FlagTrack::Exact(FlagShadow {
                    lhs: ea,
                    rhs: eb,
                    is_sub: false,
                    replay: FlagReplay::Logic(and),
                });
            } else {
                shadow.flags = FlagTrack::Concrete;
            }
        }
        Cmov(cond, d, s) => {
            // Model as a select driven by the concrete outcome, but record
            // the implicit constraint like a branch; the constraint pins the
            // selected direction for any input the solver produces.
            let taken = cond.eval(emu.cpu.flags);
            consume_flags(arena, shadow, cond, taken, constraints);
            if taken {
                let e = shadow.regs[s.index()];
                shadow.set_reg(arena, d, e);
            }
        }
        Set(cond, d) => {
            let taken = cond.eval(emu.cpu.flags);
            if let Some(fs) = shadow.flags.symbolic_shadow(arena) {
                // The produced 0/1 value is expressible for the conditions
                // the workloads and the rewriter generate; the fallback
                // conditions pin the concrete outcome via the recorded
                // constraint, so the constant stays valid for any input
                // that satisfies the path prefix.
                let diff = if fs.is_sub {
                    arena.bin(BinKind::Sub, fs.lhs, fs.rhs)
                } else {
                    arena.bin(BinKind::And, fs.lhs, fs.rhs)
                };
                let zero = arena.constant(0);
                let one = arena.constant(1);
                let e = match cond {
                    Cond::E => arena.bin(BinKind::Eq, diff, zero),
                    Cond::Ne => {
                        let eq = arena.bin(BinKind::Eq, diff, zero);
                        arena.bin(BinKind::Xor, eq, one)
                    }
                    Cond::B => arena.bin(BinKind::Ult, fs.lhs, fs.rhs),
                    Cond::Ae => {
                        let ult = arena.bin(BinKind::Ult, fs.lhs, fs.rhs);
                        arena.bin(BinKind::Xor, ult, one)
                    }
                    Cond::A => arena.bin(BinKind::Ult, fs.rhs, fs.lhs),
                    Cond::Be => {
                        let ult = arena.bin(BinKind::Ult, fs.rhs, fs.lhs);
                        arena.bin(BinKind::Xor, ult, one)
                    }
                    _ => arena.constant(taken as u64),
                };
                consume_flags(arena, shadow, cond, taken, constraints);
                shadow.set_reg(arena, d, Some(e));
            } else {
                consume_flags(arena, shadow, cond, taken, constraints);
                shadow.set_reg(arena, d, None);
            }
        }
        Jcc(cond, _) => {
            let taken = cond.eval(emu.cpu.flags);
            consume_flags(arena, shadow, cond, taken, constraints);
        }
        XchgRR(a, bb) => {
            let ea = shadow.regs[a.index()];
            let eb = shadow.regs[bb.index()];
            shadow.set_reg(arena, a, eb);
            shadow.set_reg(arena, bb, ea);
        }
        XchgRM(r, _) => {
            let addr = pre.mem_addr.expect("mem operand");
            let er = shadow.regs[r.index()];
            let em = if shadow.mem_symbolic(addr, 8) {
                Some(shadow.load64(arena, addr, emu.reg(r)))
            } else {
                None
            };
            shadow.store64(arena, addr, er);
            shadow.set_reg(arena, r, em);
        }
        Call(_) => {
            // The return-address slot is concrete.
            let sp = emu.reg(Reg::Rsp);
            shadow.store64(arena, sp, None);
        }
        CallReg(r) => {
            if shadow.reg_symbolic(r) {
                let e = op_expr(arena, shadow, pre, r);
                let pin = pin_constraint(arena, e, emu.cpu.rip);
                constraints.push(pin);
            }
            let sp = emu.reg(Reg::Rsp);
            shadow.store64(arena, sp, None);
        }
        JmpReg(r) => {
            if shadow.reg_symbolic(r) {
                let e = op_expr(arena, shadow, pre, r);
                let pin = pin_constraint(arena, e, emu.cpu.rip);
                constraints.push(pin);
            }
        }
        JmpMem(_) => {
            let addr = pre.mem_addr.expect("mem operand");
            if shadow.mem_symbolic(addr, 8) {
                let target = emu.cpu.rip;
                let e = shadow.load64(arena, addr, target);
                let pin = pin_constraint(arena, e, target);
                constraints.push(pin);
            }
        }
        Ret => {
            let sp = pre.concrete_regs[Reg::Rsp.index()];
            if shadow.mem_symbolic(sp, 8) {
                let target = emu.cpu.rip;
                let e = shadow.load64(arena, sp, target);
                let pin = pin_constraint(arena, e, target);
                constraints.push(pin);
            }
        }
        Leave => {
            // rsp := rbp; rbp := [old rbp]. A symbolic rbp is pinned (it
            // becomes both the new stack pointer and a load address), and
            // the restored rbp is tracked through the load like any other.
            let bp = pre.concrete_regs[Reg::Rbp.index()];
            if shadow.reg_symbolic(Reg::Rbp) {
                let e = op_expr(arena, shadow, pre, Reg::Rbp);
                let pin = pin_constraint(arena, e, bp);
                constraints.push(pin);
            }
            shadow.set_reg(arena, Reg::Rsp, None);
            let e = if shadow.mem_symbolic(bp, 8) {
                Some(shadow.load64(arena, bp, emu.reg(Reg::Rbp)))
            } else {
                None
            };
            shadow.set_reg(arena, Reg::Rbp, e);
        }
        Jmp(_) | Nop | Hlt => {}
    }
}

/// The carry-in of an `adc`/`sbb` as a shadow expression: a concrete bit
/// when the flags are input-independent, the flag shadow's carry-out
/// expression when they are tracked, `None` (a hazard) when tainted. The
/// `neg; adc` flag-leak idiom of the chain branch encoding threads the
/// input through the carry, so modeling it keeps chain targets tracked.
fn carry_in_expr(arena: &mut ExprArena, shadow: &mut Shadow, pre: &PreState) -> Option<ExprId> {
    match shadow.flags {
        FlagTrack::Concrete => Some(arena.constant(pre.flags_before.cf as u64)),
        FlagTrack::Exact(fs) => {
            if fs.symbolic(arena) {
                Some(fs.carry_expr(arena))
            } else {
                Some(arena.constant(pre.flags_before.cf as u64))
            }
        }
        FlagTrack::Tainted => {
            shadow.set_hazard("tainted carry chain");
            None
        }
    }
}

/// Builds the result expression of an ALU op, including the carry term of
/// `adc`/`sbb` (from `carry`), so results match the emulator bit-exactly.
fn alu_result(
    arena: &mut ExprArena,
    op: AluOp,
    a: ExprId,
    b: ExprId,
    carry: Option<ExprId>,
) -> ExprId {
    let base = arena.bin(alu_kind(op), a, b);
    match (op, carry) {
        (AluOp::Adc, Some(c)) => arena.bin(BinKind::Add, base, c),
        (AluOp::Sbb, Some(c)) => arena.bin(BinKind::Sub, base, c),
        _ => base,
    }
}

/// A pin constraint: the expression must keep evaluating to the concrete
/// value observed this run (`cond E`, `taken`), which models the recorded
/// behaviour exactly. Pins are the lazy-concretization idiom of concolic
/// engines, recorded wherever an input-dependent value steers execution
/// rather than flowing through data: indirect control-transfer targets
/// (ROP chains branch exactly this way — a flag leak feeds the next-gadget
/// address and a `ret` dispatches it), input-dependent effective
/// addresses, and a symbolic stack pointer at its next implicit use.
/// Solving for a *flipped* pin is how the explorer walks chain branches.
fn pin_constraint(arena: &mut ExprArena, e: ExprId, value: u64) -> Constraint {
    let rhs = arena.constant(value);
    Constraint { lhs: e, rhs, flag_is_sub: true, cond: Cond::E, taken: true }
}

/// The effective-address expression of a memory operand, from the shadow
/// expressions of its base/index registers.
fn addr_expr(
    arena: &mut ExprArena,
    shadow: &Shadow,
    pre: &PreState,
    m: raindrop_machine::Mem,
) -> ExprId {
    let mut e = arena.constant(m.disp as i64 as u64);
    if let Some(b) = m.base {
        let eb = op_expr(arena, shadow, pre, b);
        e = arena.bin(BinKind::Add, e, eb);
    }
    if let Some(i) = m.index {
        let ei = op_expr(arena, shadow, pre, i);
        let scale = arena.constant(m.scale as u64);
        let scaled = arena.bin(BinKind::Mul, ei, scale);
        e = arena.bin(BinKind::Add, e, scaled);
    }
    e
}

/// Whether the instruction uses the stack pointer implicitly; a symbolic
/// `rsp` is pinned to its concrete value right before such an instruction.
fn uses_rsp(inst: &Inst) -> bool {
    matches!(
        *inst,
        Inst::Push(_)
            | Inst::PushI(_)
            | Inst::Pop(_)
            | Inst::Call(_)
            | Inst::CallReg(_)
            | Inst::Ret
    )
}

/// The condition a constraint-recording instruction consumes, if any.
fn recording_cond(inst: &Inst) -> Option<Cond> {
    match *inst {
        Inst::Jcc(c, _) | Inst::Cmov(c, _, _) | Inst::Set(c, _) => Some(c),
        _ => None,
    }
}

/// The constraint `inst` is about to record, if any — computed before the
/// step so a fork point can be captured at the first occurrence of each
/// distinct branch. Mirrors exactly what `propagate` will push after the
/// step; interning makes the returned `Constraint` directly comparable to
/// recorded ones.
fn pre_constraint(
    inst: &Inst,
    pre: &PreState,
    arena: &mut ExprArena,
    shadow: &mut Shadow,
    emu: &Emulator,
) -> Option<Constraint> {
    // Mirror propagate's push order: rsp pin, then address pin, then the
    // flag or control-transfer constraint.
    if uses_rsp(inst) && shadow.reg_symbolic(Reg::Rsp) {
        let e = op_expr(arena, shadow, pre, Reg::Rsp);
        return Some(pin_constraint(arena, e, pre.concrete_regs[Reg::Rsp.index()]));
    }
    if pre.addr_symbolic && !matches!(inst, Inst::Lea(..)) {
        let m = inst.mem_operand().expect("addr_symbolic implies a mem operand");
        let e = addr_expr(arena, shadow, pre, m);
        return Some(pin_constraint(arena, e, pre.mem_addr.expect("resolved")));
    }
    if let Some(cond) = recording_cond(inst) {
        let fs = shadow.flags.symbolic_shadow(arena)?;
        let taken = cond.eval(emu.cpu.flags);
        return Some(Constraint { lhs: fs.lhs, rhs: fs.rhs, flag_is_sub: fs.is_sub, cond, taken });
    }
    match *inst {
        Inst::Ret => {
            let sp = emu.reg(Reg::Rsp);
            if shadow.mem_symbolic(sp, 8) {
                let target = emu.mem.read_u64(sp);
                let e = shadow.load64(arena, sp, target);
                return Some(pin_constraint(arena, e, target));
            }
            None
        }
        Inst::JmpReg(r) | Inst::CallReg(r) => {
            let e = shadow.regs[r.index()]?;
            Some(pin_constraint(arena, e, emu.reg(r)))
        }
        Inst::JmpMem(_) => {
            let a = pre.mem_addr.expect("jmpmem has a mem operand");
            if shadow.mem_symbolic(a, 8) {
                let target = emu.mem.read_u64(a);
                let e = shadow.load64(arena, a, target);
                return Some(pin_constraint(arena, e, target));
            }
            None
        }
        _ => None,
    }
}

/// A fork point: the machine and shadow state captured immediately before a
/// symbolic branch executed. Restoring the snapshot and patching the
/// tracked state for a new input reproduces exactly the state a fresh run
/// with that input would have reached here.
struct ForkPoint {
    snapshot: Snapshot,
    shadow: Shadow,
}

/// The constraints of one explored path, shared (via `Rc`) by every
/// frontier entry forked off it. Constraints are their own exact keys, so
/// no parallel key vector is carried anymore.
struct RecordData {
    constraints: Vec<Constraint>,
}

/// One shadowed execution plus the fork points captured along it.
struct PathOutput {
    record: PathRecord,
    forks: HashMap<usize, Rc<ForkPoint>>,
    emulated: u64,
}

/// A frontier entry: the input to explore and, when a snapshot covers its
/// prefix, the fork point to resume from.
struct Pending {
    input: Vec<u64>,
    resume: Option<ResumePoint>,
}

/// Everything a frontier entry needs to resume behind a fork: the captured
/// fork point and the parent record (whose prefix up to `at` is the
/// resumed path's prefix by construction).
#[derive(Clone)]
struct ResumePoint {
    fork: Rc<ForkPoint>,
    parent: Rc<RecordData>,
    at: usize,
}

/// The shadow-execution engine: one warm emulator reused across all paths
/// of an attack (restored from a pristine post-load snapshot instead of
/// re-constructed, which keeps the predecoded instruction cache hot), one
/// hash-consed expression arena shared by every path's constraints, plus
/// the fork-point capture machinery.
struct Engine<'a> {
    image: &'a Image,
    faddr: u64,
    spec: InputSpec,
    emu: Emulator,
    base: Snapshot,
    capture: bool,
    arena: ExprArena,
    patch_memo: EvalMemo,
}

impl<'a> Engine<'a> {
    fn new(image: &'a Image, func: &str, spec: InputSpec, capture: bool) -> Engine<'a> {
        let emu = Emulator::new(image);
        let base = emu.snapshot();
        let faddr = image.function(func).expect("target exists").addr;
        Engine {
            image,
            faddr,
            spec,
            emu,
            base,
            capture,
            arena: ExprArena::new(),
            patch_memo: EvalMemo::default(),
        }
    }

    /// Runs one path: fresh from the entry point, or resumed from a fork
    /// point with all input-dependent state patched for `input`.
    fn run_path(
        &mut self,
        input: &[u64],
        budget: u64,
        resume: Option<&ResumePoint>,
    ) -> Result<PathOutput, EmuError> {
        let mut constraints: Vec<Constraint>;
        let mut seen: HashSet<Constraint>;
        let mut shadow;
        let start_instructions;

        match resume {
            Some(r) => {
                self.emu.restore(&r.fork.snapshot);
                start_instructions = r.fork.snapshot.stats().instructions;
                shadow = r.fork.shadow.clone();
                patch_for_input(&mut self.emu, &self.arena, &shadow, input, &mut self.patch_memo);
                constraints = r.parent.constraints[..r.at].to_vec();
                seen = constraints.iter().copied().collect();
            }
            None => {
                self.emu.restore(&self.base);
                start_instructions = 0;
                shadow = Shadow::new();
                constraints = Vec::new();
                seen = HashSet::new();

                // Seed the concrete input and its shadow.
                let args: Vec<u64> = match &self.spec {
                    InputSpec::RegisterArg { .. } => {
                        let v = input[0] & self.spec.var_mask();
                        let x = self.arena.input(0);
                        shadow.set_reg(&mut self.arena, Reg::Rdi, Some(x));
                        vec![v]
                    }
                    InputSpec::MemoryBuffer { addr, len, args } => {
                        let concrete: Vec<u8> =
                            (0..*len).map(|i| input.get(i).copied().unwrap_or(0) as u8).collect();
                        self.emu.mem.write_bytes(*addr, &concrete);
                        for i in 0..*len {
                            let x = self.arena.input(i);
                            shadow.bytes.insert(addr + i as u64, x);
                        }
                        args.clone()
                    }
                };

                // Mirror Emulator::call's setup so stepping can be
                // interleaved with the shadow propagation.
                self.emu.cpu.set_reg(Reg::Rsp, raindrop_machine::STACK_TOP);
                for (r, v) in Reg::ARGS.iter().zip(&args) {
                    self.emu.cpu.set_reg(*r, *v);
                }
                let sp = self.emu.cpu.reg(Reg::Rsp) - 8;
                self.emu.cpu.set_reg(Reg::Rsp, sp);
                self.emu.mem.write_u64(sp, raindrop_machine::RETURN_SENTINEL);
                self.emu.cpu.rip = self.faddr;
            }
        }
        self.emu.set_budget(budget);

        let mut forks: HashMap<usize, Rc<ForkPoint>> = HashMap::new();
        // First-hazard accounting, checked at the post-instruction
        // checkpoint so it is identical in both explore modes (fork-mode
        // pre-constraint probing can set the flag a moment earlier within
        // the same instruction, but `propagate` raises the same cause
        // before the checkpoint; an instruction that exits the run never
        // reaches `propagate`, so its probing is excluded deliberately).
        let mut hazard_cause: Option<&'static str> = None;
        let mut branches_pre_hazard: Option<usize> = None;
        let mut keyed = constraints.len();
        let return_value;
        loop {
            // Peek at the instruction before executing it so operand
            // expressions can be captured from the pre-state; the peek hits
            // the emulator's predecoded cache, which the step() right after
            // reuses.
            let decoded = self.emu.peek_inst().map(|(i, _)| i)?;
            let pre = PreState::capture(&self.emu, &shadow, &decoded);

            // Capture a fork point before the first occurrence of each
            // distinct symbolic branch (later occurrences are pinned by the
            // prefix, so their flips are unsatisfiable and never resumed).
            if self.capture && !shadow.hazard && forks.len() < MAX_FORK_POINTS {
                if let Some(c) =
                    pre_constraint(&decoded, &pre, &mut self.arena, &mut shadow, &self.emu)
                {
                    if !shadow.hazard && !seen.contains(&c) {
                        forks.insert(
                            constraints.len(),
                            Rc::new(ForkPoint {
                                snapshot: self.emu.snapshot(),
                                shadow: shadow.clone(),
                            }),
                        );
                    }
                }
            }
            match self.emu.step()? {
                Some(raindrop_machine::RunExit::Returned(v)) => {
                    return_value = v;
                    break;
                }
                Some(raindrop_machine::RunExit::Halted) => {
                    return_value = self.emu.reg(Reg::Rax);
                    break;
                }
                None => {}
            }
            propagate(&decoded, &pre, &self.emu, &mut self.arena, &mut shadow, &mut constraints);
            while keyed < constraints.len() {
                seen.insert(constraints[keyed]);
                keyed += 1;
            }
            if hazard_cause.is_none() && shadow.hazard {
                hazard_cause = shadow.hazard_cause;
                branches_pre_hazard = Some(seen.len());
            }
            if self.emu.cpu.rip == raindrop_machine::RETURN_SENTINEL {
                return_value = self.emu.reg(Reg::Rax);
                break;
            }
        }
        let branches_pre_hazard = branches_pre_hazard.unwrap_or(seen.len());

        // Probe coverage from the concrete memory.
        let mut probes_hit = BTreeSet::new();
        if let Ok(probe_base) = self.image.symbol(raindrop_synth::PROBE_ARRAY) {
            for i in 0..raindrop_synth::minic::MAX_PROBES as u32 {
                if self.emu.mem.read_u64(probe_base + 8 * i as u64) != 0 {
                    probes_hit.insert(i);
                }
            }
        }

        let instructions = self.emu.stats().instructions;
        if std::env::var_os("RAINDROP_DSE_DEBUG").is_some() {
            eprintln!(
                "[dse-debug] path constraints={} distinct={} forks={} hazard={:?} pre_hazard={} arena={} resumed={}",
                constraints.len(),
                seen.len(),
                forks.len(),
                hazard_cause,
                branches_pre_hazard,
                self.arena.len(),
                resume.is_some()
            );
        }
        Ok(PathOutput {
            record: PathRecord {
                return_value,
                constraints,
                instructions,
                probes_hit,
                hazard_cause,
                branches_pre_hazard,
            },
            forks,
            emulated: instructions - start_instructions,
        })
    }
}

/// Work limits of one DSE attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DseBudget {
    /// Total emulated instructions across all explored paths.
    pub total_instructions: u64,
    /// Per-path instruction budget.
    pub per_path_instructions: u64,
    /// Maximum number of explored paths.
    pub max_paths: usize,
    /// Wall-clock limit.
    pub max_wall: Duration,
    /// Maximum number of solver invocations (cache hits are free).
    pub max_solver_calls: u64,
    /// Maximum frontier size; candidates solved past it are dropped.
    pub max_frontier: usize,
}

impl Default for DseBudget {
    fn default() -> Self {
        DseBudget {
            total_instructions: 40_000_000,
            per_path_instructions: 4_000_000,
            max_paths: 400,
            max_wall: Duration::from_secs(30),
            max_solver_calls: 50_000,
            max_frontier: 50_000,
        }
    }
}

/// Attack goal (§III of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Goal {
    /// G1: find an input making the function return the given value.
    Secret {
        /// The return value that signals success (1 for the point test).
        want: u64,
    },
    /// G2: cover all reachable coverage probes of the original function.
    Coverage {
        /// Number of probes that exist.
        total_probes: u32,
    },
}

/// Which budget dimension ended an unsuccessful attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DseExhaustion {
    /// The wall-clock limit ran out.
    Wall,
    /// The total instruction budget ran out.
    Instructions,
    /// The explored-path cap was reached.
    Paths,
    /// The solver-invocation cap was reached.
    SolverCalls,
    /// Solved candidates were dropped because the frontier was full.
    Frontier,
    /// The frontier drained: no solvable constraint flip was left.
    SearchSpace,
}

impl std::fmt::Display for DseExhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DseExhaustion::Wall => "wall clock",
            DseExhaustion::Instructions => "instruction budget",
            DseExhaustion::Paths => "path cap",
            DseExhaustion::SolverCalls => "solver-call cap",
            DseExhaustion::Frontier => "frontier cap",
            DseExhaustion::SearchSpace => "search space",
        };
        f.write_str(s)
    }
}

/// Outcome of a DSE attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseOutcome {
    /// Whether the goal was reached within the budget.
    pub success: bool,
    /// The input that reached the goal (secret finding).
    pub witness: Option<Vec<u64>>,
    /// Paths (re-)executed.
    pub paths: usize,
    /// Total emulated instructions, counting snapshot-skipped prefixes (the
    /// budget currency, identical across explore modes).
    pub instructions: u64,
    /// Instructions actually stepped by the emulator; lower than
    /// `instructions` when fork-point restores skipped prefixes.
    pub emulated_instructions: u64,
    /// Paths resumed from a fork-point snapshot instead of re-run.
    pub resumed_paths: usize,
    /// Wall-clock time spent.
    pub wall: Duration,
    /// Probes covered (coverage goal).
    pub probes_covered: usize,
    /// Constraints collected on the longest path.
    pub max_constraints: usize,
    /// Solver invocations performed.
    pub solver_calls: u64,
    /// Solver invocations avoided by the normalized constraint cache.
    pub solve_cache_hits: u64,
    /// Paths whose shadow tracking hit a hazard, counted per first cause
    /// and sorted by cause name. Expression-size concretizations capping
    /// symbolic depth show up here instead of folding silently into
    /// "defeated".
    #[serde(default)]
    pub hazard_causes: Vec<(String, u64)>,
    /// The largest number of distinct branch constraints any path recorded
    /// before its first hazard (its whole distinct count when hazard-free):
    /// the depth to which the explorer forked exactly.
    #[serde(default)]
    pub max_branches_pre_hazard: usize,
    /// The budget dimension that ended an unsuccessful attack.
    pub exhausted: Option<DseExhaustion>,
}

/// How the explorer reaches the state behind a flipped branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExploreMode {
    /// Restore the fork-point snapshot and resume (production mode).
    ForkPoint,
    /// Re-execute every path from the entry point (the reference oracle the
    /// differential suite pins [`ExploreMode::ForkPoint`] against).
    Rerun,
}

/// Execution log of one attack, for the differential equivalence suite:
/// both explore modes must produce identical sequences.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DseAudit {
    /// Inputs explored, in schedule order.
    pub explored: Vec<Vec<u64>>,
    /// Inputs pushed to the frontier, in discovery order.
    pub pushed: Vec<Vec<u64>>,
}

/// The concolic attacker.
pub struct DseAttack<'a> {
    image: &'a Image,
    func: &'a str,
    spec: InputSpec,
    budget: DseBudget,
    mode: ExploreMode,
    /// The feasibility backend behind the generational search.
    solver: Box<dyn Solver>,
    /// Memoized solver queries keyed by the normalized constraint set: a
    /// duplicate-safe [`SetDigest`] of the distinct prefix-constraint
    /// structural hashes, plus the negated constraint's hash. Equivalent
    /// frontier entries across paths (shared prefixes of resumed runs in
    /// particular) are solved exactly once; the hashes are
    /// arena-independent, so the cache stays valid across runs of one
    /// attack instance.
    solve_cache: HashMap<(u128, u128, u128), Option<Vec<u64>>>,
    solver_calls: u64,
    cache_hits: u64,
}

impl<'a> DseAttack<'a> {
    /// Creates an attack instance (fork-point explore mode, built-in
    /// [`SearchSolver`] backend).
    pub fn new(image: &'a Image, func: &'a str, spec: InputSpec, budget: DseBudget) -> Self {
        DseAttack {
            image,
            func,
            spec,
            budget,
            mode: ExploreMode::ForkPoint,
            solver: Box::new(SearchSolver::new()),
            solve_cache: HashMap::new(),
            solver_calls: 0,
            cache_hits: 0,
        }
    }

    /// Selects the explore mode (builder style).
    pub fn with_mode(mut self, mode: ExploreMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the feasibility backend (builder style). The default is the
    /// built-in [`SearchSolver`]; any [`Solver`] implementation slots in.
    pub fn with_solver(mut self, solver: Box<dyn Solver>) -> Self {
        self.solver = solver;
        self
    }

    /// Runs the attack.
    pub fn run(&mut self, goal: Goal) -> DseOutcome {
        self.run_audited(goal).0
    }

    /// Runs the attack and returns the exploration schedule alongside the
    /// outcome. The differential suite uses the audit to pin fork-point and
    /// re-run exploration bit-identical.
    pub fn run_audited(&mut self, goal: Goal) -> (DseOutcome, DseAudit) {
        DseExplorer::start(self, goal).advance(None).expect("unbounded advance runs to completion")
    }
}

/// One persisted solve-cache entry: the arena-independent structural
/// digest key `(set, negated, goal)` and the cached solver answer.
pub type SolveCacheEntry = ((u128, u128, u128), Option<Vec<u64>>);

/// The serialized frontier of a paused attack: everything a *fresh process*
/// needs to continue exploration with identical results. Fork-point
/// [`Snapshot`] state is deliberately not serialized — restored frontier
/// entries re-run their path from the entry point, which the
/// `FRONTIER_RESUME_CAP` fallback contract already pins result-identical
/// (only [`DseOutcome::resumed_paths`], `emulated_instructions` and `wall`
/// differ after a resume; every verdict-bearing field matches).
///
/// [`Snapshot`]: raindrop_machine::Snapshot
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseFrontier {
    /// Pending inputs in schedule order (resume points dropped).
    pub queue: Vec<Vec<u64>>,
    /// Every input ever scheduled — the frontier dedup set, sorted.
    pub seen: Vec<Vec<u64>>,
    /// The normalized solver cache, sorted by key. Keys are
    /// arena-independent structural digests, so they survive the arena
    /// rebuild on resume.
    pub solve_cache: Vec<SolveCacheEntry>,
    /// The exploration schedule so far.
    pub audit: DseAudit,
    /// Paths explored so far.
    pub paths: usize,
    /// Paths resumed from a fork point so far.
    pub resumed_paths: usize,
    /// Accounted instructions so far (the budget currency).
    pub total_instructions: u64,
    /// Instructions actually stepped so far.
    pub emulated_instructions: u64,
    /// Coverage probes hit so far.
    pub covered: Vec<u32>,
    /// Longest constraint sequence of any explored path.
    pub max_constraints: usize,
    /// Per-cause hazard counts, sorted by cause.
    pub hazard_causes: Vec<(String, u64)>,
    /// Deepest exact fork depth seen (see
    /// [`DseOutcome::max_branches_pre_hazard`]).
    pub max_branches_pre_hazard: usize,
    /// Solver invocations so far.
    pub solver_calls: u64,
    /// Solver invocations avoided by the cache so far.
    pub solve_cache_hits: u64,
    /// Sticky flag: the wall clock expired inside a flip sweep.
    pub wall_hit: bool,
    /// Sticky flag: the solver-call cap was hit.
    pub solver_capped: bool,
    /// Sticky flag: solved candidates were dropped by the frontier cap.
    pub frontier_dropped: bool,
    /// RNG draws the solver has consumed ([`Solver::rng_draws`]): a fresh
    /// solver fast-forwards here so the random stream continues exactly.
    pub rng_draws: u64,
    /// Wall time accumulated before this checkpoint.
    pub wall: Duration,
}

/// An in-flight exploration that can pause at path boundaries and
/// serialize its [`DseFrontier`] for checkpointing.
///
/// [`DseAttack::run_audited`] is exactly `DseExplorer::start` followed by
/// one unbounded [`advance`](DseExplorer::advance); campaign jobs instead
/// advance in bounded slices, checkpoint the frontier between slices, and
/// — after a crash — [`resume`](DseExplorer::resume) from the last
/// persisted frontier with identical verdicts.
pub struct DseExplorer<'a, 'b> {
    attack: &'b mut DseAttack<'a>,
    goal: Goal,
    engine: Engine<'a>,
    domain: VarDomain,
    audit: DseAudit,
    queue: VecDeque<Pending>,
    seen: BTreeSet<Vec<u64>>,
    total_instructions: u64,
    emulated_instructions: u64,
    paths: usize,
    resumed_paths: usize,
    covered: BTreeSet<u32>,
    max_constraints: usize,
    hazards: BTreeMap<String, u64>,
    max_branches_pre_hazard: usize,
    wall_hit: bool,
    solver_capped: bool,
    frontier_dropped: bool,
    /// Wall time accumulated by earlier slices/processes (before `start`).
    wall_base: Duration,
    start: Instant,
}

impl<'a, 'b> DseExplorer<'a, 'b> {
    /// Starts a fresh exploration of `attack` toward `goal`.
    ///
    /// Per-run statistics reset here: an attack instance can be reused (the
    /// solve cache carries over — its keys are arena-independent structural
    /// hashes), but counters, budget enforcement and the solver's id-keyed
    /// state start fresh each run.
    pub fn start(attack: &'b mut DseAttack<'a>, goal: Goal) -> DseExplorer<'a, 'b> {
        attack.solver_calls = 0;
        attack.cache_hits = 0;
        attack.solver.begin_run();
        let vars = attack.spec.vars();
        let mask = attack.spec.var_mask();
        let domain = attack.spec.domain();
        let capture = attack.mode == ExploreMode::ForkPoint;
        let engine = Engine::new(attack.image, attack.func, attack.spec.clone(), capture);
        let mut queue: VecDeque<Pending> = VecDeque::new();
        queue.push_back(Pending { input: vec![0u64; vars], resume: None });
        queue.push_back(Pending { input: vec![mask; vars], resume: None });
        let seen: BTreeSet<Vec<u64>> = queue.iter().map(|p| p.input.clone()).collect();
        DseExplorer {
            attack,
            goal,
            engine,
            domain,
            audit: DseAudit::default(),
            queue,
            seen,
            total_instructions: 0,
            emulated_instructions: 0,
            paths: 0,
            resumed_paths: 0,
            covered: BTreeSet::new(),
            max_constraints: 0,
            hazards: BTreeMap::new(),
            max_branches_pre_hazard: 0,
            wall_hit: false,
            solver_capped: false,
            frontier_dropped: false,
            wall_base: Duration::ZERO,
            start: Instant::now(),
        }
    }

    /// Rebuilds a paused exploration from its serialized frontier. The
    /// expression arena and emulator are reconstructed from scratch (their
    /// contents are a deterministic function of the explored inputs);
    /// restored frontier entries carry no fork-point snapshots, so their
    /// first execution is a full re-run — same results, more stepped
    /// instructions.
    pub fn resume(
        attack: &'b mut DseAttack<'a>,
        goal: Goal,
        frontier: &DseFrontier,
    ) -> DseExplorer<'a, 'b> {
        attack.solver_calls = frontier.solver_calls;
        attack.cache_hits = frontier.solve_cache_hits;
        attack.solver.begin_run();
        attack.solver.fast_forward(frontier.rng_draws);
        attack.solve_cache = frontier.solve_cache.iter().cloned().collect();
        let domain = attack.spec.domain();
        let capture = attack.mode == ExploreMode::ForkPoint;
        let engine = Engine::new(attack.image, attack.func, attack.spec.clone(), capture);
        DseExplorer {
            goal,
            engine,
            domain,
            audit: frontier.audit.clone(),
            queue: frontier
                .queue
                .iter()
                .map(|input| Pending { input: input.clone(), resume: None })
                .collect(),
            seen: frontier.seen.iter().cloned().collect(),
            total_instructions: frontier.total_instructions,
            emulated_instructions: frontier.emulated_instructions,
            paths: frontier.paths,
            resumed_paths: frontier.resumed_paths,
            covered: frontier.covered.iter().copied().collect(),
            max_constraints: frontier.max_constraints,
            hazards: frontier.hazard_causes.iter().cloned().collect(),
            max_branches_pre_hazard: frontier.max_branches_pre_hazard,
            wall_hit: frontier.wall_hit,
            solver_capped: frontier.solver_capped,
            frontier_dropped: frontier.frontier_dropped,
            wall_base: frontier.wall,
            start: Instant::now(),
            attack,
        }
    }

    /// Frontier entries currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total wall time of this exploration, including earlier slices.
    fn elapsed(&self) -> Duration {
        self.wall_base + self.start.elapsed()
    }

    /// Serializes the current frontier. Only meaningful between
    /// [`advance`](DseExplorer::advance) slices.
    pub fn frontier(&self) -> DseFrontier {
        let mut solve_cache: Vec<SolveCacheEntry> =
            self.attack.solve_cache.iter().map(|(k, v)| (*k, v.clone())).collect();
        solve_cache.sort();
        DseFrontier {
            queue: self.queue.iter().map(|p| p.input.clone()).collect(),
            seen: self.seen.iter().cloned().collect(),
            solve_cache,
            audit: self.audit.clone(),
            paths: self.paths,
            resumed_paths: self.resumed_paths,
            total_instructions: self.total_instructions,
            emulated_instructions: self.emulated_instructions,
            covered: self.covered.iter().copied().collect(),
            max_constraints: self.max_constraints,
            hazard_causes: self.hazards.iter().map(|(k, n)| (k.clone(), *n)).collect(),
            max_branches_pre_hazard: self.max_branches_pre_hazard,
            solver_calls: self.attack.solver_calls,
            solve_cache_hits: self.attack.cache_hits,
            wall_hit: self.wall_hit,
            solver_capped: self.solver_capped,
            frontier_dropped: self.frontier_dropped,
            rng_draws: self.attack.solver.rng_draws(),
            wall: self.elapsed(),
        }
    }

    /// Explores up to `slice` further frontier entries (`None` =
    /// unbounded). Returns the finished attack's outcome and audit, or
    /// `None` when the slice cap paused the exploration with work left —
    /// checkpoint via [`frontier`](DseExplorer::frontier) and call again.
    pub fn advance(&mut self, slice: Option<usize>) -> Option<(DseOutcome, DseAudit)> {
        let mut ran = 0usize;
        let mut exhausted = None;
        loop {
            if slice.is_some_and(|cap| ran >= cap) && !self.queue.is_empty() {
                return None;
            }
            let Some(pending) = self.queue.pop_front() else { break };
            ran += 1;
            if self.elapsed() > self.attack.budget.max_wall {
                exhausted = Some(DseExhaustion::Wall);
                break;
            }
            if self.total_instructions > self.attack.budget.total_instructions {
                exhausted = Some(DseExhaustion::Instructions);
                break;
            }
            if self.paths > self.attack.budget.max_paths {
                exhausted = Some(DseExhaustion::Paths);
                break;
            }
            let path_budget = self.attack.budget.per_path_instructions.min(
                self.attack
                    .budget
                    .total_instructions
                    .saturating_sub(self.total_instructions)
                    .max(1),
            );
            let out =
                match self.engine.run_path(&pending.input, path_budget, pending.resume.as_ref()) {
                    Ok(o) => o,
                    Err(_) => continue,
                };
            if pending.resume.is_some() {
                self.resumed_paths += 1;
            }
            self.paths += 1;
            self.total_instructions += out.record.instructions;
            self.emulated_instructions += out.emulated;
            self.covered.extend(out.record.probes_hit.iter().copied());
            self.max_constraints = self.max_constraints.max(out.record.constraints.len());
            if let Some(cause) = out.record.hazard_cause {
                *self.hazards.entry(cause.to_string()).or_insert(0) += 1;
            }
            self.max_branches_pre_hazard =
                self.max_branches_pre_hazard.max(out.record.branches_pre_hazard);
            self.audit.explored.push(pending.input.clone());

            let done = match self.goal {
                Goal::Secret { want } => out.record.return_value == want,
                Goal::Coverage { total_probes } => self.covered.len() as u32 >= total_probes,
            };
            if done {
                let outcome = self.outcome(true, Some(pending.input), None);
                return Some((outcome, self.audit.clone()));
            }

            // Generational search: negate each constraint in turn (deepest
            // first so new behaviour near the end of the path is reached
            // quickly, which matters for the final secret check).
            let data = Rc::new(RecordData { constraints: out.record.constraints });
            let n = data.constraints.len();
            let mut first_at: HashMap<Constraint, usize> = HashMap::with_capacity(n);
            for (i, c) in data.constraints.iter().enumerate() {
                first_at.entry(*c).or_insert(i);
            }
            // Per-constraint structural hashes and the running normalized
            // set digest of each prefix (distinct constraints only): the
            // solver-cache key of flip `i` is O(1) to build — and, unlike
            // a bare XOR, cannot collapse when a constraint repeats.
            let hashes: Vec<u128> =
                data.constraints.iter().map(|c| c.structural_hash(&self.engine.arena)).collect();
            let mut prefix = vec![SetDigest::empty(); n + 1];
            for i in 0..n {
                prefix[i + 1] = if first_at[&data.constraints[i]] == i {
                    prefix[i].with(hashes[i])
                } else {
                    prefix[i]
                };
            }
            for i in (0..n).rev() {
                if self.elapsed() > self.attack.budget.max_wall {
                    self.wall_hit = true;
                    break;
                }
                // A repeated constraint is pinned the recorded way by its
                // first occurrence in the prefix: the flip is unsatisfiable,
                // skip it without consulting the solver.
                if first_at[&data.constraints[i]] != i {
                    continue;
                }
                // Normalized query: the set of distinct prefix constraints
                // plus the negated one. Equivalent frontier entries across
                // paths collapse onto one cache slot.
                let (dig_sum, dig_xor) = prefix[i].key();
                let cache_key = (dig_sum, dig_xor, hashes[i]);
                let cand = match self.attack.solve_cache.get(&cache_key) {
                    Some(v) => {
                        self.attack.cache_hits += 1;
                        v.clone()
                    }
                    None => {
                        if self.attack.solver_calls >= self.attack.budget.max_solver_calls {
                            self.solver_capped = true;
                            break;
                        }
                        self.attack.solver_calls += 1;
                        let mut query = data.constraints[..=i].to_vec();
                        query[i].taken = !query[i].taken;
                        let v = self.attack.solver.feasible(
                            &mut self.engine.arena,
                            &query,
                            &self.domain,
                            &pending.input,
                        );
                        self.attack.solve_cache.insert(cache_key, v.clone());
                        v
                    }
                };
                if let Some(cand) = cand {
                    if self.seen.insert(cand.clone()) {
                        if self.queue.len() >= self.attack.budget.max_frontier {
                            self.frontier_dropped = true;
                        } else {
                            self.audit.pushed.push(cand.clone());
                            let resume = if self.queue.len() < FRONTIER_RESUME_CAP {
                                out.forks.get(&i).map(|f| ResumePoint {
                                    fork: f.clone(),
                                    parent: data.clone(),
                                    at: i,
                                })
                            } else {
                                None
                            };
                            self.queue.push_back(Pending { input: cand, resume });
                        }
                    }
                }
            }
        }

        let exhausted = exhausted.or(if self.wall_hit {
            Some(DseExhaustion::Wall)
        } else if self.solver_capped {
            Some(DseExhaustion::SolverCalls)
        } else if self.frontier_dropped {
            Some(DseExhaustion::Frontier)
        } else {
            Some(DseExhaustion::SearchSpace)
        });
        Some((self.outcome(false, None, exhausted), self.audit.clone()))
    }

    fn outcome(
        &self,
        success: bool,
        witness: Option<Vec<u64>>,
        exhausted: Option<DseExhaustion>,
    ) -> DseOutcome {
        DseOutcome {
            success,
            witness,
            paths: self.paths,
            instructions: self.total_instructions,
            emulated_instructions: self.emulated_instructions,
            resumed_paths: self.resumed_paths,
            wall: self.elapsed(),
            probes_covered: self.covered.len(),
            max_constraints: self.max_constraints,
            solver_calls: self.attack.solver_calls,
            solve_cache_hits: self.attack.cache_hits,
            hazard_causes: self.hazards.iter().map(|(k, n)| (k.clone(), *n)).collect(),
            max_branches_pre_hazard: self.max_branches_pre_hazard,
            exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_synth::{codegen, randomfuns, Goal as RfGoal};

    fn small_rf(goal: RfGoal, input_size: usize) -> raindrop_synth::RandomFun {
        randomfuns::generate(raindrop_synth::RandomFunConfig {
            structure: randomfuns::Ctrl::if_(randomfuns::Ctrl::bb(4), randomfuns::Ctrl::bb(4)),
            structure_name: "(if (bb 4) (bb 4))".into(),
            input_size,
            seed: 5,
            goal,
            loop_size: 3,
        })
    }

    #[test]
    fn shadow_run_collects_constraints_and_return_value() {
        let rf = small_rf(RfGoal::SecretFinding, 4);
        let image = codegen::compile(&rf.program).unwrap();
        let spec = InputSpec::RegisterArg { size_bytes: 4 };
        let run = shadow_run(&image, &rf.name, &spec, &[0], 10_000_000).unwrap();
        let rec = &run.record;
        assert_eq!(rec.return_value, 0, "input 0 is (almost surely) not the secret");
        assert!(!rec.constraints.is_empty(), "branches on the input were recorded");
        assert!(rec.instructions > 0);
        // Constraints must be consistent with the concrete run.
        let mut memo = EvalMemo::default();
        for c in &rec.constraints {
            assert!(c.satisfied_as_recorded(&run.arena, &[0], &mut memo));
        }
    }

    #[test]
    fn hazard_free_paths_report_their_full_branch_depth() {
        let rf = small_rf(RfGoal::SecretFinding, 4);
        let image = codegen::compile(&rf.program).unwrap();
        let spec = InputSpec::RegisterArg { size_bytes: 4 };
        let run = shadow_run(&image, &rf.name, &spec, &[0], 10_000_000).unwrap();
        assert_eq!(run.record.hazard_cause, None, "native code stays fully symbolic");
        let distinct: HashSet<Constraint> = run.record.constraints.iter().copied().collect();
        assert_eq!(run.record.branches_pre_hazard, distinct.len());
    }

    #[test]
    fn dse_cracks_an_unprotected_point_test() {
        for size in [1usize, 2, 4, 8] {
            let rf = small_rf(RfGoal::SecretFinding, size);
            let image = codegen::compile(&rf.program).unwrap();
            let mut attack = DseAttack::new(
                &image,
                &rf.name,
                InputSpec::RegisterArg { size_bytes: size },
                DseBudget::default(),
            );
            let outcome = attack.run(Goal::Secret { want: 1 });
            assert!(outcome.success, "native {size}-byte function should be cracked");
            let witness = outcome.witness.unwrap()[0] & raindrop_synth::input_mask(size);
            // The witness must actually pass the check (it may differ from
            // the generator's secret only if a hash collision exists).
            let mut emu = Emulator::new(&image);
            assert_eq!(emu.call_named(&image, &rf.name, &[witness]).unwrap(), 1);
        }
    }

    #[test]
    fn dse_reaches_full_probe_coverage_on_native_code() {
        let rf = small_rf(RfGoal::CodeCoverage, 4);
        let image = codegen::compile(&rf.program).unwrap();
        let mut attack = DseAttack::new(
            &image,
            &rf.name,
            InputSpec::RegisterArg { size_bytes: 4 },
            DseBudget::default(),
        );
        let outcome = attack.run(Goal::Coverage { total_probes: rf.probe_count });
        assert!(outcome.success, "covered {}/{}", outcome.probes_covered, rf.probe_count);
    }

    #[test]
    fn budget_exhaustion_reports_failure_and_the_dimension() {
        let rf = small_rf(RfGoal::SecretFinding, 8);
        let image = codegen::compile(&rf.program).unwrap();
        let tiny = DseBudget {
            total_instructions: 200,
            per_path_instructions: 50,
            max_paths: 2,
            max_wall: Duration::from_millis(200),
            ..DseBudget::default()
        };
        let mut attack =
            DseAttack::new(&image, &rf.name, InputSpec::RegisterArg { size_bytes: 8 }, tiny);
        let outcome = attack.run(Goal::Secret { want: 1 });
        assert!(!outcome.success);
        assert!(outcome.paths <= 3);
        assert!(outcome.exhausted.is_some(), "failure names the exhausted dimension");
    }

    #[test]
    fn fork_and_rerun_modes_explore_identically() {
        let rf = small_rf(RfGoal::SecretFinding, 2);
        let image = codegen::compile(&rf.program).unwrap();
        let budget = DseBudget { max_wall: Duration::from_secs(600), ..DseBudget::default() };
        let spec = InputSpec::RegisterArg { size_bytes: 2 };
        let mut fork = DseAttack::new(&image, &rf.name, spec.clone(), budget);
        let (fork_out, fork_audit) = fork.run_audited(Goal::Secret { want: 1 });
        let mut rerun =
            DseAttack::new(&image, &rf.name, spec, budget).with_mode(ExploreMode::Rerun);
        let (rerun_out, rerun_audit) = rerun.run_audited(Goal::Secret { want: 1 });
        assert_eq!(fork_audit, rerun_audit, "identical exploration schedules");
        assert_eq!(fork_out.success, rerun_out.success);
        assert_eq!(fork_out.witness, rerun_out.witness);
        assert_eq!(fork_out.paths, rerun_out.paths);
        assert_eq!(fork_out.instructions, rerun_out.instructions);
        assert_eq!(fork_out.hazard_causes, rerun_out.hazard_causes);
        assert_eq!(fork_out.max_branches_pre_hazard, rerun_out.max_branches_pre_hazard);
        assert_eq!(rerun_out.resumed_paths, 0);
        assert_eq!(rerun_out.emulated_instructions, rerun_out.instructions);
        assert!(
            fork_out.emulated_instructions <= fork_out.instructions,
            "snapshot-covered prefixes are never re-executed"
        );
    }

    #[test]
    fn attack_instances_reset_per_run_statistics() {
        let rf = small_rf(RfGoal::SecretFinding, 1);
        let image = codegen::compile(&rf.program).unwrap();
        let mut attack = DseAttack::new(
            &image,
            &rf.name,
            InputSpec::RegisterArg { size_bytes: 1 },
            DseBudget { max_solver_calls: 50, ..DseBudget::default() },
        );
        let first = attack.run(Goal::Secret { want: 1 });
        let second = attack.run(Goal::Secret { want: 1 });
        assert_eq!(first.success, second.success, "reuse does not change the outcome");
        assert!(
            second.solver_calls <= first.solver_calls,
            "counters restart (and the carried solve cache can only reduce solving)"
        );
    }

    #[test]
    fn constraint_keys_are_exact_structural_fingerprints() {
        let mut arena = ExprArena::new();
        let x3 = {
            let x = arena.input(0);
            let c = arena.constant(3);
            arena.bin(BinKind::Add, x, c)
        };
        let zero = arena.zero();
        let a = Constraint { lhs: x3, rhs: zero, flag_is_sub: true, cond: Cond::E, taken: true };
        let b = Constraint { lhs: x3, rhs: zero, flag_is_sub: true, cond: Cond::E, taken: true };
        assert_eq!(a.structural_hash(&arena), b.structural_hash(&arena), "structural equality");
        let flipped = Constraint { taken: false, ..b };
        assert_ne!(
            a.structural_hash(&arena),
            flipped.structural_hash(&arena),
            "direction is part of the key"
        );
        let other_cond = Constraint { cond: Cond::Ne, ..b };
        assert_ne!(
            a.structural_hash(&arena),
            other_cond.structural_hash(&arena),
            "condition is part of the key"
        );
        // And the hash does not depend on the arena the ids live in.
        let mut other = ExprArena::new();
        let _pad = other.constant(99);
        let y3 = {
            let x = other.input(0);
            let c = other.constant(3);
            other.bin(BinKind::Add, x, c)
        };
        let z = other.zero();
        let c2 = Constraint { lhs: y3, rhs: z, flag_is_sub: true, cond: Cond::E, taken: true };
        assert_eq!(a.structural_hash(&arena), c2.structural_hash(&other));
    }
}
