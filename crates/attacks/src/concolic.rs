//! Concolic (dynamic symbolic) execution — the reproduction's S2E stand-in.
//!
//! A shadow executor runs the target function concretely on the RM64
//! emulator while propagating [`SymExpr`]s for registers and memory bytes
//! that depend on the attacker-controlled input. Every conditional branch
//! whose flags depend on the input yields a path constraint; the DSE driver
//! performs generational search — negate one constraint at a time, ask the
//! solver for an input, re-execute — until the goal is reached or the work
//! budget runs out. The cost unit is emulated instructions, so the relative
//! slowdowns caused by ROP chains, P1/P3 and VM interpreters are measured on
//! the same scale the paper uses wall-clock time for.

use crate::sym::{invert, BinKind, SymExpr, UnKind};
use raindrop_machine::{AluOp, Cond, EmuError, Emulator, Image, Inst, Reg};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Cap on shadow-expression size; larger expressions are concretized, the
/// standard concolic fallback (§VII-C3 discusses its limits on table
/// lookups).
const MAX_EXPR_SIZE: usize = 512;

/// How the symbolic input reaches the target function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputSpec {
    /// A single 64-bit register argument (variable 0), masked to
    /// `size_bytes` meaningful bytes. This is the RandomFuns shape.
    RegisterArg {
        /// Number of meaningful input bytes (1, 2, 4 or 8).
        size_bytes: usize,
    },
    /// `len` input bytes in guest memory at `addr` (variables `0..len`),
    /// each in `0..=255`. Extra arguments are passed unchanged. This is the
    /// base64 shape.
    MemoryBuffer {
        /// Guest address of the buffer.
        addr: u64,
        /// Number of symbolic bytes.
        len: usize,
        /// Concrete arguments passed to the function (e.g. the length).
        args: Vec<u64>,
    },
}

impl InputSpec {
    /// Number of input variables.
    pub fn vars(&self) -> usize {
        match self {
            InputSpec::RegisterArg { .. } => 1,
            InputSpec::MemoryBuffer { len, .. } => *len,
        }
    }

    /// Domain mask of one variable.
    pub fn var_mask(&self) -> u64 {
        match self {
            InputSpec::RegisterArg { size_bytes } => {
                if *size_bytes >= 8 {
                    u64::MAX
                } else {
                    (1u64 << (8 * size_bytes)) - 1
                }
            }
            InputSpec::MemoryBuffer { .. } => 0xff,
        }
    }
}

/// One recorded path constraint.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Left flag operand.
    pub lhs: Rc<SymExpr>,
    /// Right flag operand.
    pub rhs: Rc<SymExpr>,
    /// Whether the flags came from a subtraction (`cmp`) or an AND (`test`).
    pub flag_is_sub: bool,
    /// The branch condition.
    pub cond: Cond,
    /// Whether the branch was taken in the recorded execution.
    pub taken: bool,
}

impl Constraint {
    /// Evaluates the branch outcome for a concrete input assignment.
    pub fn outcome(&self, input: &[u64]) -> bool {
        let a = self.lhs.eval(input);
        let b = self.rhs.eval(input);
        let mut flags = raindrop_machine::Flags::cleared();
        if self.flag_is_sub {
            flags.set_sub(a, b, false);
        } else {
            flags.set_logic(a & b);
        }
        self.cond.eval(flags)
    }

    /// Whether the constraint holds in the direction observed at record
    /// time for the given input.
    pub fn satisfied_as_recorded(&self, input: &[u64]) -> bool {
        self.outcome(input) == self.taken
    }
}

/// Result of one shadowed execution.
#[derive(Debug, Clone)]
pub struct PathRecord {
    /// Return value of the function.
    pub return_value: u64,
    /// Path constraints whose operands mention the input.
    pub constraints: Vec<Constraint>,
    /// Instructions executed.
    pub instructions: u64,
    /// Probe indices observed set after the run.
    pub probes_hit: BTreeSet<u32>,
}

/// Shadow state: symbolic expressions for registers and memory.
///
/// Memory is tracked at two granularities to keep expressions small: whole
/// 64-bit words stored at an exact address (the common case — stack slots,
/// locals, VM operand stacks) and individual bytes (byte-oriented workloads
/// such as base64). A 64-bit reload of a word stored at the same address
/// returns the original expression unchanged, so values round-tripped
/// through push/pop or spill slots do not blow up.
struct Shadow {
    regs: [Option<Rc<SymExpr>>; 16],
    words: HashMap<u64, Rc<SymExpr>>,
    bytes: HashMap<u64, Rc<SymExpr>>,
    flags: Option<(Rc<SymExpr>, Rc<SymExpr>, bool)>,
}

impl Shadow {
    fn new() -> Shadow {
        Shadow {
            regs: Default::default(),
            words: HashMap::new(),
            bytes: HashMap::new(),
            flags: None,
        }
    }

    fn reg_symbolic(&self, r: Reg) -> bool {
        self.regs[r.index()].is_some()
    }

    fn set_reg(&mut self, r: Reg, e: Option<Rc<SymExpr>>) {
        let e = e.filter(|e| e.is_symbolic() && e.size() <= MAX_EXPR_SIZE);
        self.regs[r.index()] = e;
    }

    fn clear_range(&mut self, addr: u64, len: u64) {
        for i in 0..len {
            self.bytes.remove(&addr.wrapping_add(i));
        }
        for d in 0..8u64 {
            let w = addr.wrapping_sub(d);
            if self.words.contains_key(&w) {
                // Overlap test: word [w, w+8) vs [addr, addr+len).
                if w < addr.wrapping_add(len) && addr < w.wrapping_add(8) {
                    self.words.remove(&w);
                }
            }
        }
        for i in 1..len {
            self.words.remove(&addr.wrapping_add(i));
        }
    }

    fn mem_symbolic(&self, addr: u64, len: u64) -> bool {
        (0..len).any(|i| self.bytes.contains_key(&addr.wrapping_add(i)))
            || (0..(len + 7)).any(|d| {
                let w = addr.wrapping_add(len).wrapping_sub(1).wrapping_sub(d);
                self.words.contains_key(&w) && w.wrapping_add(8) > addr
            })
    }

    fn mem_byte(&self, addr: u64, concrete: u8) -> Rc<SymExpr> {
        if let Some(e) = self.bytes.get(&addr) {
            return e.clone();
        }
        for d in 0..8u64 {
            let w = addr.wrapping_sub(d);
            if let Some(e) = self.words.get(&w) {
                return SymExpr::bin(
                    BinKind::And,
                    SymExpr::bin(BinKind::Shr, e.clone(), SymExpr::constant(8 * d)),
                    SymExpr::constant(0xff),
                );
            }
        }
        SymExpr::constant(concrete as u64)
    }

    fn load64(&self, addr: u64, concrete: u64) -> Rc<SymExpr> {
        if let Some(e) = self.words.get(&addr) {
            return e.clone();
        }
        if !self.mem_symbolic(addr, 8) {
            return SymExpr::constant(concrete);
        }
        let mut acc = SymExpr::constant(0);
        for i in 0..8u64 {
            let byte = self.mem_byte(addr + i, (concrete >> (8 * i)) as u8);
            acc = SymExpr::bin(
                BinKind::Or,
                acc,
                SymExpr::bin(BinKind::Shl, byte, SymExpr::constant(8 * i)),
            );
        }
        if acc.size() > MAX_EXPR_SIZE {
            SymExpr::constant(concrete)
        } else {
            acc
        }
    }

    fn store64(&mut self, addr: u64, expr: Option<Rc<SymExpr>>) {
        self.clear_range(addr, 8);
        if let Some(e) = expr {
            if e.is_symbolic() && e.size() <= MAX_EXPR_SIZE {
                self.words.insert(addr, e);
            }
        }
    }

    fn store8(&mut self, addr: u64, expr: Option<Rc<SymExpr>>) {
        self.clear_range(addr, 1);
        if let Some(e) = expr {
            if e.is_symbolic() && e.size() <= MAX_EXPR_SIZE {
                self.bytes.insert(addr, SymExpr::bin(BinKind::And, e, SymExpr::constant(0xff)));
            }
        }
    }
}

/// Runs the target once with a concrete input while recording symbolic path
/// constraints.
///
/// # Errors
///
/// Propagates emulator errors (budget exhaustion, decode faults — both are
/// treated by the DSE driver as "this path costs too much / derails").
pub fn shadow_run(
    image: &Image,
    func: &str,
    spec: &InputSpec,
    input: &[u64],
    budget: u64,
) -> Result<PathRecord, EmuError> {
    let mut emu = Emulator::new(image);
    emu.set_budget(budget);
    let faddr = image.function(func).expect("target exists").addr;
    let mut shadow = Shadow::new();

    // Seed the concrete input and its shadow.
    let args: Vec<u64> = match spec {
        InputSpec::RegisterArg { .. } => {
            let v = input[0] & spec.var_mask();
            shadow.set_reg(Reg::Rdi, Some(SymExpr::input(0)));
            vec![v]
        }
        InputSpec::MemoryBuffer { addr, len, args } => {
            let concrete: Vec<u8> =
                (0..*len).map(|i| input.get(i).copied().unwrap_or(0) as u8).collect();
            emu.mem.write_bytes(*addr, &concrete);
            for i in 0..*len {
                shadow.bytes.insert(addr + i as u64, SymExpr::input(i));
            }
            args.clone()
        }
    };

    // Mirror Emulator::call's setup so stepping can be interleaved with the
    // shadow propagation.
    emu.cpu.set_reg(Reg::Rsp, raindrop_machine::STACK_TOP);
    for (r, v) in Reg::ARGS.iter().zip(&args) {
        emu.cpu.set_reg(*r, *v);
    }
    let sp = emu.cpu.reg(Reg::Rsp) - 8;
    emu.cpu.set_reg(Reg::Rsp, sp);
    emu.mem.write_u64(sp, raindrop_machine::RETURN_SENTINEL);
    emu.cpu.rip = faddr;

    let mut constraints = Vec::new();
    let return_value;
    loop {
        // Peek at the instruction before executing it so operand
        // expressions can be captured from the pre-state; the peek hits the
        // emulator's predecoded cache, which the step() right after reuses.
        let decoded = emu.peek_inst().map(|(i, _)| i)?;
        let pre = PreState::capture(&emu, &shadow, &decoded);

        match emu.step()? {
            Some(raindrop_machine::RunExit::Returned(v)) => {
                return_value = v;
                break;
            }
            Some(raindrop_machine::RunExit::Halted) => {
                return_value = emu.reg(Reg::Rax);
                break;
            }
            None => {}
        }
        propagate(&decoded, &pre, &emu, &mut shadow, &mut constraints);
        if emu.cpu.rip == raindrop_machine::RETURN_SENTINEL {
            return_value = emu.reg(Reg::Rax);
            break;
        }
    }

    // Probe coverage from the concrete memory.
    let mut probes_hit = BTreeSet::new();
    if let Ok(probe_base) = image.symbol(raindrop_synth::PROBE_ARRAY) {
        for i in 0..raindrop_synth::minic::MAX_PROBES as u32 {
            if emu.mem.read_u64(probe_base + 8 * i as u64) != 0 {
                probes_hit.insert(i);
            }
        }
    }

    Ok(PathRecord { return_value, constraints, instructions: emu.stats().instructions, probes_hit })
}

/// Pre-execution facts an instruction's shadow propagation needs: the
/// concrete register file before the step (destination registers get
/// overwritten by it) and the resolved memory-operand address.
struct PreState {
    concrete_regs: [u64; 16],
    mem_addr: Option<u64>,
    mem_concrete: u64,
    any_symbolic: bool,
}

impl PreState {
    fn capture(emu: &Emulator, shadow: &Shadow, inst: &Inst) -> PreState {
        let mut concrete_regs = [0u64; 16];
        for r in Reg::ALL {
            concrete_regs[r.index()] = emu.reg(r);
        }
        let mut any = inst.regs_read().iter().any(|r| shadow.reg_symbolic(r));
        let mem_addr = inst.mem_operand().map(|m| {
            let mut a = m.disp as i64 as u64;
            if let Some(b) = m.base {
                a = a.wrapping_add(emu.reg(b));
            }
            if let Some(i) = m.index {
                a = a.wrapping_add(emu.reg(i).wrapping_mul(m.scale as u64));
            }
            a
        });
        let mut mem_concrete = 0;
        if let Some(addr) = mem_addr {
            mem_concrete = emu.mem.read_u64(addr);
            if shadow.mem_symbolic(addr, 8) {
                any = true;
            }
        }
        PreState { concrete_regs, mem_addr, mem_concrete, any_symbolic: any }
    }
}

/// The expression a register held before the instruction executed.
fn op_expr(shadow: &Shadow, pre: &PreState, r: Reg) -> Rc<SymExpr> {
    shadow.regs[r.index()]
        .clone()
        .unwrap_or_else(|| SymExpr::constant(pre.concrete_regs[r.index()]))
}

fn alu_kind(op: AluOp) -> BinKind {
    match op {
        AluOp::Add | AluOp::Adc => BinKind::Add,
        AluOp::Sub | AluOp::Sbb => BinKind::Sub,
        AluOp::And => BinKind::And,
        AluOp::Or => BinKind::Or,
        AluOp::Xor => BinKind::Xor,
    }
}

/// Propagates shadow state across one executed instruction. `emu` holds the
/// post-state; `pre` holds operand expressions captured before execution.
fn propagate(
    inst: &Inst,
    pre: &PreState,
    emu: &Emulator,
    shadow: &mut Shadow,
    constraints: &mut Vec<Constraint>,
) {
    use Inst::*;
    match *inst {
        MovRR(d, s) => {
            let e = shadow.regs[s.index()].clone();
            shadow.set_reg(d, e);
        }
        MovRI(d, _) => shadow.set_reg(d, None),
        Load(d, _) => {
            let addr = pre.mem_addr.expect("load has mem");
            let e = shadow.load64(addr, emu.reg(d));
            shadow.set_reg(d, Some(e));
        }
        LoadB(d, _) | LoadSxB(d, _) => {
            let addr = pre.mem_addr.expect("load has mem");
            let byte = shadow.mem_byte(addr, emu.mem.read_u8(addr));
            let e = if matches!(inst, LoadSxB(..)) {
                SymExpr::un(UnKind::SextByte, byte)
            } else {
                byte
            };
            shadow.set_reg(d, Some(e));
        }
        Store(_, s) => {
            let addr = pre.mem_addr.expect("store has mem");
            let e = shadow.regs[s.index()].clone();
            shadow.store64(addr, e);
        }
        StoreI(_, _) => {
            let addr = pre.mem_addr.expect("store has mem");
            shadow.store64(addr, None);
        }
        StoreB(_, s) => {
            let addr = pre.mem_addr.expect("store has mem");
            let e = shadow.regs[s.index()].clone();
            shadow.store8(addr, e);
        }
        Lea(d, _) => shadow.set_reg(d, None),
        Push(r) => {
            let sp = emu.reg(Reg::Rsp);
            let e = shadow.regs[r.index()].clone();
            shadow.store64(sp, e);
        }
        PushI(_) => {
            let sp = emu.reg(Reg::Rsp);
            shadow.store64(sp, None);
        }
        Pop(d) => {
            let sp = emu.reg(Reg::Rsp).wrapping_sub(8);
            let e =
                if shadow.mem_symbolic(sp, 8) { Some(shadow.load64(sp, emu.reg(d))) } else { None };
            shadow.set_reg(d, e);
        }
        Alu(op, d, s) => {
            if pre.any_symbolic {
                let e =
                    SymExpr::bin(alu_kind(op), op_expr(shadow, pre, d), op_expr(shadow, pre, s));
                shadow.flags = Some((e.clone(), SymExpr::constant(0), true));
                shadow.set_reg(d, Some(e));
            } else {
                shadow.set_reg(d, None);
                shadow.flags = None;
            }
        }
        AluI(op, d, imm) => {
            if shadow.reg_symbolic(d) {
                let pre_d = op_expr(shadow, pre, d);
                let e = SymExpr::bin(alu_kind(op), pre_d, SymExpr::constant(imm as i64 as u64));
                shadow.flags = Some((e.clone(), SymExpr::constant(0), true));
                shadow.set_reg(d, Some(e));
            } else {
                shadow.set_reg(d, None);
                shadow.flags = None;
            }
        }
        AluM(op, d, _) => {
            let addr = pre.mem_addr.expect("mem operand");
            if pre.any_symbolic {
                let pre_d = op_expr(shadow, pre, d);
                let m = shadow.load64(addr, pre.mem_concrete);
                let e = SymExpr::bin(alu_kind(op), pre_d, m);
                shadow.flags = Some((e.clone(), SymExpr::constant(0), true));
                shadow.set_reg(d, Some(e));
            } else {
                shadow.set_reg(d, None);
                shadow.flags = None;
            }
        }
        AluStore(op, _, s) => {
            let addr = pre.mem_addr.expect("mem operand");
            if pre.any_symbolic {
                let m = shadow.load64(addr, pre.mem_concrete);
                let e = SymExpr::bin(alu_kind(op), m, op_expr(shadow, pre, s));
                shadow.store64(addr, Some(e.clone()));
                shadow.flags = Some((e, SymExpr::constant(0), true));
            } else {
                shadow.store64(addr, None);
                shadow.flags = None;
            }
        }
        Neg(r) => {
            if shadow.reg_symbolic(r) {
                let pre_r = op_expr(shadow, pre, r);
                let e = SymExpr::un(UnKind::Neg, pre_r.clone());
                // neg sets flags as 0 - r.
                shadow.flags = Some((SymExpr::constant(0), pre_r, true));
                shadow.set_reg(r, Some(e));
            } else {
                shadow.set_reg(r, None);
                shadow.flags = None;
            }
        }
        Not(r) => {
            if shadow.reg_symbolic(r) {
                let pre_r = op_expr(shadow, pre, r);
                shadow.set_reg(r, Some(SymExpr::un(UnKind::Not, pre_r)));
            } else {
                shadow.set_reg(r, None);
            }
        }
        Mul(d, s) => {
            if pre.any_symbolic {
                let pre_d = op_expr(shadow, pre, d);
                let e = SymExpr::bin(BinKind::Mul, pre_d, op_expr(shadow, pre, s));
                shadow.set_reg(d, Some(e));
            } else {
                shadow.set_reg(d, None);
            }
            shadow.flags = None;
        }
        MulI(d, s, imm) => {
            if shadow.reg_symbolic(s) {
                let e = SymExpr::bin(
                    BinKind::Mul,
                    op_expr(shadow, pre, s),
                    SymExpr::constant(imm as i64 as u64),
                );
                shadow.set_reg(d, Some(e));
            } else {
                shadow.set_reg(d, None);
            }
            shadow.flags = None;
        }
        Div(d, s) | Rem(d, s) => {
            if pre.any_symbolic {
                let kind = if matches!(inst, Div(..)) { BinKind::Div } else { BinKind::Rem };
                let pre_d = op_expr(shadow, pre, d);
                let e = SymExpr::bin(kind, pre_d, op_expr(shadow, pre, s));
                shadow.set_reg(d, Some(e));
            } else {
                shadow.set_reg(d, None);
            }
        }
        Shl(r, i) | Shr(r, i) | Sar(r, i) => {
            if shadow.reg_symbolic(r) {
                let kind = match inst {
                    Shl(..) => BinKind::Shl,
                    Shr(..) => BinKind::Shr,
                    _ => BinKind::Sar,
                };
                let pre_r = op_expr(shadow, pre, r);
                let e = SymExpr::bin(kind, pre_r, SymExpr::constant(i as u64));
                shadow.set_reg(r, Some(e));
            } else {
                shadow.set_reg(r, None);
            }
            shadow.flags = None;
        }
        ShlR(d, s) | ShrR(d, s) => {
            if pre.any_symbolic {
                let kind = if matches!(inst, ShlR(..)) { BinKind::Shl } else { BinKind::Shr };
                let pre_d = op_expr(shadow, pre, d);
                let e = SymExpr::bin(kind, pre_d, op_expr(shadow, pre, s));
                shadow.set_reg(d, Some(e));
            } else {
                shadow.set_reg(d, None);
            }
            shadow.flags = None;
        }
        Cmp(a, bb) => {
            if pre.any_symbolic {
                shadow.flags = Some((op_expr(shadow, pre, a), op_expr(shadow, pre, bb), true));
            } else {
                shadow.flags = None;
            }
        }
        CmpI(a, imm) => {
            if shadow.reg_symbolic(a) {
                shadow.flags =
                    Some((op_expr(shadow, pre, a), SymExpr::constant(imm as i64 as u64), true));
            } else {
                shadow.flags = None;
            }
        }
        CmpMI(_, imm) => {
            let addr = pre.mem_addr.expect("mem operand");
            if shadow.mem_symbolic(addr, 8) {
                shadow.flags = Some((
                    shadow.load64(addr, pre.mem_concrete),
                    SymExpr::constant(imm as i64 as u64),
                    true,
                ));
            } else {
                shadow.flags = None;
            }
        }
        Test(a, bb) => {
            if pre.any_symbolic {
                shadow.flags = Some((op_expr(shadow, pre, a), op_expr(shadow, pre, bb), false));
            } else {
                shadow.flags = None;
            }
        }
        TestI(a, imm) => {
            if shadow.reg_symbolic(a) {
                shadow.flags =
                    Some((op_expr(shadow, pre, a), SymExpr::constant(imm as i64 as u64), false));
            } else {
                shadow.flags = None;
            }
        }
        Cmov(cond, d, s) => {
            // Model as a select driven by the concrete outcome, but record
            // the implicit constraint like a branch.
            if let Some((lhs, rhs, is_sub)) = shadow.flags.clone() {
                if lhs.is_symbolic() || rhs.is_symbolic() {
                    constraints.push(Constraint {
                        lhs,
                        rhs,
                        flag_is_sub: is_sub,
                        cond,
                        taken: cond.eval(emu.cpu.flags),
                    });
                }
            }
            if cond.eval(emu.cpu.flags) {
                let e = shadow.regs[s.index()].clone();
                shadow.set_reg(d, e);
            }
        }
        Set(cond, d) => {
            if let Some((lhs, rhs, is_sub)) = shadow.flags.clone() {
                if lhs.is_symbolic() || rhs.is_symbolic() {
                    // The produced 0/1 value is expressible for the
                    // conditions the workloads and the rewriter generate.
                    let diff = if is_sub {
                        SymExpr::bin(BinKind::Sub, lhs.clone(), rhs.clone())
                    } else {
                        SymExpr::bin(BinKind::And, lhs.clone(), rhs.clone())
                    };
                    let e = match cond {
                        Cond::E => SymExpr::bin(BinKind::Eq, diff, SymExpr::constant(0)),
                        Cond::Ne => SymExpr::bin(
                            BinKind::Xor,
                            SymExpr::bin(BinKind::Eq, diff, SymExpr::constant(0)),
                            SymExpr::constant(1),
                        ),
                        Cond::B => SymExpr::bin(BinKind::Ult, lhs.clone(), rhs.clone()),
                        Cond::Ae => SymExpr::bin(
                            BinKind::Xor,
                            SymExpr::bin(BinKind::Ult, lhs.clone(), rhs.clone()),
                            SymExpr::constant(1),
                        ),
                        Cond::A => SymExpr::bin(BinKind::Ult, rhs.clone(), lhs.clone()),
                        Cond::Be => SymExpr::bin(
                            BinKind::Xor,
                            SymExpr::bin(BinKind::Ult, rhs.clone(), lhs.clone()),
                            SymExpr::constant(1),
                        ),
                        _ => SymExpr::constant(cond.eval(emu.cpu.flags) as u64),
                    };
                    constraints.push(Constraint {
                        lhs,
                        rhs,
                        flag_is_sub: is_sub,
                        cond,
                        taken: cond.eval(emu.cpu.flags),
                    });
                    shadow.set_reg(d, Some(e));
                    return;
                }
            }
            shadow.set_reg(d, None);
        }
        Jcc(cond, _) => {
            if let Some((lhs, rhs, is_sub)) = shadow.flags.clone() {
                if lhs.is_symbolic() || rhs.is_symbolic() {
                    constraints.push(Constraint {
                        lhs,
                        rhs,
                        flag_is_sub: is_sub,
                        cond,
                        taken: cond.eval(emu.cpu.flags),
                    });
                }
            }
        }
        XchgRR(a, bb) => {
            let ea = shadow.regs[a.index()].clone();
            let eb = shadow.regs[bb.index()].clone();
            shadow.set_reg(a, eb);
            shadow.set_reg(bb, ea);
        }
        XchgRM(r, _) => {
            let addr = pre.mem_addr.expect("mem operand");
            let er = shadow.regs[r.index()].clone();
            let em = if shadow.mem_symbolic(addr, 8) {
                Some(shadow.load64(addr, emu.reg(r)))
            } else {
                None
            };
            shadow.store64(addr, er);
            shadow.set_reg(r, em);
        }
        Call(_) | CallReg(_) => {
            // The return-address slot is concrete.
            let sp = emu.reg(Reg::Rsp);
            shadow.store64(sp, None);
        }
        Jmp(_) | JmpReg(_) | JmpMem(_) | Ret | Leave | Nop | Hlt => {}
    }
}

/// Work limits of one DSE attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DseBudget {
    /// Total emulated instructions across all explored paths.
    pub total_instructions: u64,
    /// Per-path instruction budget.
    pub per_path_instructions: u64,
    /// Maximum number of explored paths.
    pub max_paths: usize,
    /// Wall-clock limit.
    pub max_wall: Duration,
}

impl Default for DseBudget {
    fn default() -> Self {
        DseBudget {
            total_instructions: 40_000_000,
            per_path_instructions: 4_000_000,
            max_paths: 400,
            max_wall: Duration::from_secs(30),
        }
    }
}

/// Attack goal (§III of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Goal {
    /// G1: find an input making the function return the given value.
    Secret {
        /// The return value that signals success (1 for the point test).
        want: u64,
    },
    /// G2: cover all reachable coverage probes of the original function.
    Coverage {
        /// Number of probes that exist.
        total_probes: u32,
    },
}

/// Outcome of a DSE attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseOutcome {
    /// Whether the goal was reached within the budget.
    pub success: bool,
    /// The input that reached the goal (secret finding).
    pub witness: Option<Vec<u64>>,
    /// Paths (re-)executed.
    pub paths: usize,
    /// Total emulated instructions.
    pub instructions: u64,
    /// Wall-clock time spent.
    pub wall: Duration,
    /// Probes covered (coverage goal).
    pub probes_covered: usize,
    /// Constraints collected on the longest path.
    pub max_constraints: usize,
}

/// The concolic attacker.
pub struct DseAttack<'a> {
    image: &'a Image,
    func: &'a str,
    spec: InputSpec,
    budget: DseBudget,
    rng: ChaCha8Rng,
}

impl<'a> DseAttack<'a> {
    /// Creates an attack instance.
    pub fn new(image: &'a Image, func: &'a str, spec: InputSpec, budget: DseBudget) -> Self {
        use rand::SeedableRng;
        DseAttack { image, func, spec, budget, rng: ChaCha8Rng::seed_from_u64(0xa77ac4) }
    }

    fn solve(
        &mut self,
        prefix: &[Constraint],
        negated: &Constraint,
        current: &[u64],
    ) -> Option<Vec<u64>> {
        let want_outcome = !negated.taken;
        let mask = self.spec.var_mask();
        let check = |input: &[u64]| {
            prefix.iter().all(|c| c.satisfied_as_recorded(input))
                && negated.outcome(input) == want_outcome
        };

        // Strategy 1: inversion of an equality/inequality on a single
        // variable occurrence.
        let mut vars: BTreeSet<usize> = negated.lhs.variables();
        vars.extend(negated.rhs.variables());
        if negated.flag_is_sub {
            for &var in &vars {
                let rhs_val = negated.rhs.eval(current);
                if let Some(v) = invert(&negated.lhs, rhs_val, var, current) {
                    let mut cand = current.to_vec();
                    cand[var] = v & mask;
                    if check(&cand) {
                        return Some(cand);
                    }
                }
                let lhs_val = negated.lhs.eval(current);
                if let Some(v) = invert(&negated.rhs, lhs_val, var, current) {
                    let mut cand = current.to_vec();
                    cand[var] = v & mask;
                    if check(&cand) {
                        return Some(cand);
                    }
                }
                // For strict inequalities try a small neighbourhood around
                // the equality solution.
                if let Some(v) = invert(&negated.lhs, rhs_val.wrapping_add(1), var, current) {
                    let mut cand = current.to_vec();
                    cand[var] = v & mask;
                    if check(&cand) {
                        return Some(cand);
                    }
                }
            }
        }

        // Strategy 2: exhaustive search when the involved domain is small
        // (single byte-sized variable, or a 1/2-byte register argument).
        if vars.len() == 1 {
            let var = *vars.iter().next().expect("non-empty");
            let domain: u64 = match &self.spec {
                InputSpec::RegisterArg { size_bytes } if *size_bytes <= 2 => {
                    1u64 << (8 * *size_bytes)
                }
                InputSpec::MemoryBuffer { .. } => 256,
                _ => 0,
            };
            if domain > 0 {
                let mut cand = current.to_vec();
                for v in 0..domain {
                    cand[var] = v;
                    if check(&cand) {
                        return Some(cand);
                    }
                }
            }
        }

        // Strategy 3: bounded random search over the involved variables.
        let mut cand = current.to_vec();
        for _ in 0..2000 {
            for &var in &vars {
                cand[var] = self.rng.gen::<u64>() & mask;
            }
            if check(&cand) {
                return Some(cand);
            }
        }
        None
    }

    /// Runs the attack.
    pub fn run(&mut self, goal: Goal) -> DseOutcome {
        let start = Instant::now();
        let vars = self.spec.vars();
        let mask = self.spec.var_mask();
        let mut queue: VecDeque<Vec<u64>> = VecDeque::new();
        queue.push_back(vec![0u64; vars]);
        queue.push_back(vec![mask; vars]);
        let mut seen: BTreeSet<Vec<u64>> = queue.iter().cloned().collect();

        let mut total_instructions = 0u64;
        let mut paths = 0usize;
        let mut covered: BTreeSet<u32> = BTreeSet::new();
        let mut max_constraints = 0usize;

        while let Some(input) = queue.pop_front() {
            if start.elapsed() > self.budget.max_wall
                || total_instructions > self.budget.total_instructions
                || paths > self.budget.max_paths
            {
                break;
            }
            let record = match shadow_run(
                self.image,
                self.func,
                &self.spec,
                &input,
                self.budget
                    .per_path_instructions
                    .min(self.budget.total_instructions.saturating_sub(total_instructions).max(1)),
            ) {
                Ok(r) => r,
                Err(_) => continue,
            };
            paths += 1;
            total_instructions += record.instructions;
            covered.extend(record.probes_hit.iter().copied());
            max_constraints = max_constraints.max(record.constraints.len());

            let done = match goal {
                Goal::Secret { want } => record.return_value == want,
                Goal::Coverage { total_probes } => covered.len() as u32 >= total_probes,
            };
            if done {
                return DseOutcome {
                    success: true,
                    witness: Some(input),
                    paths,
                    instructions: total_instructions,
                    wall: start.elapsed(),
                    probes_covered: covered.len(),
                    max_constraints,
                };
            }

            // Generational search: negate each constraint in turn (deepest
            // first so new behaviour near the end of the path is reached
            // quickly, which matters for the final secret check).
            let n = record.constraints.len();
            for i in (0..n).rev() {
                if start.elapsed() > self.budget.max_wall {
                    break;
                }
                let negated = &record.constraints[i];
                if let Some(cand) = self.solve(&record.constraints[..i], negated, &input) {
                    if seen.insert(cand.clone()) {
                        queue.push_back(cand);
                    }
                }
            }
        }

        DseOutcome {
            success: false,
            witness: None,
            paths,
            instructions: total_instructions,
            wall: start.elapsed(),
            probes_covered: covered.len(),
            max_constraints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_synth::{codegen, randomfuns, Goal as RfGoal};

    fn small_rf(goal: RfGoal, input_size: usize) -> raindrop_synth::RandomFun {
        randomfuns::generate(raindrop_synth::RandomFunConfig {
            structure: randomfuns::Ctrl::if_(randomfuns::Ctrl::bb(4), randomfuns::Ctrl::bb(4)),
            structure_name: "(if (bb 4) (bb 4))".into(),
            input_size,
            seed: 5,
            goal,
            loop_size: 3,
        })
    }

    #[test]
    fn shadow_run_collects_constraints_and_return_value() {
        let rf = small_rf(RfGoal::SecretFinding, 4);
        let image = codegen::compile(&rf.program).unwrap();
        let spec = InputSpec::RegisterArg { size_bytes: 4 };
        let rec = shadow_run(&image, &rf.name, &spec, &[0], 10_000_000).unwrap();
        assert_eq!(rec.return_value, 0, "input 0 is (almost surely) not the secret");
        assert!(!rec.constraints.is_empty(), "branches on the input were recorded");
        assert!(rec.instructions > 0);
        // Constraints must be consistent with the concrete run.
        for c in &rec.constraints {
            assert!(c.satisfied_as_recorded(&[0]));
        }
    }

    #[test]
    fn dse_cracks_an_unprotected_point_test() {
        for size in [1usize, 2, 4, 8] {
            let rf = small_rf(RfGoal::SecretFinding, size);
            let image = codegen::compile(&rf.program).unwrap();
            let mut attack = DseAttack::new(
                &image,
                &rf.name,
                InputSpec::RegisterArg { size_bytes: size },
                DseBudget::default(),
            );
            let outcome = attack.run(Goal::Secret { want: 1 });
            assert!(outcome.success, "native {size}-byte function should be cracked");
            let witness = outcome.witness.unwrap()[0] & raindrop_synth::input_mask(size);
            // The witness must actually pass the check (it may differ from
            // the generator's secret only if a hash collision exists).
            let mut emu = Emulator::new(&image);
            assert_eq!(emu.call_named(&image, &rf.name, &[witness]).unwrap(), 1);
        }
    }

    #[test]
    fn dse_reaches_full_probe_coverage_on_native_code() {
        let rf = small_rf(RfGoal::CodeCoverage, 4);
        let image = codegen::compile(&rf.program).unwrap();
        let mut attack = DseAttack::new(
            &image,
            &rf.name,
            InputSpec::RegisterArg { size_bytes: 4 },
            DseBudget::default(),
        );
        let outcome = attack.run(Goal::Coverage { total_probes: rf.probe_count });
        assert!(outcome.success, "covered {}/{}", outcome.probes_covered, rf.probe_count);
    }

    #[test]
    fn budget_exhaustion_reports_failure_gracefully() {
        let rf = small_rf(RfGoal::SecretFinding, 8);
        let image = codegen::compile(&rf.program).unwrap();
        let tiny = DseBudget {
            total_instructions: 200,
            per_path_instructions: 50,
            max_paths: 2,
            max_wall: Duration::from_millis(200),
        };
        let mut attack =
            DseAttack::new(&image, &rf.name, InputSpec::RegisterArg { size_bytes: 8 }, tiny);
        let outcome = attack.run(Goal::Secret { want: 1 });
        assert!(!outcome.success);
        assert!(outcome.paths <= 3);
    }
}
