//! A work-queue fleet that shards attack jobs across worker threads.
//!
//! The DSE-bound experiment suites (`exp_table2`, `exp_efficacy`,
//! `exp_dse_speed`) attack many corpus functions independently; the fleet
//! runs them over the shared scheduling core in `raindrop-sched` — the same
//! work-stealing primitives that drive the protection server. Each worker
//! owns its emulators outright — the fork-point engine inside every
//! [`DseAttack`] keeps one warm emulator per job and revives it between
//! paths with [`Snapshot`] restores (and forks of it are cheap, see
//! [`Emulator::fork`]), and each attack owns its hash-consed expression
//! arena and solver outright (`ExprId`s never cross a job boundary; the
//! solve cache's structural-hash keys are arena-independent but private to
//! the attack), so no state is shared and no locking happens on the hot
//! path; the queue is touched once per job.
//!
//! Jobs are deterministic and independent, so under *work-bounded*
//! budgets (instructions, paths, solver calls) the result of a fleet run
//! does not depend on the worker count — a 1-worker and an N-worker fleet
//! produce identical outcomes in identical order (pinned by the
//! `fleet_results_are_independent_of_worker_count` test). The one caveat
//! is [`DseBudget::max_wall`]: it measures real time, so oversubscribing
//! workers past the machine's cores slows every attack down and can push
//! a wall-bounded attack over its limit that a 1-worker run would finish.
//! The worker count defaults to the machine's available parallelism and
//! can be pinned with the `RAINDROP_DSE_WORKERS` environment variable.
//!
//! [`Emulator::fork`]: raindrop_machine::Emulator::fork
//! [`Snapshot`]: raindrop_machine::Snapshot

use crate::concolic::{DseAttack, DseBudget, DseOutcome, ExploreMode, Goal, InputSpec};
use raindrop_machine::Image;

/// One DSE job for the fleet: everything needed to mount a self-contained
/// attack on one function of one prepared image.
pub struct DseJob {
    /// Job label carried through to the result (e.g. `"<config>/<fun>"`).
    pub label: String,
    /// The prepared (possibly obfuscated) image.
    pub image: Image,
    /// Target function name.
    pub func: String,
    /// How the symbolic input reaches the target.
    pub spec: InputSpec,
    /// Work limits for this attack.
    pub budget: DseBudget,
    /// The attack goal.
    pub goal: Goal,
    /// Explore mode (fork-point snapshots or the re-run reference oracle).
    pub mode: ExploreMode,
}

impl DseJob {
    /// Convenience constructor using the production fork-point mode.
    pub fn new(
        label: impl Into<String>,
        image: Image,
        func: impl Into<String>,
        spec: InputSpec,
        budget: DseBudget,
        goal: Goal,
    ) -> DseJob {
        DseJob {
            label: label.into(),
            image,
            func: func.into(),
            spec,
            budget,
            goal,
            mode: ExploreMode::ForkPoint,
        }
    }

    /// Runs this job to completion (self-contained; used by the fleet and
    /// directly submittable to a [`raindrop_sched::Scheduler`]).
    pub fn run(self) -> DseJobResult {
        let mut attack = DseAttack::new(&self.image, &self.func, self.spec.clone(), self.budget)
            .with_mode(self.mode);
        let outcome = attack.run(self.goal);
        DseJobResult { label: self.label, outcome }
    }
}

/// The outcome of one fleet job, tagged with its label.
#[derive(Debug, Clone)]
pub struct DseJobResult {
    /// The label of the job that produced this result.
    pub label: String,
    /// The attack outcome.
    pub outcome: DseOutcome,
}

/// A work-stealing executor for independent attack jobs: a thin veneer over
/// [`raindrop_sched::scoped_map`], kept for its batch-oriented API and its
/// `RAINDROP_DSE_WORKERS` sizing convention.
pub struct AttackFleet {
    workers: usize,
}

impl AttackFleet {
    /// Creates a fleet with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> AttackFleet {
        AttackFleet { workers: workers.max(1) }
    }

    /// Creates a fleet sized by `RAINDROP_DSE_WORKERS` if set, otherwise by
    /// the machine's available parallelism.
    pub fn from_env() -> AttackFleet {
        let workers = std::env::var("RAINDROP_DSE_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        AttackFleet::new(workers)
    }

    /// The number of worker threads this fleet spawns.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every item on a temporary work-stealing pool and
    /// returns the results in item order (see
    /// [`raindrop_sched::scoped_map`]); `f` must be deterministic per item
    /// for fleet runs to be reproducible across worker counts.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        raindrop_sched::scoped_map(self.workers, items, f)
    }

    /// Runs a batch of DSE jobs and returns their outcomes in job order.
    pub fn run_dse(&self, jobs: Vec<DseJob>) -> Vec<DseJobResult> {
        self.map(jobs, |_, job| job.run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order_and_balances_work() {
        let fleet = AttackFleet::new(4);
        let items: Vec<u64> = (0..32).collect();
        let out = fleet.map(items, |i, v| {
            assert_eq!(i as u64, v);
            v * 2
        });
        assert_eq!(out, (0..32).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_is_clamped_and_env_independent_by_default() {
        assert_eq!(AttackFleet::new(0).workers(), 1);
        assert!(AttackFleet::from_env().workers() >= 1);
    }
}
