//! Taint-driven simplification (TDS) — the general, semantics-based trace
//! simplifier of Yadegari et al. that the paper treats as attack surface A3.
//!
//! The attacker records a concrete execution trace of the obfuscated
//! function, taints the attacker-controlled input, and keeps only the
//! instructions that (transitively) take part in the input-to-output
//! computation; everything else — interpreter dispatch, ROP `ret` plumbing,
//! dynamically dead gadget instructions — is simplification fodder. Exactly
//! as the paper argues, the P3 predicate couples its opaque computations with
//! input-derived values and (second variant) with later branch decisions, so
//! the simplifier cannot drop them without unsoundness.

use raindrop_machine::{Image, Inst, Reg, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Result of a TDS pass over one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TdsReport {
    /// Total instructions in the recorded trace.
    pub trace_len: usize,
    /// Instructions kept because they are tainted by the input and reach
    /// the output (the simplified trace).
    pub relevant: usize,
    /// Instructions recognized as pure dispatch overhead (`ret`-driven chain
    /// stepping or interpreter VPC handling) that the simplifier removed.
    pub dispatch_removed: usize,
    /// Fraction of the trace removed by simplification.
    pub reduction: f64,
    /// Distinct code addresses remaining in the simplified trace.
    pub simplified_unique_addresses: usize,
}

/// Runs the obfuscated function concretely with tracing and applies
/// taint-driven simplification. `input` is passed as the first argument and
/// is the taint source.
pub fn simplify(image: &Image, func: &str, input: u64, budget: u64) -> TdsReport {
    let mut emu = raindrop_machine::Emulator::new(image);
    emu.set_budget(budget);
    emu.set_tracing(true);
    let _ = emu.call_named(image, func, &[input]);
    let trace = emu.take_trace();
    simplify_trace(&trace)
}

/// Applies the simplification to an already-recorded trace.
pub fn simplify_trace(trace: &Trace) -> TdsReport {
    // Forward taint: registers/memory locations derived from the input
    // (rdi at entry).
    let mut tainted_regs: HashSet<Reg> = HashSet::new();
    tainted_regs.insert(Reg::Rdi);
    let mut tainted_mem: HashSet<u64> = HashSet::new();
    let mut tainted_entries: Vec<bool> = vec![false; trace.len()];

    for (i, e) in trace.iter().enumerate() {
        let reads_tainted_reg = e.inst.regs_read().iter().any(|r| tainted_regs.contains(&r));
        let reads_tainted_mem =
            e.mem.iter().filter(|m| !m.is_write).any(|m| tainted_mem.contains(&(m.addr & !7)));
        let tainted = reads_tainted_reg || reads_tainted_mem;
        tainted_entries[i] = tainted;

        // Propagate.
        for (r, _) in &e.reg_writes {
            if tainted {
                tainted_regs.insert(*r);
            } else {
                tainted_regs.remove(r);
            }
        }
        for m in e.mem.iter().filter(|m| m.is_write) {
            if tainted {
                tainted_mem.insert(m.addr & !7);
            } else {
                tainted_mem.remove(&(m.addr & !7));
            }
        }
    }

    // Backward relevance: start from the final rax definition and the last
    // tainted memory writes, keep everything that feeds them. A lightweight
    // backward slice over registers suffices for the counts the experiments
    // report.
    let mut needed_regs: HashSet<Reg> = HashSet::new();
    needed_regs.insert(Reg::Rax);
    let mut relevant_entries = vec![false; trace.len()];
    for (i, e) in trace.iter().enumerate().rev() {
        let defines_needed = e.reg_writes.iter().any(|(r, _)| needed_regs.contains(r));
        let writes_mem = e.mem.iter().any(|m| m.is_write);
        if (defines_needed || writes_mem) && tainted_entries[i] {
            relevant_entries[i] = true;
            for (r, _) in &e.reg_writes {
                needed_regs.remove(r);
            }
            for r in e.inst.regs_read().iter() {
                needed_regs.insert(r);
            }
        }
    }

    // Dispatch overhead: ret-stepping and stack-pointer bookkeeping that is
    // not tainted.
    let dispatch_removed = trace
        .iter()
        .enumerate()
        .filter(|(i, e)| {
            !tainted_entries[*i]
                && (matches!(e.inst, Inst::Ret | Inst::Pop(_) | Inst::Push(_))
                    || e.inst.regs_written().contains(Reg::Rsp))
        })
        .count();

    let relevant = relevant_entries.iter().filter(|r| **r).count();
    let simplified_unique_addresses = trace
        .iter()
        .enumerate()
        .filter(|(i, _)| relevant_entries[*i])
        .map(|(_, e)| e.addr)
        .collect::<HashSet<_>>()
        .len();
    let trace_len = trace.len();
    TdsReport {
        trace_len,
        relevant,
        dispatch_removed,
        reduction: if trace_len == 0 { 0.0 } else { 1.0 - relevant as f64 / trace_len as f64 },
        simplified_unique_addresses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop::{Rewriter, RopConfig};
    use raindrop_synth::{codegen, randomfuns, Goal};

    fn sample() -> (raindrop_machine::Image, String, u64) {
        let rf = randomfuns::generate(raindrop_synth::RandomFunConfig {
            structure: randomfuns::Ctrl::if_(randomfuns::Ctrl::bb(4), randomfuns::Ctrl::bb(4)),
            structure_name: "(if (bb 4) (bb 4))".into(),
            input_size: 2,
            seed: 3,
            goal: Goal::SecretFinding,
            loop_size: 3,
        });
        let image = codegen::compile(&rf.program).unwrap();
        (image, rf.name, rf.secret_input)
    }

    #[test]
    fn native_trace_is_mostly_relevant_computation() {
        let (image, name, secret) = sample();
        let report = simplify(&image, &name, secret, 10_000_000);
        assert!(report.trace_len > 0);
        assert!(report.relevant > 0);
        assert!(report.reduction < 0.95, "little to simplify in native code");
    }

    #[test]
    fn rop_chain_dispatch_is_removable_but_p3_is_not() {
        let (image, name, secret) = sample();

        // Plain ROP (no P3): the chain adds huge amounts of untainted
        // dispatch that TDS strips away.
        let mut plain = image.clone();
        let mut rw = Rewriter::new(RopConfig::plain());
        rw.rewrite_function(&mut plain, &name).unwrap();
        let plain_report = simplify(&plain, &name, secret, 50_000_000);
        assert!(plain_report.trace_len > 5 * 100, "chains execute many more instructions");
        assert!(plain_report.dispatch_removed > 0);
        assert!(
            plain_report.reduction > 0.5,
            "most of a plain chain is removable dispatch (got {:.2})",
            plain_report.reduction
        );

        // ROP with P3 at every point: the opaque loops are tainted by the
        // input, so the relevant (non-simplifiable) instruction count grows
        // substantially compared to the plain chain.
        let mut hard = image.clone();
        let mut rw = Rewriter::new(RopConfig::ropk(1.0));
        rw.rewrite_function(&mut hard, &name).unwrap();
        let hard_report = simplify(&hard, &name, secret, 50_000_000);
        assert!(
            hard_report.relevant as f64 > plain_report.relevant as f64 * 1.5,
            "P3 keeps input-coupled work in the simplified trace ({} vs {})",
            hard_report.relevant,
            plain_report.relevant
        );
    }
}
