//! Feasibility solving over recorded path constraints.
//!
//! The concolic engine records [`Constraint`]s — branch conditions over
//! interned [`ExprId`]s — and the generational search asks one question per
//! flip: *is there an input that satisfies this constraint sequence?* The
//! [`Solver`] trait owns that question, so the search backend is a pluggable
//! component (an SMT bridge would slot in behind the same interface); the
//! built-in [`SearchSolver`] answers it with inversion, exhaustive
//! enumeration of small domains and bounded random search — the same
//! concrete strategies the engine previously hard-coded.
//!
//! # Example
//!
//! ```
//! use raindrop_attacks::solver::{Constraint, SearchSolver, Solver, VarDomain};
//! use raindrop_attacks::sym::{BinKind, ExprArena};
//! use raindrop_machine::Cond;
//!
//! let mut arena = ExprArena::new();
//! let x = arena.input(0);
//! let k = arena.constant(17);
//! let lhs = arena.bin(BinKind::Add, x, k);
//! let rhs = arena.constant(59);
//! // Ask for an input driving the branch `x + 17 == 59` the taken way.
//! let query = [Constraint { lhs, rhs, flag_is_sub: true, cond: Cond::E, taken: true }];
//! let domain = VarDomain { vars: 1, mask: u64::MAX, exhaustive: None };
//! let mut solver = SearchSolver::default();
//! let input = solver.feasible(&mut arena, &query, &domain, &[0]).expect("invertible");
//! assert_eq!(input[0], 42);
//! ```

use crate::sym::{hash_stream, invert, EvalMemo, ExprArena, ExprId};
use raindrop_machine::{Cond, Flags};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeSet, HashMap};

/// One recorded path constraint: the flag-producing operands, the branch
/// condition and the direction observed at record time.
///
/// A plain `Copy` struct of interned ids. Within one arena, derived
/// equality/hashing *is* structural equality (interning guarantees it), so
/// the constraint doubles as its own exact dedup key — the canonical byte
/// serialization the previous representation rebuilt on every fork is gone
/// from the hot path (retained only as [`Constraint::canonical_bytes`] for
/// audits and the key-soundness suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Left flag operand.
    pub lhs: ExprId,
    /// Right flag operand.
    pub rhs: ExprId,
    /// Whether the flags came from a subtraction (`cmp`) or an AND (`test`).
    pub flag_is_sub: bool,
    /// The branch condition.
    pub cond: Cond,
    /// Whether the branch was taken in the recorded execution.
    pub taken: bool,
}

impl Constraint {
    /// Evaluates the branch outcome for a concrete input assignment.
    pub fn outcome(&self, arena: &ExprArena, input: &[u64], memo: &mut EvalMemo) -> bool {
        let a = arena.eval(self.lhs, input, memo);
        let b = arena.eval(self.rhs, input, memo);
        let mut flags = Flags::cleared();
        if self.flag_is_sub {
            flags.set_sub(a, b, false);
        } else {
            flags.set_logic(a & b);
        }
        self.cond.eval(flags)
    }

    /// Whether the constraint holds in the direction observed at record
    /// time for the given input.
    pub fn satisfied_as_recorded(
        &self,
        arena: &ExprArena,
        input: &[u64],
        memo: &mut EvalMemo,
    ) -> bool {
        self.outcome(arena, input, memo) == self.taken
    }

    /// 128-bit structural hash of the constraint, O(1) from the operands'
    /// cached structural hashes. Arena-independent (structurally equal
    /// constraints from different arenas hash equal), which is what lets
    /// the solve cache persist across engine runs.
    pub fn structural_hash(&self, arena: &ExprArena) -> u128 {
        hash_stream(&[
            arena.structural_hash(self.lhs),
            arena.structural_hash(self.rhs),
            0xfe,
            self.flag_is_sub as u128,
            self.cond as u8 as u128,
            self.taken as u128,
        ])
    }

    /// Canonical byte serialization of the constraint — the exact
    /// (collision-free) reference key. Tree-sized output; kept off the hot
    /// path, for the key-soundness property suite and audits only.
    pub fn canonical_bytes(&self, arena: &ExprArena) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        arena.write_canonical(self.lhs, &mut out);
        out.push(0xfe);
        arena.write_canonical(self.rhs, &mut out);
        out.push(self.flag_is_sub as u8);
        out.push(self.cond as u8);
        out.push(self.taken as u8);
        out
    }
}

/// A concrete input: one value per input variable.
pub type Assignment = Vec<u64>;

/// The value domain of the input variables, from the attack's `InputSpec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarDomain {
    /// Number of input variables.
    pub vars: usize,
    /// Bitmask of meaningful bits in each variable.
    pub mask: u64,
    /// When the per-variable domain is small enough to enumerate (byte
    /// buffers, 1/2-byte register arguments), its size; `None` otherwise.
    pub exhaustive: Option<u64>,
}

/// A feasibility backend for constraint queries.
///
/// `feasible` receives the full query — a constraint sequence that must
/// *all* hold — and returns a satisfying [`Assignment`], or `None` if the
/// backend cannot find one (which the explorer treats as unsatisfiable; an
/// incomplete backend trades exhaustiveness for speed, exactly the paper's
/// attacker model). The engine always queries a recorded path prefix with
/// the last constraint's direction flipped, and walks flips deepest-first;
/// implementations may exploit that shape (see [`SearchSolver`]) but must
/// not require it.
pub trait Solver {
    /// Finds an input under `domain` satisfying every constraint of
    /// `query`, or `None`. `hint` is the input that drove the recorded
    /// path — a good starting point, since it already satisfies every
    /// query constraint except the flipped last one.
    fn feasible(
        &mut self,
        arena: &mut ExprArena,
        query: &[Constraint],
        domain: &VarDomain,
        hint: &[u64],
    ) -> Option<Assignment>;

    /// Signals that subsequent queries come from a fresh engine run (new
    /// arena: previously seen [`ExprId`]s are meaningless). Implementations
    /// drop any id-keyed state here.
    fn begin_run(&mut self) {}

    /// RNG draws consumed since construction. Checkpointing a paused attack
    /// records this; stateless/deterministic backends keep the default 0.
    fn rng_draws(&self) -> u64 {
        0
    }

    /// Fast-forwards a *freshly constructed* backend to the state after
    /// `draws` RNG draws, so a resumed attack continues the exact random
    /// stream the checkpointed run would have used. Only moves forward;
    /// backends without RNG state ignore it.
    fn fast_forward(&mut self, _draws: u64) {}
}

/// The built-in search backend: inversion along invertible operator
/// chains, exhaustive walks of small variable domains, and bounded random
/// search with a depth backoff.
///
/// Queries are checked against the *recorded* form of the path: a
/// candidate is feasible for a flip at index `i` iff the first recorded
/// constraint it violates is exactly `i` (the prefix holds as recorded,
/// the flipped constraint is violated as recorded). The solver memoizes
/// that first-violated index per candidate and keeps the memo across the
/// deepest-first flip sweep of one record — strategies re-try overlapping
/// candidate sets at every flip (the exhaustive domain walk literally
/// replays the same values), which the memo collapses from quadratic
/// re-evaluation into one scan each.
pub struct SearchSolver {
    rng: ChaCha8Rng,
    /// RNG draws consumed so far — the only live state a checkpoint must
    /// carry: the memos below are pure caches, losing them on resume never
    /// changes an answer, but replaying a different random stream would.
    draws: u64,
    /// The as-recorded constraint sequence the current flip sweep walks
    /// (the longest query seen, with its last constraint unflipped);
    /// shorter queries of the same sweep are its prefixes.
    record: Vec<Constraint>,
    /// candidate input -> first index of `record` it violates.
    memo: HashMap<Vec<u64>, usize>,
    /// Eval memo for the hint input (valid across one `feasible` call).
    eval_hint: EvalMemo,
    /// Eval memo for candidate scans (reset per candidate).
    eval_cand: EvalMemo,
}

impl Default for SearchSolver {
    fn default() -> Self {
        SearchSolver::new()
    }
}

impl SearchSolver {
    /// Creates the solver with its fixed RNG seed (the attack is
    /// deterministic end-to-end).
    pub fn new() -> SearchSolver {
        use rand::SeedableRng;
        SearchSolver {
            rng: ChaCha8Rng::seed_from_u64(0xa77ac4),
            draws: 0,
            record: Vec::new(),
            memo: HashMap::new(),
            eval_hint: EvalMemo::default(),
            eval_cand: EvalMemo::default(),
        }
    }

    /// Aligns the stored record with `query` (whose last constraint is the
    /// flipped one): if the query's as-recorded form is a prefix of the
    /// stored record, the memo stays valid; otherwise this is a new record
    /// and the memo is cleared.
    fn sync_record(&mut self, query: &[Constraint]) {
        let n = query.len();
        let mut last = query[n - 1];
        last.taken = !last.taken;
        let is_prefix = self.record.len() >= n
            && self.record[..n - 1] == query[..n - 1]
            && self.record[n - 1] == last;
        if !is_prefix {
            self.record.clear();
            self.record.extend_from_slice(&query[..n - 1]);
            self.record.push(last);
            self.memo.clear();
        }
    }

    /// First index of `record` that `input` violates (`record.len()` if it
    /// satisfies the whole path as recorded), memoized per candidate.
    fn first_violated(&mut self, arena: &ExprArena, input: &[u64]) -> usize {
        if let Some(&v) = self.memo.get(input) {
            return v;
        }
        self.eval_cand.reset();
        let v = self
            .record
            .iter()
            .position(|c| !c.satisfied_as_recorded(arena, input, &mut self.eval_cand))
            .unwrap_or(self.record.len());
        self.memo.insert(input.to_vec(), v);
        v
    }
}

impl Solver for SearchSolver {
    fn feasible(
        &mut self,
        arena: &mut ExprArena,
        query: &[Constraint],
        domain: &VarDomain,
        hint: &[u64],
    ) -> Option<Assignment> {
        if query.is_empty() {
            return Some(hint.to_vec());
        }
        let i = query.len() - 1;
        self.sync_record(query);
        let negated = self.record[i];
        let mask = domain.mask;
        self.eval_hint.reset();

        // Strategy 1: inversion of an equality/inequality on a single
        // variable occurrence along an invertible operator chain.
        let mut vars: BTreeSet<usize> = BTreeSet::new();
        arena.variables(negated.lhs, &mut vars);
        arena.variables(negated.rhs, &mut vars);
        if negated.flag_is_sub {
            for &var in &vars {
                let rhs_val = arena.eval(negated.rhs, hint, &mut self.eval_hint);
                if let Some(v) = invert(arena, negated.lhs, rhs_val, var, hint, &mut self.eval_hint)
                {
                    let mut cand = hint.to_vec();
                    cand[var] = v & mask;
                    if self.first_violated(arena, &cand) == i {
                        return Some(cand);
                    }
                }
                let lhs_val = arena.eval(negated.lhs, hint, &mut self.eval_hint);
                if let Some(v) = invert(arena, negated.rhs, lhs_val, var, hint, &mut self.eval_hint)
                {
                    let mut cand = hint.to_vec();
                    cand[var] = v & mask;
                    if self.first_violated(arena, &cand) == i {
                        return Some(cand);
                    }
                }
                // For strict inequalities try a small neighbourhood around
                // the equality solution.
                if let Some(v) = invert(
                    arena,
                    negated.lhs,
                    rhs_val.wrapping_add(1),
                    var,
                    hint,
                    &mut self.eval_hint,
                ) {
                    let mut cand = hint.to_vec();
                    cand[var] = v & mask;
                    if self.first_violated(arena, &cand) == i {
                        return Some(cand);
                    }
                }
            }
        }

        // Strategy 2: exhaustive search when only one variable is involved
        // and its domain is enumerable.
        if vars.len() == 1 {
            if let Some(size) = domain.exhaustive {
                let var = *vars.iter().next().expect("non-empty");
                let mut cand = hint.to_vec();
                for v in 0..size {
                    cand[var] = v;
                    if self.first_violated(arena, &cand) == i {
                        return Some(cand);
                    }
                }
                // The whole domain of the only involved variable was
                // enumerated: random search over the same variable cannot
                // do better, skip it.
                return None;
            }
        }

        // Strategy 3: bounded random search over the involved variables.
        // The draw count backs off with the flip depth: a random input
        // almost never satisfies a deep prefix, so deep flips lean on
        // inversion (strategy 1) and get only a token random budget —
        // without the backoff a single deep P3 path can sink minutes of
        // wall time into hopeless draws.
        let draws = if i < 64 {
            2000
        } else if i < 256 {
            256
        } else {
            32
        };
        let mut cand = hint.to_vec();
        for _ in 0..draws {
            for &var in &vars {
                self.draws += 1;
                cand[var] = self.rng.gen::<u64>() & mask;
            }
            if self.first_violated(arena, &cand) == i {
                return Some(cand);
            }
        }
        None
    }

    fn begin_run(&mut self) {
        self.record.clear();
        self.memo.clear();
    }

    fn rng_draws(&self) -> u64 {
        self.draws
    }

    fn fast_forward(&mut self, draws: u64) {
        for _ in self.draws..draws {
            let _: u64 = self.rng.gen();
        }
        self.draws = self.draws.max(draws);
    }
}

/// Order-independent, duplicate-safe digest of a set of 128-bit hashes.
///
/// The previous solve-cache key XORed per-constraint hashes together; XOR
/// is order-independent but cancels pairwise, so a hash inserted twice
/// produced the digest of the *empty* set and distinct constraint multisets
/// could collide onto one cache slot. The digest keeps two independent
/// combiners — a wrapping sum (counts multiplicity) alongside the XOR — so
/// no finite nonempty multiset digests like the empty one and duplicates
/// cannot cancel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SetDigest {
    sum: u128,
    xor: u128,
}

impl SetDigest {
    /// The digest of the empty set.
    pub fn empty() -> SetDigest {
        SetDigest::default()
    }

    /// Returns the digest extended by one element (order-independent).
    #[must_use]
    pub fn with(self, h: u128) -> SetDigest {
        SetDigest { sum: self.sum.wrapping_add(h), xor: self.xor ^ h }
    }

    /// The combined key value.
    pub fn key(self) -> (u128, u128) {
        (self.sum, self.xor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::BinKind;

    fn eq_constraint(arena: &mut ExprArena, lhs: ExprId, value: u64, taken: bool) -> Constraint {
        let rhs = arena.constant(value);
        Constraint { lhs, rhs, flag_is_sub: true, cond: Cond::E, taken }
    }

    #[test]
    fn search_solver_inverts_an_affine_flip() {
        let mut arena = ExprArena::new();
        let x = arena.input(0);
        let three = arena.constant(3);
        let five = arena.constant(5);
        let mul = arena.bin(BinKind::Mul, x, three);
        let affine = arena.bin(BinKind::Add, mul, five);
        let query = [eq_constraint(&mut arena, affine, 3 * 999 + 5, true)];
        let domain = VarDomain { vars: 1, mask: u64::MAX, exhaustive: None };
        let mut solver = SearchSolver::new();
        let got = solver.feasible(&mut arena, &query, &domain, &[0]).expect("solvable");
        assert_eq!(got, vec![999]);
    }

    #[test]
    fn search_solver_respects_the_prefix() {
        let mut arena = ExprArena::new();
        let x = arena.input(0);
        let ten = arena.constant(10);
        let lt = arena.bin(BinKind::Ult, x, ten);
        // Prefix: x < 10 evaluated to 1 (taken). Flip target: x == 7.
        let prefix = eq_constraint(&mut arena, lt, 1, true);
        let flip = eq_constraint(&mut arena, x, 7, true);
        let domain = VarDomain { vars: 1, mask: 0xff, exhaustive: Some(256) };
        let mut solver = SearchSolver::new();
        let got = solver.feasible(&mut arena, &[prefix, flip], &domain, &[3]).expect("solvable");
        assert_eq!(got, vec![7]);

        // An infeasible flip under the same prefix: x == 200 contradicts
        // x < 10, so every strategy must fail.
        let flip = eq_constraint(&mut arena, x, 200, true);
        assert_eq!(solver.feasible(&mut arena, &[prefix, flip], &domain, &[3]), None);
    }

    #[test]
    fn search_solver_memo_survives_prefix_truncations() {
        let mut arena = ExprArena::new();
        let x = arena.input(0);
        let mut constraints = Vec::new();
        for k in 0..8u64 {
            let kc = arena.constant(k * 16);
            let gt = arena.bin(BinKind::Ult, kc, x);
            constraints.push(eq_constraint(&mut arena, gt, 1, true));
        }
        let domain = VarDomain { vars: 1, mask: 0xff, exhaustive: Some(256) };
        let mut solver = SearchSolver::new();
        // Deepest-first sweep, the engine's query order.
        for i in (1..8usize).rev() {
            let mut query = constraints[..=i].to_vec();
            query[i].taken = false;
            let got = solver.feasible(&mut arena, &query, &domain, &[200]);
            let got = got.expect("each flip has a feasible input");
            // The memoized record must answer every truncation consistently.
            assert_eq!(solver.first_violated(&arena, &got), i);
        }
    }

    #[test]
    fn set_digest_is_order_independent_and_duplicate_safe() {
        let (a, b) = (0x1234_5678_9abc_def0_u128, 0x0fed_cba9_8765_4321_u128);
        assert_eq!(
            SetDigest::empty().with(a).with(b),
            SetDigest::empty().with(b).with(a),
            "order-independent"
        );
        // Regression: XOR alone cancels a repeated element pairwise, making
        // {h, h} indistinguishable from {}.
        assert_ne!(SetDigest::empty().with(a).with(a), SetDigest::empty());
        assert_ne!(SetDigest::empty().with(a).with(a).with(b), SetDigest::empty().with(b));
        assert_ne!(SetDigest::empty().with(a), SetDigest::empty());
    }

    #[test]
    fn constraint_hash_is_exact_on_structural_equality_and_components() {
        let mut arena = ExprArena::new();
        let x = arena.input(0);
        let three = arena.constant(3);
        let lhs = arena.bin(BinKind::Add, x, three);
        let a = eq_constraint(&mut arena, lhs, 0, true);
        let b = eq_constraint(&mut arena, lhs, 0, true);
        assert_eq!(a, b, "interned ids make equality structural");
        assert_eq!(a.structural_hash(&arena), b.structural_hash(&arena));
        assert_eq!(a.canonical_bytes(&arena), b.canonical_bytes(&arena));
        let flipped = Constraint { taken: false, ..b };
        assert_ne!(a.structural_hash(&arena), flipped.structural_hash(&arena));
        assert_ne!(a.canonical_bytes(&arena), flipped.canonical_bytes(&arena));
        let other_cond = Constraint { cond: Cond::Ne, ..b };
        assert_ne!(a.structural_hash(&arena), other_cond.structural_hash(&arena));
    }
}
