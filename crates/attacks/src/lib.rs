//! # raindrop-attacks
//!
//! The attacker toolbox of the *raindrop* reproduction: the automated
//! deobfuscation techniques §III and §VII of the paper measure the
//! obfuscation against.
//!
//! * [`sym`] — the symbolic-expression language: a hash-consed arena of
//!   interned [`ExprId`] nodes with algebraic simplification at
//!   construction time, plus the inversion helper the search solver leans
//!   on;
//! * [`solver`] — the [`Solver`] trait fronting constraint feasibility, the
//!   built-in inversion-plus-random [`SearchSolver`] backend, and the
//!   duplicate-safe [`SetDigest`] used for solve-cache keys;
//! * [`concolic`] — dynamic symbolic execution (the S2E stand-in): shadowed
//!   concrete runs, path constraints, generational search with fork-point
//!   snapshot restores and a normalized constraint/solve cache, goals G1
//!   (secret finding) and G2 (code coverage), all under explicit work
//!   budgets;
//! * [`fleet`] — a work-queue [`AttackFleet`] sharding independent DSE jobs
//!   across worker threads;
//! * [`campaign`] — a checkpointed, resumable [`Campaign`] driver over many
//!   DSE jobs: durable crc-sealed checkpoints, kill-and-resume convergence,
//!   bounded retry, straggler demotion and a fault-injection harness;
//! * [`tds`] — taint-driven simplification of execution traces (attack
//!   surface A3);
//! * [`ropaware`] — ROPMEMU-style flag-flip exploration and
//!   ROPDissector-style gadget guessing (attack surfaces A2/A1);
//! * [`static_lift`] — the strongest static attacker: per-gadget semantic
//!   summaries walked with a symbolic stack pointer, stopped only by the
//!   paper's opaque predicates (attack surface A1, done properly).
//!
//! # Example
//!
//! ```
//! use raindrop_attacks::concolic::{DseAttack, DseBudget, Goal, InputSpec};
//! use raindrop_synth::{codegen, randomfuns};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small point-test function and crack its secret.
//! let rf = randomfuns::generate(raindrop_synth::RandomFunConfig {
//!     structure: randomfuns::Ctrl::if_(randomfuns::Ctrl::bb(4), randomfuns::Ctrl::bb(4)),
//!     structure_name: "(if (bb 4) (bb 4))".into(),
//!     input_size: 2,
//!     seed: 1,
//!     goal: randomfuns::Goal::SecretFinding,
//!     loop_size: 2,
//! });
//! let image = codegen::compile(&rf.program)?;
//! let mut attack = DseAttack::new(
//!     &image,
//!     &rf.name,
//!     InputSpec::RegisterArg { size_bytes: 2 },
//!     DseBudget::default(),
//! );
//! let outcome = attack.run(Goal::Secret { want: 1 });
//! assert!(outcome.success);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod concolic;
pub mod fleet;
pub mod ropaware;
pub mod solver;
pub mod static_lift;
pub mod sym;
pub mod tds;

pub use campaign::{
    job_fingerprint, replay_log, Campaign, CampaignConfig, CampaignJobReport, CampaignReport,
    CampaignStats, CampaignStatus, CheckpointRecord, FaultPlan, JobState,
};
pub use concolic::{
    shadow_run, DseAttack, DseAudit, DseBudget, DseExhaustion, DseExplorer, DseFrontier,
    DseOutcome, ExploreMode, Goal, InputSpec, PathRecord, ShadowRun,
};
pub use fleet::{AttackFleet, DseJob, DseJobResult};
pub use ropaware::{chain_symbol, flip_exploration, gadget_guess, FlipReport, GuessReport};
pub use solver::{Assignment, Constraint, SearchSolver, SetDigest, Solver, VarDomain};
pub use static_lift::{lift_function, lift_image, LiftReport};
pub use sym::{invert, BinKind, EvalMemo, ExprArena, ExprId, UnKind};
pub use tds::{simplify, simplify_trace, TdsReport};
