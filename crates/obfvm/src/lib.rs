//! # raindrop-obfvm
//!
//! A virtualization (VM) obfuscator in the style of Tigress `Virtualize`,
//! used as the comparison baseline throughout §VII of the paper (Table I:
//! `nVM`, `nVM-IMPx`).
//!
//! The obfuscator compiles a MiniC function into bytecode for a randomly
//! renumbered stack machine and replaces the function with an interpreter
//! (also MiniC, so the result goes through the same RM64 code generator the
//! original went through). It reproduces the three strengths the paper
//! attributes to VM obfuscation: per-program random instruction sets, a
//! dispatcher loop, and — optionally — *implicit* virtual-program-counter
//! updates that copy the new VPC bit by bit through control flow, which
//! frustrates taint tracking and multiplies symbolic states. Layers nest:
//! the interpreter produced by one layer is itself virtualized by the next.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raindrop_synth::minic::{BinOp, Expr, Function, Global, Program, Stmt, UnOp, PROBE_ARRAY};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which virtualization layers use implicit VPC loads (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImplicitAt {
    /// No implicit VPC loads.
    None,
    /// Only the first (innermost) layer.
    First,
    /// Only the last (outermost) layer.
    Last,
    /// Every layer.
    All,
}

/// VM obfuscation configuration (`nVM-IMPx` of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmConfig {
    /// Number of nested virtualization layers.
    pub layers: usize,
    /// Which layers use implicit VPC updates.
    pub implicit: ImplicitAt,
    /// Seed for the per-layer random instruction-set assignment.
    pub seed: u64,
}

impl VmConfig {
    /// `nVM` — `n` layers, no implicit flows.
    pub fn plain(layers: usize) -> VmConfig {
        VmConfig { layers, implicit: ImplicitAt::None, seed: 0x7161 }
    }

    /// `nVM-IMPx`.
    pub fn with_implicit(layers: usize, implicit: ImplicitAt) -> VmConfig {
        VmConfig { layers, implicit, seed: 0x7161 }
    }

    /// Table I-style name, e.g. `2VM-IMPlast`.
    pub fn label(&self) -> String {
        match self.implicit {
            ImplicitAt::None => format!("{}VM", self.layers),
            ImplicitAt::First => format!("{}VM-IMPfirst", self.layers),
            ImplicitAt::Last => format!("{}VM-IMPlast", self.layers),
            ImplicitAt::All => format!("{}VM-IMPall", self.layers),
        }
    }
}

/// Errors produced while virtualizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The function to virtualize does not exist in the program.
    UnknownFunction(String),
    /// The function uses a construct the bytecode compiler does not support.
    Unsupported(String),
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            VmError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl std::error::Error for VmError {}

// Logical opcodes; the byte value of each is randomized per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    PushConst,
    LoadLocal,
    StoreLocal,
    Arg,
    GlobalAddr,
    Bin(BinOp),
    Un(UnOp),
    Load8,
    Load1,
    Store8,
    Store1,
    Jmp,
    Jz,
    Ret,
    Call,
    Probe,
}

const BIN_OPS: [BinOp; 16] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
];

fn all_ops() -> Vec<Op> {
    let mut ops = vec![
        Op::PushConst,
        Op::LoadLocal,
        Op::StoreLocal,
        Op::Arg,
        Op::GlobalAddr,
        Op::Load8,
        Op::Load1,
        Op::Store8,
        Op::Store1,
        Op::Jmp,
        Op::Jz,
        Op::Ret,
        Op::Call,
        Op::Probe,
        Op::Un(UnOp::Neg),
        Op::Un(UnOp::Not),
    ];
    ops.extend(BIN_OPS.iter().copied().map(Op::Bin));
    ops
}

struct BytecodeCompiler {
    code: Vec<u8>,
    opcode_of: HashMap<Op, u8>,
    call_sites: Vec<(String, usize)>,
    globals: Vec<String>,
    discard_slot: u8,
}

impl BytecodeCompiler {
    fn emit_op(&mut self, op: Op) {
        self.code.push(self.opcode_of[&op]);
    }

    fn emit_u8(&mut self, v: u8) {
        self.code.push(v);
    }

    fn emit_u32(&mut self, v: u32) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    fn emit_u64(&mut self, v: u64) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    fn global_index(&mut self, name: &str) -> u8 {
        if let Some(i) = self.globals.iter().position(|g| g == name) {
            return i as u8;
        }
        self.globals.push(name.to_string());
        (self.globals.len() - 1) as u8
    }

    fn expr(&mut self, e: &Expr) -> Result<(), VmError> {
        match e {
            Expr::Const(v) => {
                self.emit_op(Op::PushConst);
                self.emit_u64(*v as u64);
            }
            Expr::Var(i) => {
                self.emit_op(Op::LoadLocal);
                self.emit_u8(*i as u8);
            }
            Expr::Arg(i) => {
                self.emit_op(Op::Arg);
                self.emit_u8(*i as u8);
            }
            Expr::GlobalAddr(name) => {
                let idx = self.global_index(name);
                self.emit_op(Op::GlobalAddr);
                self.emit_u8(idx);
            }
            Expr::Un(op, a) => {
                self.expr(a)?;
                self.emit_op(Op::Un(*op));
            }
            Expr::Bin(op, a, b) => {
                self.expr(a)?;
                self.expr(b)?;
                self.emit_op(Op::Bin(*op));
            }
            Expr::Load(a) => {
                self.expr(a)?;
                self.emit_op(Op::Load8);
            }
            Expr::LoadByte(a) => {
                self.expr(a)?;
                self.emit_op(Op::Load1);
            }
            Expr::Call(name, args) => {
                if args.len() > 6 {
                    return Err(VmError::Unsupported("call with more than 6 arguments".into()));
                }
                for a in args {
                    self.expr(a)?;
                }
                let site = self.call_sites.len();
                if site > 250 {
                    return Err(VmError::Unsupported("too many call sites".into()));
                }
                self.call_sites.push((name.clone(), args.len()));
                self.emit_op(Op::Call);
                self.emit_u8(site as u8);
            }
        }
        Ok(())
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), VmError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), VmError> {
        match s {
            Stmt::Assign(v, e) => {
                self.expr(e)?;
                self.emit_op(Op::StoreLocal);
                self.emit_u8(*v as u8);
            }
            Stmt::Store(addr, value) => {
                self.expr(addr)?;
                self.expr(value)?;
                self.emit_op(Op::Store8);
            }
            Stmt::StoreByte(addr, value) => {
                self.expr(addr)?;
                self.expr(value)?;
                self.emit_op(Op::Store1);
            }
            Stmt::ExprStmt(e) => {
                self.expr(e)?;
                // Discard the result into a dedicated scratch slot just past
                // the real locals.
                self.emit_op(Op::StoreLocal);
                self.emit_u8(self.discard_slot);
            }
            Stmt::Return(e) => {
                self.expr(e)?;
                self.emit_op(Op::Ret);
            }
            Stmt::Probe(id) => {
                self.emit_op(Op::Probe);
                self.emit_u8(*id as u8);
            }
            Stmt::If(cond, then_branch, else_branch) => {
                self.expr(cond)?;
                self.emit_op(Op::Jz);
                let patch_else = self.code.len();
                self.emit_u32(0);
                self.stmts(then_branch)?;
                self.emit_op(Op::Jmp);
                let patch_end = self.code.len();
                self.emit_u32(0);
                let else_target = self.code.len() as u32;
                self.code[patch_else..patch_else + 4].copy_from_slice(&else_target.to_le_bytes());
                self.stmts(else_branch)?;
                let end_target = self.code.len() as u32;
                self.code[patch_end..patch_end + 4].copy_from_slice(&end_target.to_le_bytes());
            }
            Stmt::While(cond, body) => {
                let head = self.code.len() as u32;
                self.expr(cond)?;
                self.emit_op(Op::Jz);
                let patch_exit = self.code.len();
                self.emit_u32(0);
                self.stmts(body)?;
                self.emit_op(Op::Jmp);
                self.emit_u32(head);
                let exit = self.code.len() as u32;
                self.code[patch_exit..patch_exit + 4].copy_from_slice(&exit.to_le_bytes());
            }
        }
        Ok(())
    }
}

// Local-variable layout of the generated interpreter.
const L_VPC: usize = 0;
const L_SP: usize = 1;
const L_OP: usize = 2;
const L_A: usize = 3;
const L_B: usize = 4;
const L_T: usize = 5;
const L_I: usize = 6;
const L_CALL_ARG_BASE: usize = 8;
const INTERP_LOCALS: usize = 14;

fn c(v: i64) -> Expr {
    Expr::Const(v)
}
fn v(i: usize) -> Expr {
    Expr::Var(i)
}
fn b(op: BinOp, x: Expr, y: Expr) -> Expr {
    Expr::bin(op, x, y)
}
fn gaddr(name: &str) -> Expr {
    Expr::GlobalAddr(name.to_string())
}

struct InterpBuilder {
    prefix: String,
    implicit: bool,
}

impl InterpBuilder {
    fn code_at(&self, offset: Expr) -> Expr {
        b(BinOp::Add, gaddr(&format!("{}_code", self.prefix)), offset)
    }

    fn stack_slot(&self, index: Expr) -> Expr {
        b(BinOp::Add, gaddr(&format!("{}_stack", self.prefix)), b(BinOp::Mul, index, c(8)))
    }

    fn local_slot(&self, index: Expr) -> Expr {
        b(BinOp::Add, gaddr(&format!("{}_locals", self.prefix)), b(BinOp::Mul, index, c(8)))
    }

    fn push(&self, value: Expr) -> Vec<Stmt> {
        vec![
            Stmt::Store(self.stack_slot(v(L_SP)), value),
            Stmt::Assign(L_SP, b(BinOp::Add, v(L_SP), c(1))),
        ]
    }

    fn pop_into(&self, var: usize) -> Vec<Stmt> {
        vec![
            Stmt::Assign(L_SP, b(BinOp::Sub, v(L_SP), c(1))),
            Stmt::Assign(var, Expr::Load(Box::new(self.stack_slot(v(L_SP))))),
        ]
    }

    /// Sets the VPC to `target`: either directly or through the implicit
    /// bit-copy loop (Tigress `InitImplicitFlow bitcopy_loop`).
    fn set_vpc(&self, target: Expr) -> Vec<Stmt> {
        if !self.implicit {
            return vec![Stmt::Assign(L_VPC, target)];
        }
        vec![
            Stmt::Assign(L_T, target),
            Stmt::Assign(L_VPC, c(0)),
            Stmt::Assign(L_I, c(0)),
            Stmt::While(
                b(BinOp::Lt, v(L_I), c(32)),
                vec![
                    Stmt::If(
                        b(BinOp::Eq, b(BinOp::And, b(BinOp::Shr, v(L_T), v(L_I)), c(1)), c(1)),
                        vec![Stmt::Assign(
                            L_VPC,
                            b(BinOp::Or, v(L_VPC), b(BinOp::Shl, c(1), v(L_I))),
                        )],
                        vec![],
                    ),
                    Stmt::Assign(L_I, b(BinOp::Add, v(L_I), c(1))),
                ],
            ),
        ]
    }

    fn advance(&self, operand_bytes: i64) -> Vec<Stmt> {
        self.set_vpc(b(BinOp::Add, v(L_VPC), c(1 + operand_bytes)))
    }
}

/// Result of virtualizing one function.
#[derive(Debug, Clone, PartialEq)]
pub struct Virtualized {
    /// The interpreter that replaces the original function (same name,
    /// same parameter count).
    pub interpreter: Function,
    /// New global data objects (bytecode, operand stack, locals array).
    pub globals: Vec<Global>,
    /// Size of the produced bytecode in bytes.
    pub bytecode_len: usize,
}

/// Virtualizes a single MiniC function into bytecode + interpreter.
///
/// # Errors
///
/// Fails when the function uses a construct the bytecode compiler cannot
/// express.
pub fn virtualize(
    func: &Function,
    implicit: bool,
    seed: u64,
    layer: usize,
) -> Result<Virtualized, VmError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (layer as u64).wrapping_mul(0x9E37_79B9));
    // Random opcode assignment for this layer.
    let mut bytes: Vec<u8> = (0..=255u8).collect();
    bytes.shuffle(&mut rng);
    let ops = all_ops();
    let opcode_of: HashMap<Op, u8> = ops.iter().copied().zip(bytes).collect();

    let mut compiler = BytecodeCompiler {
        code: Vec::new(),
        opcode_of,
        call_sites: Vec::new(),
        globals: Vec::new(),
        discard_slot: func.locals as u8,
    };
    compiler.stmts(&func.body)?;
    // Safety net: return 0 when control falls off the end of the bytecode.
    compiler.expr(&Expr::Const(0))?;
    compiler.emit_op(Op::Ret);

    let prefix = format!("__vm{layer}_{}", func.name);
    let ib = InterpBuilder { prefix: prefix.clone(), implicit };

    let fetch_u8 = |off: i64| Expr::LoadByte(Box::new(ib.code_at(b(BinOp::Add, v(L_VPC), c(off)))));
    let fetch_u32 = |off: i64| {
        let byte = |k: i64| {
            b(
                BinOp::Mul,
                Expr::LoadByte(Box::new(ib.code_at(b(BinOp::Add, v(L_VPC), c(off + k))))),
                c(1i64 << (8 * k)),
            )
        };
        b(BinOp::Add, b(BinOp::Add, byte(0), byte(1)), b(BinOp::Add, byte(2), byte(3)))
    };
    let fetch_u64 = |off: i64| {
        let byte = |k: i64| {
            b(
                BinOp::Mul,
                Expr::LoadByte(Box::new(ib.code_at(b(BinOp::Add, v(L_VPC), c(off + k))))),
                b(BinOp::Shl, c(1), c(8 * k)),
            )
        };
        let mut acc = byte(0);
        for k in 1..8 {
            acc = b(BinOp::Add, acc, byte(k));
        }
        acc
    };

    // Opcode handlers, dispatched through an if-chain on the fetched opcode.
    let mut dispatch: Vec<Stmt> = Vec::new();
    let arm = |op: Op, body: Vec<Stmt>, dispatch: &mut Vec<Stmt>, opcode_of: &HashMap<Op, u8>| {
        let opcode = opcode_of[&op] as i64;
        dispatch.push(Stmt::If(b(BinOp::Eq, v(L_OP), c(opcode)), body, vec![]));
    };
    let opcodes = compiler.opcode_of.clone();

    // PUSHC imm64
    let mut body = ib.push(fetch_u64(1));
    body.extend(ib.advance(8));
    arm(Op::PushConst, body, &mut dispatch, &opcodes);
    // LOADL idx
    let mut body = ib.push(Expr::Load(Box::new(ib.local_slot(fetch_u8(1)))));
    body.extend(ib.advance(1));
    arm(Op::LoadLocal, body, &mut dispatch, &opcodes);
    // STOREL idx
    let mut body = ib.pop_into(L_A);
    body.push(Stmt::Store(ib.local_slot(fetch_u8(1)), v(L_A)));
    body.extend(ib.advance(1));
    arm(Op::StoreLocal, body, &mut dispatch, &opcodes);
    // ARG idx — an if-chain over the (at most 6) parameters.
    {
        let mut body = vec![Stmt::Assign(L_A, c(0))];
        for i in 0..func.params {
            body.push(Stmt::If(
                b(BinOp::Eq, fetch_u8(1), c(i as i64)),
                vec![Stmt::Assign(L_A, Expr::Arg(i))],
                vec![],
            ));
        }
        body.extend(ib.push(v(L_A)));
        body.extend(ib.advance(1));
        arm(Op::Arg, body, &mut dispatch, &opcodes);
    }
    // GLOBALADDR idx — if-chain over the referenced globals.
    {
        let mut body = vec![Stmt::Assign(L_A, c(0))];
        for (i, name) in compiler.globals.iter().enumerate() {
            body.push(Stmt::If(
                b(BinOp::Eq, fetch_u8(1), c(i as i64)),
                vec![Stmt::Assign(L_A, gaddr(name))],
                vec![],
            ));
        }
        body.extend(ib.push(v(L_A)));
        body.extend(ib.advance(1));
        arm(Op::GlobalAddr, body, &mut dispatch, &opcodes);
    }
    // Binary operators.
    for bin in BIN_OPS {
        let mut body = ib.pop_into(L_B);
        body.extend(ib.pop_into(L_A));
        body.extend(ib.push(b(bin, v(L_A), v(L_B))));
        body.extend(ib.advance(0));
        arm(Op::Bin(bin), body, &mut dispatch, &opcodes);
    }
    // Unary operators.
    for un in [UnOp::Neg, UnOp::Not] {
        let mut body = ib.pop_into(L_A);
        body.extend(ib.push(Expr::un(un, v(L_A))));
        body.extend(ib.advance(0));
        arm(Op::Un(un), body, &mut dispatch, &opcodes);
    }
    // Memory.
    let mut body = ib.pop_into(L_A);
    body.extend(ib.push(Expr::Load(Box::new(v(L_A)))));
    body.extend(ib.advance(0));
    arm(Op::Load8, body, &mut dispatch, &opcodes);
    let mut body = ib.pop_into(L_A);
    body.extend(ib.push(Expr::LoadByte(Box::new(v(L_A)))));
    body.extend(ib.advance(0));
    arm(Op::Load1, body, &mut dispatch, &opcodes);
    let mut body = ib.pop_into(L_B);
    body.extend(ib.pop_into(L_A));
    body.push(Stmt::Store(v(L_A), v(L_B)));
    body.extend(ib.advance(0));
    arm(Op::Store8, body, &mut dispatch, &opcodes);
    let mut body = ib.pop_into(L_B);
    body.extend(ib.pop_into(L_A));
    body.push(Stmt::StoreByte(v(L_A), v(L_B)));
    body.extend(ib.advance(0));
    arm(Op::Store1, body, &mut dispatch, &opcodes);
    // Jumps.
    let body = ib.set_vpc(fetch_u32(1));
    arm(Op::Jmp, body, &mut dispatch, &opcodes);
    {
        let mut body = ib.pop_into(L_A);
        let taken = ib.set_vpc(fetch_u32(1));
        let fall = ib.advance(4);
        body.push(Stmt::If(b(BinOp::Eq, v(L_A), c(0)), taken, fall));
        arm(Op::Jz, body, &mut dispatch, &opcodes);
    }
    // Return.
    let mut body = ib.pop_into(L_A);
    body.push(Stmt::Return(v(L_A)));
    arm(Op::Ret, body, &mut dispatch, &opcodes);
    // Calls: per-site dispatch so callee and argument count stay static.
    {
        let mut body = vec![Stmt::Assign(L_A, c(0))];
        for (site, (callee, argc)) in compiler.call_sites.iter().enumerate() {
            let mut site_body = Vec::new();
            for k in (0..*argc).rev() {
                site_body.extend(ib.pop_into(L_CALL_ARG_BASE + k));
            }
            let args: Vec<Expr> = (0..*argc).map(|k| v(L_CALL_ARG_BASE + k)).collect();
            site_body.push(Stmt::Assign(L_A, Expr::Call(callee.clone(), args)));
            body.push(Stmt::If(b(BinOp::Eq, fetch_u8(1), c(site as i64)), site_body, vec![]));
        }
        body.extend(ib.push(v(L_A)));
        body.extend(ib.advance(1));
        arm(Op::Call, body, &mut dispatch, &opcodes);
    }
    // Probe.
    {
        let mut body = vec![Stmt::Store(
            b(BinOp::Add, gaddr(PROBE_ARRAY), b(BinOp::Mul, fetch_u8(1), c(8))),
            c(1),
        )];
        body.extend(ib.advance(1));
        arm(Op::Probe, body, &mut dispatch, &opcodes);
    }

    // The dispatcher loop.
    let interp_body = vec![
        Stmt::Assign(L_VPC, c(0)),
        Stmt::Assign(L_SP, c(0)),
        Stmt::While(c(1), {
            let mut loop_body =
                vec![Stmt::Assign(L_OP, Expr::LoadByte(Box::new(ib.code_at(v(L_VPC)))))];
            loop_body.extend(dispatch);
            loop_body
        }),
        Stmt::Return(c(0)),
    ];

    let interpreter = Function {
        name: func.name.clone(),
        params: func.params,
        locals: INTERP_LOCALS,
        body: interp_body,
    };

    let globals = vec![
        Global { name: format!("{prefix}_code"), bytes: compiler.code.clone() },
        Global { name: format!("{prefix}_stack"), bytes: vec![0u8; 512 * 8] },
        Global { name: format!("{prefix}_locals"), bytes: vec![0u8; 8 * (func.locals + 8)] },
    ];

    Ok(Virtualized { interpreter, globals, bytecode_len: compiler.code.len() })
}

/// The `.data` symbol holding the bytecode of `func`'s virtualization at
/// `layer` (see [`apply_layers`] for how layers are numbered).
pub fn vm_code_symbol(layer: usize, func: &str) -> String {
    format!("__vm{layer}_{func}_code")
}

/// One decoded bytecode instruction of a virtualized function.
///
/// The opcode *byte* is layer-specific (randomly assigned per layer), so the
/// decoded view names the logical operation instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedInst {
    /// Byte offset of the opcode within the bytecode blob.
    pub off: usize,
    /// Total encoded length (opcode byte + operand bytes).
    pub len: usize,
    /// Logical operation name (e.g. `pushc`, `bin.Add`, `jz`).
    pub name: String,
    /// Immediate/index operand, when the operation carries one.
    pub operand: Option<u64>,
    /// Absolute bytecode target, for `jmp`/`jz`.
    pub jump_target: Option<u32>,
}

/// Why a bytecode blob failed to decode. Any of these on an emitted blob
/// means the image is corrupted: the compiler only produces well-formed
/// streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BytecodeError {
    /// A byte that is not an assigned opcode of this layer's instruction
    /// set.
    UnknownOpcode {
        /// Offset of the byte.
        off: usize,
        /// The unassigned byte value.
        opcode: u8,
    },
    /// The blob ends in the middle of an operand.
    Truncated {
        /// Offset of the truncated instruction's opcode.
        off: usize,
    },
    /// A `jmp`/`jz` target that is not an instruction boundary (or is out
    /// of bounds).
    BadJumpTarget {
        /// Offset of the jump instruction.
        off: usize,
        /// The invalid target.
        target: u32,
    },
}

impl std::fmt::Display for BytecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BytecodeError::UnknownOpcode { off, opcode } => {
                write!(f, "unknown opcode {opcode:#04x} at offset {off}")
            }
            BytecodeError::Truncated { off } => {
                write!(f, "bytecode truncated inside the instruction at offset {off}")
            }
            BytecodeError::BadJumpTarget { off, target } => {
                write!(f, "jump at offset {off} targets {target}, not an instruction boundary")
            }
        }
    }
}

impl std::error::Error for BytecodeError {}

fn op_name(op: Op) -> String {
    match op {
        Op::PushConst => "pushc".into(),
        Op::LoadLocal => "loadl".into(),
        Op::StoreLocal => "storel".into(),
        Op::Arg => "arg".into(),
        Op::GlobalAddr => "gaddr".into(),
        Op::Bin(b) => format!("bin.{b:?}"),
        Op::Un(u) => format!("un.{u:?}"),
        Op::Load8 => "load8".into(),
        Op::Load1 => "load1".into(),
        Op::Store8 => "store8".into(),
        Op::Store1 => "store1".into(),
        Op::Jmp => "jmp".into(),
        Op::Jz => "jz".into(),
        Op::Ret => "ret".into(),
        Op::Call => "call".into(),
        Op::Probe => "probe".into(),
    }
}

fn operand_len(op: Op) -> usize {
    match op {
        Op::PushConst => 8,
        Op::LoadLocal | Op::StoreLocal | Op::Arg | Op::GlobalAddr | Op::Call | Op::Probe => 1,
        Op::Jmp | Op::Jz => 4,
        _ => 0,
    }
}

/// Rebuilds the per-layer opcode assignment and fully decodes a bytecode
/// blob, validating that every `jmp`/`jz` target is an in-bounds
/// instruction boundary.
///
/// `seed` and `layer` must match what produced the blob ([`virtualize`]'s
/// parameters; for pipeline-produced images, the pass's effective seed and
/// the function's absolute layer number). This is the defensive static
/// audit's view of a VM blob — no interpretation happens.
///
/// # Errors
///
/// Fails on the first unassigned opcode byte, truncated operand, or
/// out-of-boundary jump target.
pub fn decode_program(
    bytes: &[u8],
    seed: u64,
    layer: usize,
) -> Result<Vec<DecodedInst>, BytecodeError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (layer as u64).wrapping_mul(0x9E37_79B9));
    let mut opcode_bytes: Vec<u8> = (0..=255u8).collect();
    opcode_bytes.shuffle(&mut rng);
    let mut op_of: HashMap<u8, Op> = HashMap::new();
    for (op, byte) in all_ops().iter().copied().zip(opcode_bytes) {
        op_of.insert(byte, op);
    }

    let mut insts = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let opcode = bytes[off];
        let op = *op_of.get(&opcode).ok_or(BytecodeError::UnknownOpcode { off, opcode })?;
        let olen = operand_len(op);
        if off + 1 + olen > bytes.len() {
            return Err(BytecodeError::Truncated { off });
        }
        let operand_bytes = &bytes[off + 1..off + 1 + olen];
        let operand = match olen {
            1 => Some(operand_bytes[0] as u64),
            4 => Some(u32::from_le_bytes(operand_bytes.try_into().expect("4 bytes")) as u64),
            8 => Some(u64::from_le_bytes(operand_bytes.try_into().expect("8 bytes"))),
            _ => None,
        };
        let jump_target = match op {
            Op::Jmp | Op::Jz => Some(operand.expect("jump carries a u32") as u32),
            _ => None,
        };
        insts.push(DecodedInst { off, len: 1 + olen, name: op_name(op), operand, jump_target });
        off += 1 + olen;
    }

    let boundaries: std::collections::HashSet<u32> = insts.iter().map(|i| i.off as u32).collect();
    for inst in &insts {
        if let Some(target) = inst.jump_target {
            if !boundaries.contains(&target) {
                return Err(BytecodeError::BadJumpTarget { off: inst.off, target });
            }
        }
    }
    Ok(insts)
}

/// Result of [`apply_layers`]: the transformed program plus per-layer
/// statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Applied {
    /// The transformed program.
    pub program: Program,
    /// Bytecode size produced by each layer, innermost first.
    pub bytecode_lens: Vec<usize>,
}

/// Applies `config.layers` layers of virtualization to `func_name` inside
/// `program`, returning the transformed program.
///
/// # Errors
///
/// Fails when the function is unknown or uses unsupported constructs.
pub fn apply(program: &Program, func_name: &str, config: VmConfig) -> Result<Program, VmError> {
    apply_layers(program, func_name, config, 0).map(|a| a.program)
}

/// Like [`apply`], but numbers the generated layers starting at
/// `base_layer`, so repeated virtualization of the same function (e.g. two
/// stacked `VmPass`es in a `raindrop` pipeline) never collides on the
/// per-layer global names (`__vm<layer>_<func>_code` etc.) or reuses a
/// layer's opcode shuffle. `apply_layers(p, f, cfg, 0)` is exactly
/// [`apply`]; implicit-VPC placement (`First`/`Last`) stays relative to this
/// call's own layers.
///
/// # Errors
///
/// Fails when the function is unknown or uses unsupported constructs.
pub fn apply_layers(
    program: &Program,
    func_name: &str,
    config: VmConfig,
    base_layer: usize,
) -> Result<Applied, VmError> {
    let mut out = program.clone();
    let idx = out
        .functions
        .iter()
        .position(|f| f.name == func_name)
        .ok_or_else(|| VmError::UnknownFunction(func_name.to_string()))?;
    let mut current = out.functions[idx].clone();
    let mut bytecode_lens = Vec::with_capacity(config.layers);
    for layer in 0..config.layers {
        let implicit = match config.implicit {
            ImplicitAt::None => false,
            ImplicitAt::First => layer == 0,
            ImplicitAt::Last => layer == config.layers - 1,
            ImplicitAt::All => true,
        };
        let virt = virtualize(&current, implicit, config.seed, base_layer + layer)?;
        out.globals.extend(virt.globals);
        bytecode_lens.push(virt.bytecode_len);
        current = virt.interpreter;
    }
    out.functions[idx] = current;
    Ok(Applied { program: out, bytecode_lens })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_machine::Emulator;
    use raindrop_synth::{codegen, randomfuns, workloads};

    fn run(p: &Program, func: &str, args: &[u64]) -> u64 {
        let img = codegen::compile(p).unwrap();
        let mut emu = Emulator::new(&img);
        emu.set_budget(2_000_000_000);
        emu.call_named(&img, func, args).unwrap()
    }

    fn sample_randomfun() -> raindrop_synth::RandomFun {
        randomfuns::generate(raindrop_synth::RandomFunConfig {
            structure: randomfuns::Ctrl::for_(randomfuns::Ctrl::if_(
                randomfuns::Ctrl::bb(4),
                randomfuns::Ctrl::bb(4),
            )),
            structure_name: "(for (if (bb 4) (bb 4)))".into(),
            input_size: 2,
            seed: 11,
            goal: randomfuns::Goal::SecretFinding,
            loop_size: 4,
        })
    }

    #[test]
    fn emitted_bytecode_decodes_fully_with_valid_jumps() {
        let rf = sample_randomfun();
        let func = rf.program.function(&rf.name).unwrap();
        let virt = virtualize(func, false, 0x7161, 0).unwrap();
        let code = &virt.globals[0].bytes;
        assert_eq!(virt.globals[0].name, vm_code_symbol(0, &rf.name));
        let insts = decode_program(code, 0x7161, 0).unwrap();
        assert_eq!(insts.iter().map(|i| i.len).sum::<usize>(), code.len());
        assert!(insts.iter().any(|i| i.jump_target.is_some()), "loops compile to jumps");
        // A different layer has a different random instruction set; its
        // decoder rejects this blob (deterministic for these fixed seeds).
        assert!(decode_program(code, 0x7161, 1).is_err());
    }

    #[test]
    fn one_layer_preserves_semantics() {
        let rf = sample_randomfun();
        let vm = apply(&rf.program, &rf.name, VmConfig::plain(1)).unwrap();
        assert_eq!(run(&vm, &rf.name, &[rf.secret_input]), 1);
        assert_eq!(run(&vm, &rf.name, &[rf.secret_input ^ 1]), 0);
        assert_ne!(
            vm.function(&rf.name),
            rf.program.function(&rf.name),
            "the original body is replaced by a dispatcher"
        );
    }

    #[test]
    fn implicit_vpc_layers_preserve_semantics_and_add_work() {
        let rf = sample_randomfun();
        let plain = apply(&rf.program, &rf.name, VmConfig::plain(1)).unwrap();
        let imp =
            apply(&rf.program, &rf.name, VmConfig::with_implicit(1, ImplicitAt::All)).unwrap();
        assert_eq!(run(&imp, &rf.name, &[rf.secret_input]), 1);

        let count = |p: &Program| {
            let img = codegen::compile(p).unwrap();
            let mut emu = Emulator::new(&img);
            emu.set_budget(2_000_000_000);
            emu.call_named(&img, &rf.name, &[rf.secret_input]).unwrap();
            emu.stats().instructions
        };
        assert!(count(&imp) > count(&plain) * 3, "implicit VPC updates multiply interpreter work");
    }

    #[test]
    fn two_layers_nest_and_preserve_semantics() {
        let rf = sample_randomfun();
        let vm2 =
            apply(&rf.program, &rf.name, VmConfig::with_implicit(2, ImplicitAt::Last)).unwrap();
        assert_eq!(run(&vm2, &rf.name, &[rf.secret_input]), 1);
        assert_eq!(run(&vm2, &rf.name, &[rf.secret_input ^ 3]), 0);
    }

    #[test]
    fn virtualized_workload_with_calls_still_works() {
        let w = workloads::sp_norm();
        let baseline = run(&w.program, &w.entry, &w.args);
        let vm = apply(&w.program, "sp_norm_main", VmConfig::plain(1)).unwrap();
        assert_eq!(run(&vm, &w.entry, &w.args), baseline);
    }

    #[test]
    fn stacked_apply_layers_offset_prefixes_and_preserve_semantics() {
        let rf = sample_randomfun();
        let first = apply_layers(&rf.program, &rf.name, VmConfig::plain(1), 0).unwrap();
        assert_eq!(first.program, apply(&rf.program, &rf.name, VmConfig::plain(1)).unwrap());
        assert_eq!(first.bytecode_lens.len(), 1);
        let second = apply_layers(&first.program, &rf.name, VmConfig::plain(1), 1).unwrap();
        let names: Vec<&String> = second.program.globals.iter().map(|g| &g.name).collect();
        assert!(names.iter().any(|n| n.starts_with("__vm0_")));
        assert!(names.iter().any(|n| n.starts_with("__vm1_")));
        let unique: std::collections::BTreeSet<&&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "layer prefixes never collide");
        assert_eq!(run(&second.program, &rf.name, &[rf.secret_input]), 1);
        assert_eq!(run(&second.program, &rf.name, &[rf.secret_input ^ 1]), 0);
    }

    #[test]
    fn labels_follow_table_i_naming() {
        assert_eq!(VmConfig::plain(2).label(), "2VM");
        assert_eq!(VmConfig::with_implicit(3, ImplicitAt::All).label(), "3VM-IMPall");
        assert_eq!(VmConfig::with_implicit(2, ImplicitAt::Last).label(), "2VM-IMPlast");
    }

    #[test]
    fn unknown_function_is_rejected() {
        let rf = sample_randomfun();
        assert!(matches!(
            apply(&rf.program, "nope", VmConfig::plain(1)),
            Err(VmError::UnknownFunction(_))
        ));
    }
}
