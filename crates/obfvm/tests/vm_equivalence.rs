//! Tests for the Tigress-style VM obfuscation baseline: semantic
//! preservation across layers and implicit-VPC settings, label naming of
//! Table I, nesting cost growth, and per-program ISA randomization.

use raindrop_machine::Emulator;
use raindrop_obfvm::{apply, ImplicitAt, VmConfig, VmError};
use raindrop_synth::minic::{BinOp, Expr, Function, Program, Stmt};
use raindrop_synth::{
    codegen, generate_randomfun, paper_structures, Goal, Interp, RandomFunConfig,
};

fn sample_program() -> Program {
    // f(x) = sum of (x ^ i) * 3 for i in 0..10, with a data-dependent branch.
    let f = Function {
        name: "target".into(),
        params: 1,
        locals: 2,
        body: vec![
            Stmt::Assign(0, Expr::c(0)),
            Stmt::Assign(1, Expr::c(0)),
            Stmt::While(
                Expr::bin(BinOp::Lt, Expr::Var(1), Expr::c(10)),
                vec![
                    Stmt::Assign(
                        0,
                        Expr::bin(
                            BinOp::Add,
                            Expr::Var(0),
                            Expr::bin(
                                BinOp::Mul,
                                Expr::bin(BinOp::Xor, Expr::Arg(0), Expr::Var(1)),
                                Expr::c(3),
                            ),
                        ),
                    ),
                    Stmt::Assign(1, Expr::bin(BinOp::Add, Expr::Var(1), Expr::c(1))),
                ],
            ),
            Stmt::If(
                Expr::bin(BinOp::Gt, Expr::Var(0), Expr::c(1000)),
                vec![Stmt::Return(Expr::bin(BinOp::Sub, Expr::Var(0), Expr::c(1000)))],
                vec![Stmt::Return(Expr::Var(0))],
            ),
        ],
    };
    Program::new().with_function(f)
}

fn run_native(program: &Program, func: &str, x: u64) -> u64 {
    let mut interp = Interp::new(program);
    interp.call(func, &[x]).unwrap()
}

fn run_compiled(program: &Program, func: &str, x: u64) -> (u64, u64) {
    let image = codegen::compile(program).unwrap();
    let mut emu = Emulator::new(&image);
    emu.set_budget(50_000_000_000);
    let r = emu.call_named(&image, func, &[x]).unwrap();
    (r, emu.stats().instructions)
}

#[test]
fn every_implicit_setting_preserves_semantics_at_one_layer() {
    let program = sample_program();
    let inputs = [0u64, 7, 12345];
    let expected: Vec<u64> = inputs.iter().map(|x| run_native(&program, "target", *x)).collect();

    for implicit in [ImplicitAt::None, ImplicitAt::First, ImplicitAt::Last, ImplicitAt::All] {
        let cfg = VmConfig { layers: 1, implicit, seed: 11 };
        let virtualized = apply(&program, "target", cfg).unwrap();
        for (x, want) in inputs.iter().zip(&expected) {
            let (got, _) = run_compiled(&virtualized, "target", *x);
            assert_eq!(got, *want, "{} diverges on {x}", cfg.label());
        }
    }
}

#[test]
fn nested_virtualization_preserves_semantics() {
    let program = sample_program();
    let inputs = [0u64, 12345];
    for implicit in [ImplicitAt::None, ImplicitAt::Last] {
        let cfg = VmConfig { layers: 2, implicit, seed: 11 };
        let virtualized = apply(&program, "target", cfg).unwrap();
        for x in inputs {
            let (got, _) = run_compiled(&virtualized, "target", x);
            assert_eq!(got, run_native(&program, "target", x), "{} diverges on {x}", cfg.label());
        }
    }
}

#[test]
fn labels_match_table_i_terminology() {
    assert_eq!(VmConfig::plain(2).label(), "2VM");
    assert_eq!(VmConfig::with_implicit(1, ImplicitAt::All).label(), "1VM-IMPall");
    assert_eq!(VmConfig::with_implicit(3, ImplicitAt::First).label(), "3VM-IMPfirst");
    assert_eq!(VmConfig::with_implicit(2, ImplicitAt::Last).label(), "2VM-IMPlast");
}

#[test]
fn virtualization_cost_grows_with_nesting_and_implicit_flows() {
    let program = sample_program();
    let (_, native_cost) = run_compiled(&program, "target", 7);

    let vm1 = apply(&program, "target", VmConfig::plain(1)).unwrap();
    let (_, vm1_cost) = run_compiled(&vm1, "target", 7);
    let vm2 = apply(&program, "target", VmConfig::plain(2)).unwrap();
    let (_, vm2_cost) = run_compiled(&vm2, "target", 7);
    let vm2_imp = apply(&program, "target", VmConfig::with_implicit(2, ImplicitAt::Last)).unwrap();
    let (_, vm2_imp_cost) = run_compiled(&vm2_imp, "target", 7);

    assert!(vm1_cost > native_cost * 3, "one VM layer costs at least a few dispatches per op");
    assert!(vm2_cost > vm1_cost * 3, "nesting multiplies the interpretation overhead");
    assert!(vm2_imp_cost > vm2_cost, "implicit VPC loads add further work");
}

#[test]
fn different_seeds_randomize_the_bytecode_encoding() {
    let program = sample_program();
    let a = apply(&program, "target", VmConfig { layers: 1, implicit: ImplicitAt::None, seed: 1 })
        .unwrap();
    let b = apply(&program, "target", VmConfig { layers: 1, implicit: ImplicitAt::None, seed: 2 })
        .unwrap();
    // The generated programs (bytecode tables and/or handler order) differ,
    // but both behave like the original.
    assert_ne!(a, b, "per-program random instruction sets");
    for x in [3u64, 99] {
        assert_eq!(run_compiled(&a, "target", x).0, run_native(&program, "target", x));
        assert_eq!(run_compiled(&b, "target", x).0, run_native(&program, "target", x));
    }
}

#[test]
fn virtualizing_an_unknown_function_is_an_error() {
    let program = sample_program();
    let err = apply(&program, "missing", VmConfig::plain(1)).unwrap_err();
    assert!(matches!(err, VmError::UnknownFunction(_) | VmError::Unsupported(_)), "{err:?}");
}

#[test]
fn randomfuns_survive_virtualization_and_keep_their_secret() {
    let (name, structure) = paper_structures().into_iter().next().unwrap();
    let rf = generate_randomfun(RandomFunConfig {
        structure,
        structure_name: name,
        input_size: 1,
        seed: 5,
        goal: Goal::SecretFinding,
        loop_size: 2,
    });
    let vm = apply(&rf.program, &rf.name, VmConfig::with_implicit(1, ImplicitAt::All)).unwrap();
    let image = codegen::compile(&vm).unwrap();
    let mut emu = Emulator::new(&image);
    emu.set_budget(20_000_000_000);
    assert_eq!(
        emu.call_named(&image, &rf.name, &[rf.secret_input]).unwrap(),
        1,
        "the virtualized point test still accepts the secret"
    );
    let mut emu = Emulator::new(&image);
    emu.set_budget(20_000_000_000);
    let other = (rf.secret_input ^ 1) & rf.input_mask();
    if other != rf.secret_input {
        assert_eq!(emu.call_named(&image, &rf.name, &[other]).unwrap(), 0);
    }
}

#[test]
fn vm_and_rop_obfuscation_compose_like_section_iv_c_claims() {
    // The paper notes the rewriter could ingest code already protected by
    // Tigress VM obfuscation. Reproduce that: virtualize first, compile,
    // then ROP-rewrite the virtualized function.
    use raindrop::{Rewriter, RopConfig};
    let program = sample_program();
    let vm = apply(&program, "target", VmConfig::plain(1)).unwrap();
    let mut image = codegen::compile(&vm).unwrap();
    let original = image.clone();
    let mut rewriter = Rewriter::new(RopConfig::ropk(0.05).with_seed(3));
    rewriter.rewrite_function(&mut image, "target").unwrap();
    for x in [0u64, 7, 12345] {
        let mut e_vm = Emulator::new(&original);
        e_vm.set_budget(50_000_000_000);
        let mut e_both = Emulator::new(&image);
        e_both.set_budget(50_000_000_000);
        let want = e_vm.call_named(&original, "target", &[x]).unwrap();
        assert_eq!(want, run_native(&program, "target", x));
        assert_eq!(e_both.call_named(&image, "target", &[x]).unwrap(), want);
    }
}
