//! Register and flag liveness analysis.
//!
//! A backward dataflow analysis over the reconstructed CFG. The ROP rewriter
//! uses its results in three places, mirroring §IV-B of the paper:
//!
//! * roplets are annotated with the registers live *after* the original
//!   instruction, so the register allocator knows which registers are scratch
//!   and which must be preserved or spilled;
//! * the flags-liveness component identifies the few program points where a
//!   later instruction may read the condition flags, so the rewriter spills
//!   and restores the status register only when gadget-induced pollution
//!   would actually be observable;
//! * P3 pairs a *dead* register with an input-derived one when building its
//!   opaque recomputations.

use crate::cfg::{BlockId, Cfg, Terminator};
use raindrop_machine::{Inst, Reg, RegSet};

/// Per-instruction liveness facts for one function.
#[derive(Debug, Clone, PartialEq)]
pub struct Liveness {
    /// `live_in[b]` — registers live on entry to block `b`.
    pub live_in: Vec<RegSet>,
    /// `live_out[b]` — registers live on exit from block `b`.
    pub live_out: Vec<RegSet>,
    /// `live_after[b][i]` — registers live immediately after instruction `i`
    /// of block `b`.
    pub live_after: Vec<Vec<RegSet>>,
    /// `flags_live_after[b][i]` — whether the condition flags are live
    /// immediately after instruction `i` of block `b`.
    pub flags_live_after: Vec<Vec<bool>>,
}

/// Register use/def sets of one instruction, with calls modeled by the ABI:
/// a call reads the argument registers and clobbers the caller-saved set.
pub fn use_def(inst: &Inst) -> (RegSet, RegSet) {
    if inst.is_call() {
        let mut uses = RegSet::from_regs(Reg::ARGS);
        uses.insert(Reg::Rsp);
        if let Inst::CallReg(r) = inst {
            uses.insert(*r);
        }
        let mut defs = RegSet::from_regs(Reg::CALLER_SAVED);
        defs.insert(Reg::Rsp);
        (uses, defs)
    } else {
        (inst.regs_read(), inst.regs_written())
    }
}

/// Registers considered live at every function exit: the return value, the
/// stack/frame pointers and the callee-saved set the caller expects back.
pub fn exit_live_set() -> RegSet {
    let mut s = RegSet::from_regs(Reg::CALLEE_SAVED);
    s.insert(Reg::Rax);
    s.insert(Reg::Rsp);
    s
}

/// Computes register and flags liveness for `cfg`.
pub fn analyze(cfg: &Cfg) -> Liveness {
    let n = cfg.blocks.len();
    let preds = cfg.predecessors();
    let _ = &preds;

    // Per-block use/def summaries.
    let mut block_use = vec![RegSet::new(); n];
    let mut block_def = vec![RegSet::new(); n];
    for b in &cfg.blocks {
        let mut used = RegSet::new();
        let mut defined = RegSet::new();
        for (_, inst) in &b.insts {
            let (u, d) = use_def(inst);
            used = used.union(u.difference(defined));
            defined = defined.union(d);
        }
        block_use[b.id.0] = used;
        block_def[b.id.0] = defined;
    }

    let mut live_in = vec![RegSet::new(); n];
    let mut live_out = vec![RegSet::new(); n];

    // Iterate to a fixed point (reverse iteration order converges quickly on
    // reducible CFGs; correctness does not depend on the order).
    let mut changed = true;
    while changed {
        changed = false;
        for b in cfg.blocks.iter().rev() {
            let mut out = RegSet::new();
            match &b.term {
                Terminator::Return => out = exit_live_set(),
                t => {
                    for s in t.successors() {
                        out = out.union(live_in[s.0]);
                    }
                }
            }
            let inn = block_use[b.id.0].union(out.difference(block_def[b.id.0]));
            if out != live_out[b.id.0] || inn != live_in[b.id.0] {
                live_out[b.id.0] = out;
                live_in[b.id.0] = inn;
                changed = true;
            }
        }
    }

    // Per-instruction liveness within each block, walking backwards from the
    // block's live-out set. Flags: live at block exit iff some successor's
    // first flag-reading instruction precedes any flag write; computed with
    // the same backward fixpoint at block granularity first.
    let mut flags_in = vec![false; n];
    let mut flags_out = vec![false; n];
    let mut block_flags_use = vec![false; n];
    let mut block_flags_def = vec![false; n];
    for b in &cfg.blocks {
        let mut used = false;
        let mut defined = false;
        for (_, inst) in &b.insts {
            if inst.reads_flags() && !defined {
                used = true;
            }
            if inst.writes_flags() || inst.is_call() {
                defined = true;
            }
        }
        block_flags_use[b.id.0] = used;
        block_flags_def[b.id.0] = defined;
    }
    let mut changed = true;
    while changed {
        changed = false;
        for b in cfg.blocks.iter().rev() {
            let out = match &b.term {
                Terminator::Return => false,
                t => t.successors().iter().any(|s| flags_in[s.0]),
            };
            let inn = block_flags_use[b.id.0] || (out && !block_flags_def[b.id.0]);
            if out != flags_out[b.id.0] || inn != flags_in[b.id.0] {
                flags_out[b.id.0] = out;
                flags_in[b.id.0] = inn;
                changed = true;
            }
        }
    }

    let mut live_after = Vec::with_capacity(n);
    let mut flags_live_after = Vec::with_capacity(n);
    for b in &cfg.blocks {
        let mut regs_after = vec![RegSet::new(); b.insts.len()];
        let mut flags_after = vec![false; b.insts.len()];
        let mut live = live_out[b.id.0];
        let mut fl = flags_out[b.id.0];
        for (i, (_, inst)) in b.insts.iter().enumerate().rev() {
            regs_after[i] = live;
            flags_after[i] = fl;
            let (u, d) = use_def(inst);
            live = u.union(live.difference(d));
            if inst.writes_flags() || inst.is_call() {
                fl = false;
            }
            if inst.reads_flags() {
                fl = true;
            }
        }
        live_after.push(regs_after);
        flags_live_after.push(flags_after);
    }

    Liveness { live_in, live_out, live_after, flags_live_after }
}

impl Liveness {
    /// Registers live after instruction `i` of block `b`.
    pub fn after(&self, b: BlockId, i: usize) -> RegSet {
        self.live_after[b.0][i]
    }

    /// Registers that are *dead* (free to clobber) after instruction `i` of
    /// block `b`, excluding the stack pointer.
    pub fn dead_after(&self, b: BlockId, i: usize) -> RegSet {
        let mut dead = RegSet::FULL.difference(self.live_after[b.0][i]);
        dead.remove(Reg::Rsp);
        dead
    }

    /// Whether the flags are live after instruction `i` of block `b`.
    pub fn flags_after(&self, b: BlockId, i: usize) -> bool {
        self.flags_live_after[b.0][i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use raindrop_machine::{AluOp, Assembler, Cond, ImageBuilder, Reg};

    fn analyze_asm(build: impl FnOnce(&mut Assembler)) -> (Cfg, Liveness) {
        let mut a = Assembler::new();
        build(&mut a);
        let mut b = ImageBuilder::new();
        b.add_function("f", a);
        let img = b.build().unwrap();
        let cfg = cfg::reconstruct(&img, "f").unwrap();
        let live = analyze(&cfg);
        (cfg, live)
    }

    #[test]
    fn straight_line_liveness() {
        // rax = rdi; rbx unused afterwards.
        let (cfg, live) = analyze_asm(|a| {
            a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
                .inst(Inst::MovRR(Reg::Rcx, Reg::Rax))
                .inst(Inst::MovRR(Reg::Rax, Reg::Rcx))
                .inst(Inst::Ret);
        });
        let b = cfg.entry();
        // rdi is live on entry, dead after the first instruction.
        assert!(live.live_in[b.0].contains(Reg::Rdi));
        assert!(!live.after(b, 0).contains(Reg::Rdi));
        // rcx is live after inst 1 (read by inst 2).
        assert!(live.after(b, 1).contains(Reg::Rcx));
        // rax is live at exit (return value).
        assert!(live.after(b, 3).contains(Reg::Rax));
        // r10 is dead everywhere.
        assert!(live.dead_after(b, 0).contains(Reg::R10));
        assert!(!live.dead_after(b, 0).contains(Reg::Rsp));
    }

    #[test]
    fn branch_merges_liveness_from_both_successors() {
        let (cfg, live) = analyze_asm(|a| {
            let els = a.new_label();
            let join = a.new_label();
            a.inst(Inst::CmpI(Reg::Rdi, 0));
            a.jcc(Cond::Ne, els);
            a.inst(Inst::MovRR(Reg::Rax, Reg::Rsi)); // uses rsi on one path
            a.jmp(join);
            a.bind(els);
            a.inst(Inst::MovRR(Reg::Rax, Reg::Rdx)); // uses rdx on the other
            a.bind(join);
            a.inst(Inst::Ret);
        });
        let entry = cfg.entry();
        assert!(live.live_in[entry.0].contains(Reg::Rsi));
        assert!(live.live_in[entry.0].contains(Reg::Rdx));
        assert!(live.live_in[entry.0].contains(Reg::Rdi));
    }

    #[test]
    fn flags_liveness_spans_interleaved_instructions() {
        // cmp sets the flags; the mov in between must not report flags dead.
        let (cfg, live) = analyze_asm(|a| {
            let l = a.new_label();
            a.inst(Inst::CmpI(Reg::Rdi, 5));
            a.inst(Inst::MovRR(Reg::Rcx, Reg::Rsi));
            a.jcc(Cond::E, l);
            a.inst(Inst::MovRI(Reg::Rax, 0));
            a.bind(l);
            a.inst(Inst::Ret);
        });
        let b = cfg.entry();
        assert!(live.flags_after(b, 0), "flags live after cmp");
        assert!(live.flags_after(b, 1), "flags live across the mov");
        assert!(!live.flags_after(b, 2), "flags dead after the branch");
    }

    #[test]
    fn call_clobbers_caller_saved_registers() {
        let (cfg, live) = analyze_asm(|a| {
            a.inst(Inst::MovRI(Reg::R10, 1));
            a.call_sym("f") // self-call suffices for the ABI model
                .inst(Inst::MovRR(Reg::Rax, Reg::Rbx))
                .inst(Inst::Ret);
        });
        let b = cfg.entry();
        // r10 written before the call is not live across it (clobbered).
        assert!(!live.after(b, 1).contains(Reg::R10));
        // rbx (callee-saved) read after the call is live before it.
        assert!(live.live_in[b.0].contains(Reg::Rbx));
        // Argument registers are conservatively live right before the call.
        let (uses, defs) = use_def(&Inst::Call(0));
        assert!(uses.contains(Reg::Rdi));
        assert!(defs.contains(Reg::R11));
        assert!(!defs.contains(Reg::Rbx));
    }

    #[test]
    fn loop_keeps_induction_variable_live() {
        let (cfg, live) = analyze_asm(|a| {
            let top = a.new_label();
            let done = a.new_label();
            a.inst(Inst::MovRI(Reg::Rax, 0));
            a.bind(top);
            a.inst(Inst::CmpI(Reg::Rdi, 0));
            a.jcc(Cond::E, done);
            a.inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rdi));
            a.inst(Inst::AluI(AluOp::Sub, Reg::Rdi, 1));
            a.jmp(top);
            a.bind(done);
            a.inst(Inst::Ret);
        });
        // rdi must be live at the loop header (read by cmp and body).
        let header = cfg
            .blocks
            .iter()
            .find(|b| matches!(b.insts.first(), Some((_, Inst::CmpI(Reg::Rdi, 0)))))
            .unwrap();
        assert!(live.live_in[header.id.0].contains(Reg::Rdi));
        assert!(live.live_in[header.id.0].contains(Reg::Rax));
    }
}
