//! Gadget-semantics summaries and stack-delta abstract interpretation over
//! ROP chain data.
//!
//! This module is the *attacker's* static model of a chain-encoded function
//! (the evaluation of §VII-B: what Ghidra/angr-class tooling can recover
//! without running anything). It deliberately sees only what a static tool
//! sees — the raw bytes of the image. The symbolic chain the rewriter kept
//! for its own audit (`raindrop::chain::Chain`) is *not* consulted here.
//!
//! Two layers:
//!
//! * [`GadgetSummary`] — a per-gadget transfer function computed from the
//!   decoded instruction sequence at a text address: stack delta, pop
//!   destinations in order, read/written registers, flag effects, memory
//!   accesses, and how the gadget transfers control onwards.
//! * [`ChainWalker`] — a worklist abstract interpreter that treats the
//!   stack pointer as a symbolic offset into the chain and tracks
//!   register contents as [`AbsVal`] constants. Unconditional in-chain
//!   branches (`pop t, δ; add rsp, t`) are followed because `t` is a
//!   known constant; conditional branches fork both the cmov-taken and
//!   fall-through values; anything data-dependent (the P1 opaque-array
//!   loads, input-derived cmovs) degrades to [`AbsVal::Unknown`] and halts
//!   that path — which is precisely the paper's point.

use crate::cfg;
use raindrop_machine::{decode, AluOp, Image, Inst, Reg, RegSet};
use std::collections::BTreeSet;

/// Upper bound on the instructions decoded per gadget. Real gadgets are a
/// handful of instructions; hitting the bound means we are decoding
/// something that is not a gadget.
const MAX_GADGET_INSTS: usize = 32;

/// Upper bound on gadget executions per walk, so constant loops and
/// corrupted chains terminate (forked paths share the budget).
const MAX_WALK_GADGETS: usize = 1 << 16;

/// How a decoded gadget hands control onwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GadgetExit {
    /// Ends in `ret`: control continues at the next chain slot.
    Ret,
    /// Ends in `jmp reg` (the stack-switching native-call gadget).
    JmpReg(Reg),
}

/// A static transfer-function summary of one gadget, computed purely from
/// the bytes at its address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GadgetSummary {
    /// Address of the first instruction.
    pub addr: u64,
    /// The decoded instructions, excluding the terminating `ret`/`jmp reg`.
    pub insts: Vec<Inst>,
    /// Destination registers of the `pop` instructions, in execution order.
    pub pops: Vec<Reg>,
    /// Chain slots the gadget consumes beyond its own address word — the
    /// static part of its stack delta. `add rsp, reg` contributes
    /// dynamically and is reported via [`GadgetSummary::sp_add`].
    pub static_slots: usize,
    /// The register an `add rsp, reg` adds to the stack pointer, if the
    /// gadget performs one (the ROP branch primitive).
    pub sp_add: Option<Reg>,
    /// `mov rsp, [reg]` — the unpivot that ends a chain.
    pub sp_load: bool,
    /// Registers read by any instruction of the gadget (excluding `rsp`).
    pub reads: RegSet,
    /// Registers written by any instruction of the gadget (excluding `rsp`).
    pub writes: RegSet,
    /// Whether any instruction writes the condition flags.
    pub writes_flags: bool,
    /// Whether any instruction reads the condition flags (cmov/setcc).
    pub reads_flags: bool,
    /// Whether the gadget loads from non-stack memory.
    pub mem_reads: bool,
    /// Whether the gadget stores to non-stack memory.
    pub mem_writes: bool,
    /// How the gadget exits.
    pub exit: GadgetExit,
}

/// Why a [`GadgetSummary`] could not be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SummaryError {
    /// The address is outside the image's text section.
    OutsideText(u64),
    /// A byte sequence that does not decode as an instruction.
    Undecodable {
        /// Address of the offending bytes.
        addr: u64,
    },
    /// No `ret`/`jmp reg` within the instruction-count cap
    /// (`MAX_GADGET_INSTS`).
    NoExit(u64),
}

/// Decodes the instruction sequence at `addr` and summarizes its transfer
/// function.
///
/// # Errors
///
/// Fails when `addr` is outside text, the bytes do not decode, or no
/// `ret`/`jmp reg` terminator is found within a small bound.
pub fn summarize(image: &Image, addr: u64) -> Result<GadgetSummary, SummaryError> {
    if !image.in_text(addr) {
        return Err(SummaryError::OutsideText(addr));
    }
    let mut insts = Vec::new();
    let mut at = addr;
    let exit = loop {
        if insts.len() >= MAX_GADGET_INSTS {
            return Err(SummaryError::NoExit(addr));
        }
        let remaining = (image.text_base + image.text.len() as u64).saturating_sub(at);
        let slice = image
            .text_slice(at, remaining.min(16) as usize)
            .map_err(|_| SummaryError::OutsideText(at))?;
        let (inst, len) = decode(slice).map_err(|_| SummaryError::Undecodable { addr: at })?;
        at += len as u64;
        match inst {
            Inst::Ret => break GadgetExit::Ret,
            Inst::JmpReg(r) => break GadgetExit::JmpReg(r),
            _ => insts.push(inst),
        }
    };

    let mut summary = GadgetSummary {
        addr,
        pops: Vec::new(),
        static_slots: 0,
        sp_add: None,
        sp_load: false,
        reads: RegSet::EMPTY,
        writes: RegSet::EMPTY,
        writes_flags: false,
        reads_flags: false,
        mem_reads: false,
        mem_writes: false,
        exit,
        insts: Vec::new(),
    };
    for inst in &insts {
        match *inst {
            Inst::Pop(dst) => {
                summary.pops.push(dst);
                summary.static_slots += 1;
            }
            Inst::Alu(AluOp::Add, Reg::Rsp, src) => summary.sp_add = Some(src),
            Inst::Load(Reg::Rsp, _) => summary.sp_load = true,
            _ => {}
        }
        summary.reads = summary.reads.union(inst.regs_read());
        summary.writes = summary.writes.union(inst.regs_written());
        summary.writes_flags |= inst.writes_flags();
        summary.reads_flags |= inst.reads_flags();
        let mem = inst.touches_memory();
        match inst {
            Inst::Store(..) | Inst::StoreI(..) | Inst::StoreB(..) | Inst::AluStore(..) => {
                summary.mem_writes |= mem;
            }
            Inst::XchgRM(..) => {
                summary.mem_reads |= mem;
                summary.mem_writes |= mem;
            }
            _ => summary.mem_reads |= mem,
        }
    }
    summary.reads.remove(Reg::Rsp);
    summary.writes.remove(Reg::Rsp);
    summary.insts = insts;
    Ok(summary)
}

/// An abstract register value tracked by the walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// A known 64-bit constant (read from the chain or computed from
    /// constants).
    Const(u64),
    /// Anything else: input-dependent, memory-dependent, or joined.
    Unknown,
}

impl AbsVal {
    /// The constant, if known.
    pub fn constant(self) -> Option<u64> {
        match self {
            AbsVal::Const(v) => Some(v),
            AbsVal::Unknown => None,
        }
    }
}

/// Why one abstract path of the walk stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// `mov rsp, [reg]` — the unpivot back to native code; a normal end.
    Unpivot,
    /// `xchg rsp, [..]; jmp reg` — a stack-switched native call. The walker
    /// cannot know where the chain resumes without running the call.
    NativeCall,
    /// `add rsp, reg` with an unknown register: an opaque branch (P1
    /// displacement, input-dependent cmov, …). The static horizon.
    OpaqueBranch {
        /// Chain offset of the branching gadget's address word.
        offset: u64,
    },
    /// The next slot's gadget address did not summarize (not text, not
    /// decodable, no terminator).
    BadGadget {
        /// Chain offset of the offending slot.
        offset: u64,
        /// The value that was not a usable gadget address.
        value: u64,
    },
    /// The walk left the chain's byte range.
    OutOfChain {
        /// The out-of-range chain offset.
        offset: i64,
    },
    /// The per-walk gadget budget was exhausted (cycle protection).
    Budget,
}

/// Statistics of one blind chain walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainWalk {
    /// Distinct chain offsets whose gadget was visited.
    pub visited: usize,
    /// Total gadget executions across all forked paths.
    pub steps: usize,
    /// Primary instructions recovered along visited gadgets (the material
    /// a lifter could hand to a decompiler).
    pub recovered_insts: usize,
    /// Every reason any path stopped, deduplicated.
    pub stops: Vec<StopReason>,
    /// Whether any path reached the unpivot (a complete straight-line
    /// reconstruction exists).
    pub reached_unpivot: bool,
}

impl ChainWalk {
    /// Whether the walk hit an opaque branch anywhere — the static
    /// analysis horizon the paper's predicates are designed to force.
    pub fn hit_opaque(&self) -> bool {
        self.stops.iter().any(|s| matches!(s, StopReason::OpaqueBranch { .. }))
    }
}

#[derive(Clone)]
struct WalkState {
    /// Byte offset of the next slot to execute, relative to the chain base.
    offset: i64,
    regs: [AbsVal; 16],
}

/// A stack-delta abstract interpreter over chain bytes in an image.
///
/// The stack pointer is symbolic: `chain_base + offset`. Forks happen on
/// `cmov` (both values) so plain P2-free conditional branches explore both
/// arms when their displacements are constants.
pub struct ChainWalker<'a> {
    image: &'a Image,
    chain_addr: u64,
    chain_len: usize,
}

impl<'a> ChainWalker<'a> {
    /// A walker over `chain_len` bytes of chain data at `chain_addr`.
    pub fn new(image: &'a Image, chain_addr: u64, chain_len: usize) -> ChainWalker<'a> {
        ChainWalker { image, chain_addr, chain_len }
    }

    fn slot(&self, offset: i64) -> Option<u64> {
        if offset < 0 || offset as usize + 8 > self.chain_len {
            return None;
        }
        let bytes = self.image.data_slice(self.chain_addr + offset as u64, 8).ok()?;
        Some(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Runs the abstract walk from the chain entry (offset 0).
    pub fn walk(&self) -> ChainWalk {
        let mut work = vec![WalkState { offset: 0, regs: [AbsVal::Unknown; 16] }];
        let mut visited: BTreeSet<i64> = BTreeSet::new();
        let mut recovered: BTreeSet<u64> = BTreeSet::new();
        let mut stops: Vec<StopReason> = Vec::new();
        let mut steps = 0usize;
        let mut reached_unpivot = false;
        let stop = |stops: &mut Vec<StopReason>, r: StopReason| {
            if !stops.contains(&r) {
                stops.push(r);
            }
        };

        while let Some(mut state) = work.pop() {
            loop {
                if steps >= MAX_WALK_GADGETS {
                    stop(&mut stops, StopReason::Budget);
                    break;
                }
                let Some(gaddr) = self.slot(state.offset) else {
                    stop(&mut stops, StopReason::OutOfChain { offset: state.offset });
                    break;
                };
                let summary = match summarize(self.image, gaddr) {
                    Ok(s) => s,
                    Err(_) => {
                        stop(
                            &mut stops,
                            StopReason::BadGadget { offset: state.offset as u64, value: gaddr },
                        );
                        break;
                    }
                };
                steps += 1;
                let first_visit = visited.insert(state.offset);
                if first_visit {
                    recovered.insert(summary.addr);
                }
                let branch_offset = state.offset as u64;
                // `ret` consumed the address word.
                state.offset += 8;
                // Re-walking an already visited offset only continues if
                // we still have budget; constants are path-sensitive so we
                // cannot memoize states, but the budget bounds the work.
                let forks = self.apply(&summary, &mut state);
                for f in forks {
                    work.push(f);
                }
                if summary.sp_load {
                    reached_unpivot = true;
                    stop(&mut stops, StopReason::Unpivot);
                    break;
                }
                if let GadgetExit::JmpReg(_) = summary.exit {
                    stop(&mut stops, StopReason::NativeCall);
                    break;
                }
                if let Some(src) = summary.sp_add {
                    match state.regs[src.index()] {
                        AbsVal::Const(delta) => {
                            state.offset += delta as i64;
                        }
                        AbsVal::Unknown => {
                            stop(&mut stops, StopReason::OpaqueBranch { offset: branch_offset });
                            break;
                        }
                    }
                }
            }
        }

        ChainWalk {
            visited: visited.len(),
            steps,
            recovered_insts: recovered
                .iter()
                .filter_map(|addr| summarize(self.image, *addr).ok())
                .map(|s| s.insts.len())
                .sum(),
            stops,
            reached_unpivot,
        }
    }

    /// Applies one gadget's transfer function to `state`, consuming pop
    /// slots and interpreting constant-foldable register operations.
    /// Returns forked states (cmov with a known flag-free condition is
    /// forked both ways).
    fn apply(&self, summary: &GadgetSummary, state: &mut WalkState) -> Vec<WalkState> {
        let mut forks = Vec::new();
        for inst in &summary.insts {
            match *inst {
                Inst::Pop(dst) => {
                    let v = self.slot(state.offset);
                    state.regs[dst.index()] = v.map(AbsVal::Const).unwrap_or(AbsVal::Unknown);
                    state.offset += 8;
                }
                Inst::MovRR(dst, src) => {
                    state.regs[dst.index()] = state.regs[src.index()];
                }
                Inst::MovRI(dst, imm) => {
                    state.regs[dst.index()] = AbsVal::Const(imm as u64);
                }
                Inst::Alu(op, dst, src) => {
                    let v = match (state.regs[dst.index()], state.regs[src.index()]) {
                        (AbsVal::Const(a), AbsVal::Const(b)) => {
                            alu_const(op, a, b).map(AbsVal::Const).unwrap_or(AbsVal::Unknown)
                        }
                        _ => AbsVal::Unknown,
                    };
                    if dst != Reg::Rsp {
                        state.regs[dst.index()] = v;
                    }
                }
                Inst::Mul(dst, src) => {
                    state.regs[dst.index()] =
                        match (state.regs[dst.index()], state.regs[src.index()]) {
                            (AbsVal::Const(a), AbsVal::Const(b)) => {
                                AbsVal::Const(a.wrapping_mul(b))
                            }
                            _ => AbsVal::Unknown,
                        };
                }
                Inst::Rem(dst, src) => {
                    state.regs[dst.index()] =
                        match (state.regs[dst.index()], state.regs[src.index()]) {
                            (AbsVal::Const(a), AbsVal::Const(b)) if b != 0 => AbsVal::Const(a % b),
                            _ => AbsVal::Unknown,
                        };
                }
                Inst::Cmov(_, dst, src) => {
                    // The flag state is not tracked: fork the taken value,
                    // keep the untaken value on this path.
                    let mut taken = state.clone();
                    taken.regs[dst.index()] = taken.regs[src.index()];
                    forks.push(taken);
                }
                Inst::Set(_, dst) => {
                    // setcc materializes an unknown 0/1: fork both.
                    let mut one = state.clone();
                    one.regs[dst.index()] = AbsVal::Const(1);
                    forks.push(one);
                    state.regs[dst.index()] = AbsVal::Const(0);
                }
                _ => {
                    // Loads (the P1 array!), stores, xchg, shifts through
                    // memory — anything else degrades its destinations.
                    for dst in inst.regs_written().iter() {
                        if dst != Reg::Rsp {
                            state.regs[dst.index()] = AbsVal::Unknown;
                        }
                    }
                }
            }
        }
        forks
    }
}

/// Constant-folds one register-register ALU operation, when its result is
/// deterministic.
fn alu_const(op: AluOp, a: u64, b: u64) -> Option<u64> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        _ => return None,
    })
}

/// Instruction-recovery score of one function body: the multiset fraction
/// of the original's decoded instructions that a linear-sweep disassembly
/// of the (possibly obfuscated) body recovers.
///
/// Native bodies score 1.0 against themselves; a ROP-rewritten body is a
/// pivot stub over `hlt` filler and scores ≈ 0. A VM interpreter body
/// *recalls* most of the original's generic instruction multiset (any
/// large body contains plenty of `mov`/`add`/`push`), so the recall
/// fraction alone overstates what was recovered there — [`precision`]
/// (`matched / decoded`) collapses for the interpreter's thousands of
/// unrelated instructions and is the discriminating number.
///
/// [`precision`]: RecoveryScore::precision
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryScore {
    /// Instructions in the original (ground-truth) body.
    pub original: usize,
    /// Instructions a linear sweep decodes from the obfuscated body.
    pub decoded: usize,
    /// Multiset-intersection size between the two instruction lists.
    pub matched: usize,
    /// Whether CFG reconstruction succeeded on the obfuscated body.
    pub cfg_ok: bool,
    /// Basic blocks the CFG reconstruction found (0 when it failed).
    pub cfg_blocks: usize,
}

impl RecoveryScore {
    /// Recall — `matched / original` (1.0 for an empty original).
    pub fn fraction(&self) -> f64 {
        if self.original == 0 {
            return 1.0;
        }
        self.matched as f64 / self.original as f64
    }

    /// Precision — `matched / decoded` (0.0 when nothing decodes). Near
    /// 1.0 on a native body, near 0 when the sweep decodes a large body
    /// that is not the original (a VM interpreter).
    pub fn precision(&self) -> f64 {
        if self.decoded == 0 {
            return 0.0;
        }
        self.matched as f64 / self.decoded as f64
    }
}

/// Linear-sweep decode of a function body, stopping at the first
/// undecodable byte (what objdump-style tooling recovers).
fn sweep(image: &Image, func: &str) -> Vec<Inst> {
    let Ok(bytes) = image.function_bytes(func) else { return Vec::new() };
    let mut insts = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        match decode(&bytes[at..]) {
            Ok((inst, len)) => {
                insts.push(inst);
                at += len;
            }
            Err(_) => break,
        }
    }
    insts
}

/// Scores what a static disassembler recovers of `func`'s original
/// instruction stream from the `obfuscated` image, against the ground
/// truth in `original`.
pub fn recovery_score(original: &Image, obfuscated: &Image, func: &str) -> RecoveryScore {
    let truth = sweep(original, func);
    let got = sweep(obfuscated, func);
    let mut remaining = got.clone();
    let mut matched = 0usize;
    for inst in &truth {
        if let Some(i) = remaining.iter().position(|g| g == inst) {
            remaining.swap_remove(i);
            matched += 1;
        }
    }
    let (cfg_ok, cfg_blocks) = match cfg::reconstruct(obfuscated, func) {
        Ok(graph) => (true, graph.len()),
        Err(_) => (false, 0),
    };
    RecoveryScore { original: truth.len(), decoded: got.len(), matched, cfg_ok, cfg_blocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_machine::{encode_all, Assembler, Cond, ImageBuilder, Mem};

    fn image_with(insts: &[Inst]) -> (Image, u64) {
        let mut a = Assembler::new();
        a.inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("stub", a);
        let mut img = b.build().unwrap();
        let addr = img.append_text(None, &encode_all(insts));
        (img, addr)
    }

    #[test]
    fn summarize_classifies_pop_gadgets() {
        let (img, addr) = image_with(&[Inst::Pop(Reg::Rax), Inst::Pop(Reg::Rcx), Inst::Ret]);
        let s = summarize(&img, addr).unwrap();
        assert_eq!(s.pops, vec![Reg::Rax, Reg::Rcx]);
        assert_eq!(s.static_slots, 2);
        assert_eq!(s.exit, GadgetExit::Ret);
        assert!(s.writes.contains(Reg::Rax) && s.writes.contains(Reg::Rcx));
        assert!(!s.writes.contains(Reg::Rsp), "rsp is implicit, not reported");
    }

    #[test]
    fn summarize_detects_branch_and_unpivot_shapes() {
        let (img, branch) = image_with(&[Inst::Alu(AluOp::Add, Reg::Rsp, Reg::R10), Inst::Ret]);
        assert_eq!(summarize(&img, branch).unwrap().sp_add, Some(Reg::R10));
        let (img2, unpivot) = image_with(&[Inst::Load(Reg::Rsp, Mem::base(Reg::R10)), Inst::Ret]);
        assert!(summarize(&img2, unpivot).unwrap().sp_load);
    }

    #[test]
    fn summarize_rejects_non_gadget_bytes() {
        let mut a = Assembler::new();
        a.inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("stub", a);
        let mut img = b.build().unwrap();
        let addr = img.append_text(None, &[0xFF; 8]);
        assert!(matches!(summarize(&img, addr), Err(SummaryError::Undecodable { .. })));
        assert!(matches!(summarize(&img, 5), Err(SummaryError::OutsideText(5))));
    }

    /// A hand-built straight-line chain with one unconditional branch is
    /// fully reconstructed: the branch displacement is a chain constant.
    #[test]
    fn walker_follows_constant_branches_to_the_unpivot() {
        let (mut img, pop_rax) = image_with(&[Inst::Pop(Reg::Rax), Inst::Ret]);
        let pop_r10 = img.append_text(None, &encode_all(&[Inst::Pop(Reg::R10), Inst::Ret]));
        let branch = img.append_text(
            None,
            &encode_all(&[Inst::Alu(AluOp::Add, Reg::Rsp, Reg::R10), Inst::Ret]),
        );
        let unpivot = img.append_text(
            None,
            &encode_all(&[Inst::Load(Reg::Rsp, Mem::base(Reg::R10)), Inst::Ret]),
        );

        // Layout: [pop_rax][42][pop_r10][16][branch] .. skipped 16 bytes ..
        // [pop_r10][junk][unpivot]
        let mut chain: Vec<u64> = vec![pop_rax, 42, pop_r10, 16, branch, 0xDEAD, 0xBEEF];
        chain.extend([pop_r10, 0x1000, unpivot]);
        let bytes: Vec<u8> = chain.iter().flat_map(|w| w.to_le_bytes()).collect();
        let chain_addr = img.append_data(Some("chain"), &bytes);

        let walk = ChainWalker::new(&img, chain_addr, bytes.len()).walk();
        assert!(walk.reached_unpivot, "stops: {:?}", walk.stops);
        assert!(!walk.hit_opaque());
        // pop_rax, pop_r10, branch, pop_r10, unpivot (the two junk slots
        // were skipped by the branch).
        assert_eq!(walk.visited, 5);
    }

    /// A displacement routed through a memory load (the P1 idiom) is the
    /// walker's horizon: the branch register is unknown.
    #[test]
    fn walker_stops_at_opaque_branches() {
        let (mut img, pop_r11) = image_with(&[Inst::Pop(Reg::R11), Inst::Ret]);
        let load = img.append_text(
            None,
            &encode_all(&[Inst::Load(Reg::R10, Mem::base(Reg::R11)), Inst::Ret]),
        );
        let branch = img.append_text(
            None,
            &encode_all(&[Inst::Alu(AluOp::Add, Reg::Rsp, Reg::R10), Inst::Ret]),
        );

        let array = img.append_data(Some("opaque"), &8u64.to_le_bytes());
        let chain: Vec<u64> = vec![pop_r11, array, load, branch, 0, 0];
        let bytes: Vec<u8> = chain.iter().flat_map(|w| w.to_le_bytes()).collect();
        let chain_addr = img.append_data(Some("chain"), &bytes);

        let walk = ChainWalker::new(&img, chain_addr, bytes.len()).walk();
        assert!(walk.hit_opaque(), "stops: {:?}", walk.stops);
        assert!(!walk.reached_unpivot);
    }

    /// cmov forks both arms, so a two-way constant branch visits both
    /// targets (the shape `pop t1, δ; pop t2, 0; cmovcc t1, t2; add rsp, t1`).
    #[test]
    fn walker_forks_conditional_branches() {
        let (mut img, pop_r10) = image_with(&[Inst::Pop(Reg::R10), Inst::Ret]);
        let pop_r11 = img.append_text(None, &encode_all(&[Inst::Pop(Reg::R11), Inst::Ret]));
        let cmov_branch = img.append_text(
            None,
            &encode_all(&[
                Inst::Cmov(Cond::E, Reg::R10, Reg::R11),
                Inst::Alu(AluOp::Add, Reg::Rsp, Reg::R10),
                Inst::Ret,
            ]),
        );
        let unpivot = img.append_text(
            None,
            &encode_all(&[Inst::Load(Reg::Rsp, Mem::base(Reg::R10)), Inst::Ret]),
        );

        // taken arm (δ=0) lands on the first unpivot; fall-through arm
        // (δ=8) skips it and lands on the second.
        let chain: Vec<u64> = vec![pop_r10, 8, pop_r11, 0, cmov_branch, unpivot, unpivot, 0xFFF7];
        let bytes: Vec<u8> = chain.iter().flat_map(|w| w.to_le_bytes()).collect();
        let chain_addr = img.append_data(Some("chain"), &bytes);

        let walk = ChainWalker::new(&img, chain_addr, bytes.len()).walk();
        assert!(walk.reached_unpivot);
        assert!(walk.steps >= 5, "both arms explored: {walk:?}");
    }

    #[test]
    fn recovery_is_total_on_native_and_zero_on_garbage() {
        let mut a = Assembler::new();
        a.inst(Inst::MovRI(Reg::Rax, 7));
        a.inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rdi));
        a.inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("f", a);
        let original = b.build().unwrap();

        let native = recovery_score(&original, &original, "f");
        assert_eq!(native.fraction(), 1.0);
        assert!(native.cfg_ok);

        let mut wiped = original.clone();
        let addr = wiped.function("f").unwrap().addr;
        let size = wiped.function("f").unwrap().size;
        wiped.patch_text(addr, &vec![0x01u8; size as usize]).unwrap();
        let obf = recovery_score(&original, &wiped, "f");
        assert_eq!(obf.matched, 0);
        assert_eq!(obf.fraction(), 0.0);
    }
}
