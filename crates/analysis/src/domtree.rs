//! Dominator computation.
//!
//! The rewriter uses dominators when choosing program points for the P3
//! predicate (a P3 instance placed in a block dominated by the definition of
//! its symbolic register is guaranteed to see an initialized value), and the
//! attack-side trace simplifier uses them when rebuilding structured control
//! flow from a simplified CFG.

use crate::cfg::{BlockId, Cfg};

/// Immediate-dominator tree of a CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomTree {
    /// `idom[b]` — immediate dominator of block `b` (`None` for the entry
    /// and for unreachable blocks).
    pub idom: Vec<Option<BlockId>>,
}

/// Computes the dominator tree with the classic iterative algorithm
/// (Cooper/Harvey/Kennedy) over the reverse post order.
pub fn compute(cfg: &Cfg) -> DomTree {
    let n = cfg.blocks.len();
    let rpo = cfg.reverse_post_order();
    let mut rpo_index = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        rpo_index[b.0] = i;
    }
    let preds = cfg.predecessors();

    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    let entry = cfg.entry();
    idom[entry.0] = Some(entry);

    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_index[a.0] > rpo_index[b.0] {
                a = idom[a.0].expect("processed block has idom");
            }
            while rpo_index[b.0] > rpo_index[a.0] {
                b = idom[b.0].expect("processed block has idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.0] {
                if idom[p.0].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.0] != Some(ni) {
                    idom[b.0] = Some(ni);
                    changed = true;
                }
            }
        }
    }

    // Normalize: the entry has no immediate dominator.
    idom[entry.0] = None;
    DomTree { idom }
}

impl DomTree {
    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            cur = self.idom[c.0];
        }
        false
    }

    /// The immediate dominator of `b`.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{self, Terminator};
    use raindrop_machine::{Assembler, Cond, ImageBuilder, Inst, Reg};

    #[test]
    fn diamond_dominators() {
        let mut a = Assembler::new();
        let els = a.new_label();
        let join = a.new_label();
        a.inst(Inst::CmpI(Reg::Rdi, 0));
        a.jcc(Cond::Ne, els);
        a.inst(Inst::MovRI(Reg::Rax, 1));
        a.jmp(join);
        a.bind(els);
        a.inst(Inst::MovRI(Reg::Rax, 2));
        a.bind(join);
        a.inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("f", a);
        let img = b.build().unwrap();
        let cfg = cfg::reconstruct(&img, "f").unwrap();
        let dom = compute(&cfg);

        let entry = cfg.entry();
        let join = cfg.blocks.iter().find(|b| matches!(b.term, Terminator::Return)).unwrap().id;
        // The entry dominates everything; neither arm dominates the join.
        for b in &cfg.blocks {
            assert!(dom.dominates(entry, b.id));
        }
        assert_eq!(dom.idom(join), Some(entry));
        for b in &cfg.blocks {
            if b.id != entry && b.id != join {
                assert!(!dom.dominates(b.id, join), "{} should not dominate join", b.id);
            }
        }
        assert_eq!(dom.idom(entry), None);
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut a = Assembler::new();
        let top = a.new_label();
        let done = a.new_label();
        a.inst(Inst::MovRI(Reg::Rax, 0));
        a.bind(top);
        a.inst(Inst::CmpI(Reg::Rdi, 0));
        a.jcc(Cond::E, done);
        a.inst(Inst::AluI(raindrop_machine::AluOp::Sub, Reg::Rdi, 1));
        a.jmp(top);
        a.bind(done);
        a.inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("f", a);
        let img = b.build().unwrap();
        let cfg = cfg::reconstruct(&img, "f").unwrap();
        let dom = compute(&cfg);
        let header =
            cfg.blocks.iter().find(|b| matches!(b.term, Terminator::Branch { .. })).unwrap().id;
        for blk in &cfg.blocks {
            if blk.id != cfg.entry() {
                assert!(dom.dominates(cfg.entry(), blk.id), "entry dominates {}", blk.id);
            }
        }
        // The body (the sub/jmp block) is dominated by the header.
        let body = cfg.blocks.iter().find(|b| matches!(b.term, Terminator::Jump(_))).unwrap().id;
        assert!(dom.dominates(header, body));
        assert!(!dom.dominates(body, header));
    }
}
