//! # raindrop-analysis
//!
//! Binary analyses supporting the ROP rewriter of the *raindrop*
//! reproduction. These stand in for the off-the-shelf tooling the paper
//! leans on (Ghidra/angr/radare2 for CFG reconstruction, angr for liveness
//! and symbolic-register discovery):
//!
//! * [`absint`] — gadget-semantics summaries and stack-delta abstract
//!   interpretation over ROP chain data (the attacker's static model);
//! * [`mod@cfg`] — control-flow-graph reconstruction from function bytes,
//!   including the switch-table heuristic of the paper's appendix;
//! * [`liveness`] — backward register and condition-flag liveness;
//! * [`domtree`] — dominator trees;
//! * [`dataflow`] — forward "input-derived register" analysis used to place
//!   the P3 predicate.
//!
//! # Example
//!
//! ```
//! use raindrop_machine::{Assembler, ImageBuilder, Inst, Reg};
//! use raindrop_analysis::{cfg, liveness};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new();
//! asm.inst(Inst::MovRR(Reg::Rax, Reg::Rdi)).inst(Inst::Ret);
//! let mut builder = ImageBuilder::new();
//! builder.add_function("id", asm);
//! let image = builder.build()?;
//! let graph = cfg::reconstruct(&image, "id")?;
//! let live = liveness::analyze(&graph);
//! assert!(live.live_in[graph.entry().0].contains(Reg::Rdi));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod cfg;
pub mod dataflow;
pub mod domtree;
pub mod liveness;

pub use absint::{
    recovery_score, summarize, AbsVal, ChainWalk, ChainWalker, GadgetExit, GadgetSummary,
    RecoveryScore, StopReason, SummaryError,
};
pub use cfg::{BasicBlock, BlockId, Cfg, CfgError, FuncCode, Terminator};
pub use dataflow::{input_derived, InputDerived};
pub use domtree::{compute as dominators, DomTree};
pub use liveness::{analyze as liveness_analyze, Liveness};
