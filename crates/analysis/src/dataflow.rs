//! Forward dataflow analyses: input-derived ("symbolic") registers.
//!
//! P3 (§V-C of the paper) must be instantiated on registers that hold
//! *input-derived* data which may later flow to the program output —
//! otherwise taint tracking or backward slicing could simply cut the opaque
//! computation away. The paper uses angr's symbolic execution to find such
//! registers; here a forward taint-style dataflow over the CFG serves the
//! same purpose.

use crate::cfg::{BlockId, Cfg};
use crate::liveness::use_def;
use raindrop_machine::{Inst, Reg, RegSet};

/// Which registers hold input-derived values at each program point.
#[derive(Debug, Clone, PartialEq)]
pub struct InputDerived {
    /// `at_entry[b]` — input-derived registers on entry to block `b`.
    pub at_entry: Vec<RegSet>,
    /// `before[b][i]` — input-derived registers immediately before
    /// instruction `i` of block `b`.
    pub before: Vec<Vec<RegSet>>,
}

fn transfer(inst: &Inst, mut derived: RegSet) -> RegSet {
    use Inst::*;
    let propagate = |derived: &RegSet, srcs: RegSet| srcs.iter().any(|r| derived.contains(r));
    match *inst {
        MovRR(d, s) => {
            if derived.contains(s) {
                derived.insert(d);
            } else {
                derived.remove(d);
            }
        }
        MovRI(d, _) => {
            derived.remove(d);
        }
        Load(d, m) | LoadB(d, m) | LoadSxB(d, m) => {
            // A load is derived when its address depends on derived data
            // (table lookups keyed on the input stay tainted).
            if propagate(&derived, m.regs()) {
                derived.insert(d);
            } else {
                derived.remove(d);
            }
        }
        Lea(d, m) => {
            if propagate(&derived, m.regs()) {
                derived.insert(d);
            } else {
                derived.remove(d);
            }
        }
        Alu(_, d, s) | Mul(d, s) | Div(d, s) | Rem(d, s) | ShlR(d, s) | ShrR(d, s) => {
            if derived.contains(d) || derived.contains(s) {
                derived.insert(d);
            }
        }
        AluI(_, d, _) | Shl(d, _) | Shr(d, _) | Sar(d, _) | Neg(d) | Not(d) => {
            // Unary/immediate operations preserve the derived status of d.
            let _ = d;
        }
        AluM(_, d, m) => {
            if propagate(&derived, m.regs()) {
                derived.insert(d);
            }
        }
        MulI(d, s, _) => {
            if derived.contains(s) {
                derived.insert(d);
            } else {
                derived.remove(d);
            }
        }
        Cmov(_, d, s) => {
            if derived.contains(s) {
                derived.insert(d);
            }
        }
        Set(_, d) => {
            // The condition flags are not tracked; conservatively treat the
            // produced boolean as derived (the comparison that set the flags
            // almost always involves the input in our workloads).
            derived.insert(d);
        }
        Pop(d) => {
            derived.remove(d);
        }
        XchgRR(a, b) => {
            let da = derived.contains(a);
            let db = derived.contains(b);
            if da {
                derived.insert(b);
            } else {
                derived.remove(b);
            }
            if db {
                derived.insert(a);
            } else {
                derived.remove(a);
            }
        }
        XchgRM(r, _) => {
            derived.insert(r);
        }
        _ => {
            // Calls clobber the caller-saved registers; the return value is
            // derived when any argument register was.
            if inst.is_call() {
                let args_derived = Reg::ARGS.iter().any(|r| derived.contains(*r));
                let (_, defs) = use_def(inst);
                for r in defs.iter() {
                    derived.remove(r);
                }
                if args_derived {
                    derived.insert(Reg::Rax);
                }
            }
        }
    }
    derived
}

/// Computes the input-derived register sets for `cfg`, seeding the analysis
/// with `inputs` (typically the argument registers actually carrying input
/// bytes).
pub fn input_derived(cfg: &Cfg, inputs: RegSet) -> InputDerived {
    let n = cfg.blocks.len();
    let mut at_entry = vec![RegSet::new(); n];
    at_entry[cfg.entry().0] = inputs;

    let rpo = cfg.reverse_post_order();
    let preds = cfg.predecessors();

    let block_exit = |entry: RegSet, b: BlockId, cfg: &Cfg| -> RegSet {
        let mut cur = entry;
        for (_, inst) in &cfg.block(b).insts {
            cur = transfer(inst, cur);
        }
        cur
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let mut inn = if b == cfg.entry() { inputs } else { RegSet::new() };
            for &p in &preds[b.0] {
                inn = inn.union(block_exit(at_entry[p.0], p, cfg));
            }
            if b == cfg.entry() {
                inn = inn.union(inputs);
            }
            if inn != at_entry[b.0] {
                at_entry[b.0] = inn;
                changed = true;
            }
        }
    }

    let mut before = Vec::with_capacity(n);
    for b in &cfg.blocks {
        let mut cur = at_entry[b.id.0];
        let mut v = Vec::with_capacity(b.insts.len());
        for (_, inst) in &b.insts {
            v.push(cur);
            cur = transfer(inst, cur);
        }
        before.push(v);
    }

    InputDerived { at_entry, before }
}

impl InputDerived {
    /// Input-derived registers immediately before instruction `i` of block
    /// `b`.
    pub fn before(&self, b: BlockId, i: usize) -> RegSet {
        self.before[b.0][i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use raindrop_machine::{AluOp, Assembler, Cond, ImageBuilder, Mem};

    fn analyze(build: impl FnOnce(&mut Assembler), inputs: &[Reg]) -> (Cfg, InputDerived) {
        let mut a = Assembler::new();
        build(&mut a);
        let mut b = ImageBuilder::new();
        b.add_function("f", a);
        let img = b.build().unwrap();
        let cfg = cfg::reconstruct(&img, "f").unwrap();
        let derived = input_derived(&cfg, RegSet::from_regs(inputs.iter().copied()));
        (cfg, derived)
    }

    #[test]
    fn derivation_propagates_through_moves_and_alu() {
        let (cfg, d) = analyze(
            |a| {
                a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi)) // rax derived
                    .inst(Inst::Alu(AluOp::Add, Reg::Rcx, Reg::Rax)) // rcx derived
                    .inst(Inst::MovRI(Reg::Rax, 0)) // rax cleared
                    .inst(Inst::Ret);
            },
            &[Reg::Rdi],
        );
        let b = cfg.entry();
        assert!(d.before(b, 1).contains(Reg::Rax));
        assert!(d.before(b, 2).contains(Reg::Rcx));
        assert!(d.before(b, 3).contains(Reg::Rcx));
        assert!(!d.before(b, 3).contains(Reg::Rax), "constant overwrite clears derivation");
    }

    #[test]
    fn table_lookup_with_derived_index_stays_derived() {
        let (cfg, d) = analyze(
            |a| {
                a.inst(Inst::Load(Reg::Rbx, Mem::base_index(Reg::Rsi, Reg::Rdi, 8, 0)))
                    .inst(Inst::Load(Reg::Rcx, Mem::abs(0x400000)))
                    .inst(Inst::Ret);
            },
            &[Reg::Rdi],
        );
        let b = cfg.entry();
        assert!(d.before(b, 1).contains(Reg::Rbx), "lookup keyed on input is derived");
        assert!(!d.before(b, 2).contains(Reg::Rcx), "constant-address load is not derived");
    }

    #[test]
    fn merge_over_branches_is_a_union() {
        let (cfg, d) = analyze(
            |a| {
                let els = a.new_label();
                let join = a.new_label();
                a.inst(Inst::CmpI(Reg::Rdi, 0));
                a.jcc(Cond::Ne, els);
                a.inst(Inst::MovRR(Reg::Rbx, Reg::Rdi));
                a.jmp(join);
                a.bind(els);
                a.inst(Inst::MovRI(Reg::Rbx, 7));
                a.bind(join);
                a.inst(Inst::MovRR(Reg::Rax, Reg::Rbx));
                a.inst(Inst::Ret);
            },
            &[Reg::Rdi],
        );
        // At the join block, rbx may be derived (one incoming path), so the
        // union keeps it derived.
        let join = cfg
            .blocks
            .iter()
            .find(|b| matches!(b.insts.first(), Some((_, Inst::MovRR(Reg::Rax, Reg::Rbx)))))
            .unwrap();
        assert!(d.at_entry[join.id.0].contains(Reg::Rbx));
    }

    #[test]
    fn call_taints_return_value_when_arguments_are_tainted() {
        let (cfg, d) = analyze(
            |a| {
                a.call_sym("f").inst(Inst::MovRR(Reg::Rbx, Reg::Rax)).inst(Inst::Ret);
            },
            &[Reg::Rdi],
        );
        let b = cfg.entry();
        assert!(d.before(b, 1).contains(Reg::Rax));
        let (cfg2, d2) = analyze(
            |a| {
                a.inst(Inst::MovRI(Reg::Rdi, 1));
                for r in Reg::ARGS.iter().skip(1) {
                    a.inst(Inst::MovRI(*r, 0));
                }
                a.call_sym("f").inst(Inst::MovRR(Reg::Rbx, Reg::Rax)).inst(Inst::Ret);
            },
            &[Reg::Rdi],
        );
        let b2 = cfg2.entry();
        let call_idx = cfg2.block(b2).insts.len() - 2;
        assert!(!d2.before(b2, call_idx).contains(Reg::Rdi), "constant argument not derived");
    }
}
