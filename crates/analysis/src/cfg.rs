//! Control-flow-graph reconstruction from function bytes.
//!
//! This is the reproduction's counterpart of the "CFG reconstruction" element
//! of the rewriter architecture (Fig. 2 of the paper), which the authors
//! delegate to Ghidra/angr/radare2. We reconstruct basic blocks and branch
//! targets directly from decoded RM64 instructions, with a switch-table
//! heuristic for the indirect intra-procedural jumps produced by the MiniC
//! code generator's `switch` lowering (Appendix A of the paper).

use raindrop_machine::{decode, DecodeError, Image, ImageError, Inst, Mem};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a basic block within a [`Cfg`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A decoded function: address-annotated instructions in layout order.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncCode {
    /// Name of the function.
    pub name: String,
    /// Address of the first instruction.
    pub addr: u64,
    /// Instructions with their absolute addresses.
    pub insts: Vec<(u64, Inst)>,
}

impl FuncCode {
    /// Address one past the last instruction.
    pub fn end_addr(&self) -> u64 {
        match self.insts.last() {
            Some((a, i)) => a + raindrop_machine::encoded_len(i) as u64,
            None => self.addr,
        }
    }

    /// The instruction starting at `addr`, if any.
    pub fn inst_at(&self, addr: u64) -> Option<&Inst> {
        self.insts.iter().find(|(a, _)| *a == addr).map(|(_, i)| i)
    }
}

/// Errors produced during CFG reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub enum CfgError {
    /// The function is unknown to the image.
    Image(ImageError),
    /// Instruction decoding failed inside the function body.
    Decode {
        /// Address of the undecodable bytes.
        addr: u64,
        /// Decoder error.
        source: DecodeError,
    },
    /// A branch targets an address outside the function.
    TargetOutsideFunction {
        /// Address of the branch instruction.
        from: u64,
        /// The out-of-range target.
        target: u64,
    },
    /// A branch targets the middle of an instruction.
    MisalignedTarget {
        /// The problematic target address.
        target: u64,
    },
    /// An indirect jump's targets could not be recovered.
    UnresolvedIndirectJump {
        /// Address of the indirect jump.
        addr: u64,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::Image(e) => write!(f, "image error: {e}"),
            CfgError::Decode { addr, source } => write!(f, "decode error at {addr:#x}: {source}"),
            CfgError::TargetOutsideFunction { from, target } => {
                write!(f, "branch at {from:#x} targets {target:#x} outside the function")
            }
            CfgError::MisalignedTarget { target } => {
                write!(f, "branch target {target:#x} is not an instruction boundary")
            }
            CfgError::UnresolvedIndirectJump { addr } => {
                write!(f, "could not recover targets of indirect jump at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for CfgError {}

impl From<ImageError> for CfgError {
    fn from(e: ImageError) -> Self {
        CfgError::Image(e)
    }
}

/// How a basic block transfers control.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// `ret` (or `hlt`): leaves the function.
    Return,
    /// Unconditional jump to another block.
    Jump(BlockId),
    /// Conditional branch.
    Branch {
        /// Block executed when the condition holds.
        taken: BlockId,
        /// Block executed otherwise.
        fallthrough: BlockId,
    },
    /// Indirect jump through a switch table.
    Switch {
        /// Possible successor blocks, in table order.
        targets: Vec<BlockId>,
        /// Address of the jump table in `.data`.
        table_addr: u64,
    },
    /// Execution falls through into the next block (block was split by an
    /// incoming branch target).
    FallThrough(BlockId),
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Return => vec![],
            Terminator::Jump(b) | Terminator::FallThrough(b) => vec![*b],
            Terminator::Branch { taken, fallthrough } => vec![*taken, *fallthrough],
            Terminator::Switch { targets, .. } => {
                let mut seen = BTreeSet::new();
                targets.iter().copied().filter(|t| seen.insert(*t)).collect()
            }
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Identifier within the CFG.
    pub id: BlockId,
    /// Address of the first instruction.
    pub start: u64,
    /// Instructions, including the terminating one (if the block ends with a
    /// control-transfer instruction).
    pub insts: Vec<(u64, Inst)>,
    /// How control leaves the block.
    pub term: Terminator,
}

impl BasicBlock {
    /// Address one past the last instruction of the block.
    pub fn end(&self) -> u64 {
        match self.insts.last() {
            Some((a, i)) => a + raindrop_machine::encoded_len(i) as u64,
            None => self.start,
        }
    }
}

/// A reconstructed control-flow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    /// Name of the function.
    pub name: String,
    /// Address of the function entry.
    pub entry_addr: u64,
    /// Basic blocks; `blocks[0]` is the entry block.
    pub blocks: Vec<BasicBlock>,
}

impl Cfg {
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Block by id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// The block starting at `addr`, if any.
    pub fn block_at(&self, addr: u64) -> Option<&BasicBlock> {
        self.blocks.iter().find(|b| b.start == addr)
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Predecessor map (block → blocks that may transfer control to it).
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in &self.blocks {
            for s in b.term.successors() {
                preds[s.0].push(b.id);
            }
        }
        preds
    }

    /// Total number of instructions across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Blocks in reverse post order from the entry (useful for forward
    /// dataflow analyses).
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut order = Vec::with_capacity(self.blocks.len());
        self.post_order_visit(self.entry(), &mut visited, &mut order);
        order.reverse();
        order
    }

    fn post_order_visit(&self, b: BlockId, visited: &mut [bool], order: &mut Vec<BlockId>) {
        if visited[b.0] {
            return;
        }
        visited[b.0] = true;
        for s in self.block(b).term.successors() {
            self.post_order_visit(s, visited, order);
        }
        order.push(b);
    }

    /// Number of conditional branches in the function.
    pub fn branch_count(&self) -> usize {
        self.blocks.iter().filter(|b| matches!(b.term, Terminator::Branch { .. })).count()
    }
}

/// Decodes the named function from the image.
///
/// # Errors
///
/// Fails if the function is unknown or its bytes do not decode.
pub fn decode_function(image: &Image, name: &str) -> Result<FuncCode, CfgError> {
    let sym = image.function(name)?.clone();
    let bytes = image.function_bytes(name)?;
    let mut insts = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let (inst, len) = decode(&bytes[off..])
            .map_err(|source| CfgError::Decode { addr: sym.addr + off as u64, source })?;
        insts.push((sym.addr + off as u64, inst));
        off += len;
    }
    Ok(FuncCode { name: name.to_string(), addr: sym.addr, insts })
}

/// Recovers the targets of a switch-table jump (`jmp qword [table + idx*8]`)
/// by reading table entries from `.data` until one falls outside the
/// function body. This mirrors the "CFG reconstruction heuristics" the paper
/// relies on for compiler-generated switch dispatch.
fn switch_targets(image: &Image, func: &FuncCode, mem: Mem) -> Option<(u64, Vec<u64>)> {
    // Only the absolute-table form produced by the code generator is
    // recognized: no base register, an index register scaled by 8, and the
    // table address in the displacement.
    if mem.base.is_some() || mem.index.is_none() || mem.scale != 8 {
        return None;
    }
    let table_addr = mem.disp as i64 as u64;
    if !image.in_data(table_addr) {
        return None;
    }
    let mut targets = Vec::new();
    let mut addr = table_addr;
    while let Ok(bytes) = image.data_slice(addr, 8) {
        let entry = u64::from_le_bytes(bytes.try_into().expect("8-byte slice"));
        if entry < func.addr || entry >= func.end_addr() {
            break;
        }
        targets.push(entry);
        addr += 8;
        if targets.len() > 4096 {
            break;
        }
    }
    if targets.is_empty() {
        None
    } else {
        Some((table_addr, targets))
    }
}

/// Reconstructs the CFG of the named function.
///
/// # Errors
///
/// Fails when decoding fails, when a direct branch leaves the function body
/// or does not land on an instruction boundary, or when an indirect jump's
/// table cannot be recovered.
pub fn reconstruct(image: &Image, name: &str) -> Result<Cfg, CfgError> {
    let func = decode_function(image, name)?;
    reconstruct_from_code(image, &func)
}

/// Reconstructs the CFG from already-decoded instructions.
///
/// # Errors
///
/// Same as [`reconstruct`].
pub fn reconstruct_from_code(image: &Image, func: &FuncCode) -> Result<Cfg, CfgError> {
    let inst_addrs: BTreeSet<u64> = func.insts.iter().map(|(a, _)| *a).collect();
    let end_addr = func.end_addr();

    let check_target = |from: u64, target: u64| -> Result<u64, CfgError> {
        if target < func.addr || target >= end_addr {
            return Err(CfgError::TargetOutsideFunction { from, target });
        }
        if !inst_addrs.contains(&target) {
            return Err(CfgError::MisalignedTarget { target });
        }
        Ok(target)
    };

    // Pass 1: find block leaders.
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    leaders.insert(func.addr);
    let mut switch_info: BTreeMap<u64, (u64, Vec<u64>)> = BTreeMap::new();
    for (addr, inst) in &func.insts {
        let next = addr + raindrop_machine::encoded_len(inst) as u64;
        match inst {
            Inst::Jmp(rel) => {
                let t = check_target(*addr, next.wrapping_add(*rel as i64 as u64))?;
                leaders.insert(t);
                if next < end_addr {
                    leaders.insert(next);
                }
            }
            Inst::Jcc(_, rel) => {
                let t = check_target(*addr, next.wrapping_add(*rel as i64 as u64))?;
                leaders.insert(t);
                if next < end_addr {
                    leaders.insert(next);
                }
            }
            Inst::JmpMem(mem) => {
                let (table, targets) = switch_targets(image, func, *mem)
                    .ok_or(CfgError::UnresolvedIndirectJump { addr: *addr })?;
                for t in &targets {
                    check_target(*addr, *t)?;
                    leaders.insert(*t);
                }
                switch_info.insert(*addr, (table, targets));
                if next < end_addr {
                    leaders.insert(next);
                }
            }
            Inst::JmpReg(_) => {
                // Tail jumps to other functions are inter-procedural: they
                // terminate the block like a return. An intra-procedural
                // `jmp reg` not backed by a recognizable table is rejected.
                return Err(CfgError::UnresolvedIndirectJump { addr: *addr });
            }
            Inst::Ret | Inst::Hlt if next < end_addr => {
                leaders.insert(next);
            }
            _ => {}
        }
    }

    // Pass 2: carve blocks between leaders.
    let leader_list: Vec<u64> = leaders.iter().copied().collect();
    let addr_to_block: BTreeMap<u64, BlockId> =
        leader_list.iter().enumerate().map(|(i, a)| (*a, BlockId(i))).collect();

    let mut blocks = Vec::with_capacity(leader_list.len());
    for (i, &start) in leader_list.iter().enumerate() {
        let block_end = leader_list.get(i + 1).copied().unwrap_or(end_addr);
        let insts: Vec<(u64, Inst)> =
            func.insts.iter().filter(|(a, _)| *a >= start && *a < block_end).cloned().collect();
        let last = insts.last().cloned();
        let term = match last {
            Some((addr, Inst::Ret)) | Some((addr, Inst::Hlt)) => {
                let _ = addr;
                Terminator::Return
            }
            Some((_, Inst::JmpReg(_))) => Terminator::Return,
            Some((addr, Inst::Jmp(rel))) => {
                let next = addr + raindrop_machine::encoded_len(&Inst::Jmp(rel)) as u64;
                let t = next.wrapping_add(rel as i64 as u64);
                Terminator::Jump(addr_to_block[&t])
            }
            Some((addr, Inst::Jcc(c, rel))) => {
                let next = addr + raindrop_machine::encoded_len(&Inst::Jcc(c, rel)) as u64;
                let t = next.wrapping_add(rel as i64 as u64);
                let fall = addr_to_block
                    .get(&next)
                    .copied()
                    .ok_or(CfgError::MisalignedTarget { target: next })?;
                Terminator::Branch { taken: addr_to_block[&t], fallthrough: fall }
            }
            Some((addr, Inst::JmpMem(_))) => {
                let (table_addr, targets) = switch_info
                    .get(&addr)
                    .cloned()
                    .ok_or(CfgError::UnresolvedIndirectJump { addr })?;
                Terminator::Switch {
                    targets: targets.iter().map(|t| addr_to_block[t]).collect(),
                    table_addr,
                }
            }
            _ => {
                // The block was split by an incoming branch target, or it is
                // the last block without a terminator: fall through.
                match addr_to_block.get(&block_end) {
                    Some(next) => Terminator::FallThrough(*next),
                    None => Terminator::Return,
                }
            }
        };
        blocks.push(BasicBlock { id: BlockId(i), start, insts, term });
    }

    // The entry must be blocks[0]; leaders are sorted so the function start
    // (the smallest address) is always first.
    debug_assert_eq!(blocks[0].start, func.addr);

    Ok(Cfg { name: func.name.clone(), entry_addr: func.addr, blocks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_machine::{AluOp, Assembler, Cond, ImageBuilder, Reg};

    fn diamond_image() -> Image {
        // if (rdi == 0) rax = 1 else rax = 2; rax += 10; ret
        let mut a = Assembler::new();
        let else_l = a.new_label();
        let join = a.new_label();
        a.inst(Inst::CmpI(Reg::Rdi, 0));
        a.jcc(Cond::Ne, else_l);
        a.inst(Inst::MovRI(Reg::Rax, 1));
        a.jmp(join);
        a.bind(else_l);
        a.inst(Inst::MovRI(Reg::Rax, 2));
        a.bind(join);
        a.inst(Inst::AluI(AluOp::Add, Reg::Rax, 10));
        a.inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("diamond", a);
        b.build().unwrap()
    }

    #[test]
    fn diamond_has_four_blocks() {
        let img = diamond_image();
        let cfg = reconstruct(&img, "diamond").unwrap();
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.branch_count(), 1);
        let entry = cfg.block(cfg.entry());
        assert!(matches!(entry.term, Terminator::Branch { .. }));
        let preds = cfg.predecessors();
        // The join block has two predecessors.
        let join = cfg
            .blocks
            .iter()
            .find(|b| matches!(b.term, Terminator::Return) && b.insts.len() == 2)
            .unwrap();
        assert_eq!(preds[join.id.0].len(), 2);
    }

    #[test]
    fn loop_back_edge_is_reconstructed() {
        let mut a = Assembler::new();
        let top = a.new_label();
        let done = a.new_label();
        a.inst(Inst::MovRI(Reg::Rax, 0));
        a.bind(top);
        a.inst(Inst::CmpI(Reg::Rdi, 0));
        a.jcc(Cond::E, done);
        a.inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rdi));
        a.inst(Inst::AluI(AluOp::Sub, Reg::Rdi, 1));
        a.jmp(top);
        a.bind(done);
        a.inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("loop", a);
        let img = b.build().unwrap();
        let cfg = reconstruct(&img, "loop").unwrap();
        // entry, header, body, exit
        assert_eq!(cfg.len(), 4);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], cfg.entry());
    }

    #[test]
    fn switch_table_targets_recovered() {
        // A three-way switch through a jump table in .data.
        let mut b = ImageBuilder::new();
        // Reserve the table now; fill it after layout by hand: we cheat by
        // building the function with labels, then patching the table with the
        // resolved addresses. To keep the test simple the cases are laid out
        // at fixed distances: each case is `mov rax, imm; ret` = 11 bytes.
        let mut a = Assembler::new();
        let case0 = a.new_label();
        let case1 = a.new_label();
        let case2 = a.new_label();
        a.inst(Inst::MovRR(Reg::Rcx, Reg::Rdi));
        a.inst(Inst::JmpMem(Mem {
            base: None,
            index: Some(Reg::Rcx),
            scale: 8,
            disp: 0, // patched below
        }));
        a.bind(case0);
        a.inst(Inst::MovRI(Reg::Rax, 100));
        a.inst(Inst::Ret);
        a.bind(case1);
        a.inst(Inst::MovRI(Reg::Rax, 200));
        a.inst(Inst::Ret);
        a.bind(case2);
        a.inst(Inst::MovRI(Reg::Rax, 300));
        a.inst(Inst::Ret);
        let table_addr = b.add_data("table", &[0u8; 24]);
        // Rebuild the assembler with the correct displacement now that the
        // table address is known.
        let mut a2 = Assembler::new();
        let c0 = a2.new_label();
        let c1 = a2.new_label();
        let c2 = a2.new_label();
        a2.inst(Inst::MovRR(Reg::Rcx, Reg::Rdi));
        a2.inst(Inst::JmpMem(Mem {
            base: None,
            index: Some(Reg::Rcx),
            scale: 8,
            disp: table_addr as i32,
        }));
        a2.bind(c0);
        a2.inst(Inst::MovRI(Reg::Rax, 100));
        a2.inst(Inst::Ret);
        a2.bind(c1);
        a2.inst(Inst::MovRI(Reg::Rax, 200));
        a2.inst(Inst::Ret);
        a2.bind(c2);
        a2.inst(Inst::MovRI(Reg::Rax, 300));
        a2.inst(Inst::Ret);
        drop(a);
        b.add_function("sw", a2);
        let mut img = b.build().unwrap();
        // Fill the table with the case addresses: entry + 3 (mov rr) + 8 (jmp mem) …
        let f = img.function("sw").unwrap().clone();
        let jmp_len = raindrop_machine::encoded_len(&Inst::JmpMem(Mem::abs(0)));
        let movrr_len = raindrop_machine::encoded_len(&Inst::MovRR(Reg::Rcx, Reg::Rdi));
        let case_len = raindrop_machine::encoded_len(&Inst::MovRI(Reg::Rax, 0)) + 1;
        let first_case = f.addr + (movrr_len + jmp_len) as u64;
        let mut table = Vec::new();
        for i in 0..3u64 {
            table.extend_from_slice(&(first_case + i * case_len as u64).to_le_bytes());
        }
        let off = (table_addr - img.data_base) as usize;
        img.data[off..off + 24].copy_from_slice(&table);

        let cfg = reconstruct(&img, "sw").unwrap();
        let entry = cfg.block(cfg.entry());
        match &entry.term {
            Terminator::Switch { targets, table_addr: t } => {
                assert_eq!(targets.len(), 3);
                assert_eq!(*t, table_addr);
            }
            other => panic!("expected switch terminator, got {other:?}"),
        }
        assert_eq!(cfg.len(), 4);
    }

    #[test]
    fn branch_outside_function_is_rejected() {
        let mut a = Assembler::new();
        a.inst(Inst::Jmp(1000)).inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("bad", a);
        let img = b.build().unwrap();
        assert!(matches!(reconstruct(&img, "bad"), Err(CfgError::TargetOutsideFunction { .. })));
    }

    #[test]
    fn unknown_function_is_rejected() {
        let img = diamond_image();
        assert!(matches!(reconstruct(&img, "nope"), Err(CfgError::Image(_))));
    }
}
