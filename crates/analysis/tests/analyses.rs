//! Integration tests over the binary analyses the rewriter relies on:
//! CFG reconstruction (including diamonds, loops and switch tables),
//! liveness, dominators and the input-derived (symbolic-register) dataflow.

use proptest::prelude::*;
use raindrop_analysis::{cfg, dataflow, dominators, liveness, BlockId, Terminator};
use raindrop_machine::{AluOp, Assembler, Cond, Image, ImageBuilder, Inst, Mem, Reg, RegSet};

/// Builds a single-function image.
fn image_of(build: impl FnOnce(&mut Assembler)) -> Image {
    let mut asm = Assembler::new();
    build(&mut asm);
    let mut b = ImageBuilder::new();
    b.add_function("f", asm);
    b.build().unwrap()
}

/// A diamond: entry → (then | else) → join → ret.
fn diamond(asm: &mut Assembler) {
    let else_l = asm.new_label();
    let join = asm.new_label();
    asm.inst(Inst::Cmp(Reg::Rdi, Reg::Rsi));
    asm.jcc(Cond::Be, else_l);
    asm.inst(Inst::MovRR(Reg::Rax, Reg::Rdi));
    asm.jmp(join);
    asm.bind(else_l);
    asm.inst(Inst::MovRR(Reg::Rax, Reg::Rsi));
    asm.bind(join);
    asm.inst(Inst::AluI(AluOp::Add, Reg::Rax, 1));
    asm.inst(Inst::Ret);
}

/// A counted loop: rax = sum(0..rdi).
fn counted_loop(asm: &mut Assembler) {
    let head = asm.new_label();
    let done = asm.new_label();
    asm.inst(Inst::MovRI(Reg::Rax, 0));
    asm.inst(Inst::MovRI(Reg::Rcx, 0));
    asm.bind(head);
    asm.inst(Inst::Cmp(Reg::Rcx, Reg::Rdi));
    asm.jcc(Cond::Ae, done);
    asm.inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rcx));
    asm.inst(Inst::AluI(AluOp::Add, Reg::Rcx, 1));
    asm.jmp(head);
    asm.bind(done);
    asm.inst(Inst::Ret);
}

// --- CFG reconstruction -------------------------------------------------------

#[test]
fn straight_line_code_is_a_single_block() {
    let img = image_of(|a| {
        a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
            .inst(Inst::AluI(AluOp::Add, Reg::Rax, 3))
            .inst(Inst::Ret);
    });
    let g = cfg::reconstruct(&img, "f").unwrap();
    assert_eq!(g.len(), 1);
    assert_eq!(g.block(g.entry()).term, Terminator::Return);
    assert_eq!(g.inst_count(), 3);
    assert_eq!(g.branch_count(), 0);
}

#[test]
fn diamond_produces_four_blocks_with_a_conditional_entry() {
    let img = image_of(diamond);
    let g = cfg::reconstruct(&img, "f").unwrap();
    assert_eq!(g.len(), 4, "entry, then, else, join");
    match &g.block(g.entry()).term {
        Terminator::Branch { taken, fallthrough } => assert_ne!(taken, fallthrough),
        t => panic!("entry should end in a conditional branch, got {t:?}"),
    }
    // Exactly one block returns.
    let returns = g.blocks.iter().filter(|b| b.term == Terminator::Return).count();
    assert_eq!(returns, 1);
    assert_eq!(g.branch_count(), 1, "one conditional branch site");
}

#[test]
fn loop_back_edges_are_recovered() {
    let img = image_of(counted_loop);
    let g = cfg::reconstruct(&img, "f").unwrap();
    // Some block must have a successor with a lower or equal id (the back
    // edge to the loop head).
    let has_back_edge =
        g.blocks.iter().any(|b| b.term.successors().iter().any(|s| g.block(*s).start <= b.start));
    assert!(has_back_edge, "loop produces a back edge");
    let preds = g.predecessors();
    // The loop head has two predecessors: entry and the latch.
    assert!(preds.iter().any(|p| p.len() >= 2));
}

#[test]
fn every_successor_id_is_a_valid_block() {
    for builder in [diamond as fn(&mut Assembler), counted_loop] {
        let img = image_of(builder);
        let g = cfg::reconstruct(&img, "f").unwrap();
        for b in &g.blocks {
            for s in b.term.successors() {
                assert!(s.0 < g.len(), "successor {s} of {} out of range", b.id);
            }
        }
    }
}

#[test]
fn blocks_partition_the_function_body() {
    let img = image_of(diamond);
    let g = cfg::reconstruct(&img, "f").unwrap();
    let func = img.function("f").unwrap();
    let mut covered: Vec<(u64, u64)> = g.blocks.iter().map(|b| (b.start, b.end())).collect();
    covered.sort_unstable();
    // No overlaps, and the union covers [addr, addr+size).
    for w in covered.windows(2) {
        assert!(w[0].1 <= w[1].0, "blocks overlap: {w:?}");
    }
    assert_eq!(covered.first().unwrap().0, func.addr);
    assert_eq!(covered.last().unwrap().1, func.addr + func.size);
}

#[test]
fn reverse_post_order_visits_every_block_once_entry_first() {
    let img = image_of(diamond);
    let g = cfg::reconstruct(&img, "f").unwrap();
    let rpo = g.reverse_post_order();
    assert_eq!(rpo.len(), g.len());
    assert_eq!(rpo[0], g.entry());
    let mut sorted = rpo.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), g.len(), "no duplicates");
}

#[test]
fn switch_tables_are_recovered_as_switch_terminators() {
    // A compiler-shaped jump-table dispatch: `jmp [table + idx*8]` over four
    // case blocks, with the table reserved in `.data` before layout and
    // patched with the resolved case addresses afterwards.
    let mut b = ImageBuilder::new();
    let table_addr = b.add_data("jump_table", &[0u8; 32]);
    let mut asm = Assembler::new();
    asm.inst(Inst::MovRR(Reg::Rcx, Reg::Rdi));
    asm.inst(Inst::JmpMem(Mem {
        base: None,
        index: Some(Reg::Rcx),
        scale: 8,
        disp: table_addr as i32,
    }));
    for (i, v) in [100i64, 200, 300, 400].iter().enumerate() {
        let l = asm.new_label();
        asm.bind(l);
        asm.inst(Inst::MovRI(Reg::Rax, *v + i as i64));
        asm.inst(Inst::Ret);
    }
    b.add_function("f", asm);
    let mut img = b.build().unwrap();
    let func = img.function("f").unwrap().clone();

    // Patch the table with the four case addresses.
    let code = cfg::decode_function(&img, "f").unwrap();
    let case_addrs: Vec<u64> = code
        .insts
        .iter()
        .filter(|(_, i)| matches!(i, Inst::MovRI(Reg::Rax, _)))
        .map(|(a, _)| *a)
        .collect();
    assert_eq!(case_addrs.len(), 4);
    let mut table = Vec::new();
    for a in &case_addrs {
        table.extend_from_slice(&a.to_le_bytes());
    }
    let off = (table_addr - img.data_base) as usize;
    img.data[off..off + 32].copy_from_slice(&table);

    let g = cfg::reconstruct(&img, "f").unwrap();
    let entry_term = &g.block(g.entry()).term;
    match entry_term {
        Terminator::Switch { targets, table_addr: t } => {
            assert_eq!(*t, table_addr);
            assert_eq!(targets.len(), 4, "four distinct case targets");
            // Every target block starts at one of the patched case addresses.
            for target in targets {
                assert!(case_addrs.contains(&g.block(*target).start));
            }
        }
        other => panic!("expected a switch terminator, got {other:?}"),
    }
    assert!(func.size > 0);
}

#[test]
fn unknown_functions_are_reported() {
    let img = image_of(|a| {
        a.inst(Inst::Ret);
    });
    assert!(cfg::reconstruct(&img, "missing").is_err());
}

// --- liveness ------------------------------------------------------------------

#[test]
fn arguments_read_on_entry_are_live_in() {
    let img = image_of(diamond);
    let g = cfg::reconstruct(&img, "f").unwrap();
    let live = liveness::analyze(&g);
    let entry_in = live.live_in[g.entry().0];
    assert!(entry_in.contains(Reg::Rdi));
    assert!(entry_in.contains(Reg::Rsi));
}

#[test]
fn dead_registers_are_not_live_in() {
    let img = image_of(|a| {
        a.inst(Inst::MovRI(Reg::Rax, 7)).inst(Inst::MovRR(Reg::Rbx, Reg::Rax)).inst(Inst::Ret);
    });
    let g = cfg::reconstruct(&img, "f").unwrap();
    let live = liveness::analyze(&g);
    // rax is defined before use, so it is not live on entry; rdi is unused.
    assert!(!live.live_in[0].contains(Reg::Rax));
    assert!(!live.live_in[0].contains(Reg::Rdi));
}

#[test]
fn flags_are_live_between_compare_and_branch_only() {
    let img = image_of(diamond);
    let g = cfg::reconstruct(&img, "f").unwrap();
    let live = liveness::analyze(&g);
    let entry = g.entry().0;
    let insts = &g.block(g.entry()).insts;
    // Find the cmp: flags are live right after it (the jcc still reads them).
    let cmp_idx = insts.iter().position(|(_, i)| matches!(i, Inst::Cmp(..))).unwrap();
    assert!(live.flags_live_after[entry][cmp_idx]);
    // After the jcc itself nothing reads flags anymore.
    let jcc_idx = insts.iter().position(|(_, i)| matches!(i, Inst::Jcc(..))).unwrap();
    assert!(!live.flags_live_after[entry][jcc_idx]);
}

#[test]
fn liveness_is_a_sound_fixpoint() {
    // For every block: live_in ⊇ (uses before defs) and
    // live_out = ∪ successor live_in.
    for builder in [diamond as fn(&mut Assembler), counted_loop] {
        let img = image_of(builder);
        let g = cfg::reconstruct(&img, "f").unwrap();
        let live = liveness::analyze(&g);
        for b in &g.blocks {
            let mut expected_out = RegSet::EMPTY;
            for s in b.term.successors() {
                expected_out = expected_out.union(live.live_in[s.0]);
            }
            if !b.term.successors().is_empty() {
                assert_eq!(live.live_out[b.id.0], expected_out, "block {}", b.id);
            }
            // Last-instruction live_after equals block live_out.
            if let Some(last) = live.live_after[b.id.0].last() {
                assert_eq!(*last, live.live_out[b.id.0]);
            }
        }
    }
}

#[test]
fn calls_clobber_caller_saved_registers_in_use_def() {
    let (uses, defs) = liveness::use_def(&Inst::Call(0));
    for r in Reg::ARGS {
        assert!(uses.contains(r), "calls read argument register {r:?}");
    }
    for r in Reg::CALLER_SAVED {
        assert!(defs.contains(r), "calls clobber caller-saved {r:?}");
    }
    for r in Reg::CALLEE_SAVED {
        assert!(!defs.contains(r), "calls preserve callee-saved {r:?}");
    }
}

#[test]
fn exit_live_set_contains_the_return_value_and_callee_saved() {
    let s = liveness::exit_live_set();
    assert!(s.contains(Reg::Rax));
    assert!(s.contains(Reg::Rsp));
    for r in Reg::CALLEE_SAVED {
        assert!(s.contains(r));
    }
    assert!(!s.contains(Reg::R10));
}

// --- dominators ------------------------------------------------------------------

#[test]
fn entry_dominates_every_block() {
    let img = image_of(diamond);
    let g = cfg::reconstruct(&img, "f").unwrap();
    let dom = dominators(&g);
    for b in &g.blocks {
        assert!(dom.dominates(g.entry(), b.id));
        assert!(dom.dominates(b.id, b.id), "dominance is reflexive");
    }
    assert_eq!(dom.idom(g.entry()), None, "the entry has no immediate dominator");
}

#[test]
fn branch_arms_do_not_dominate_each_other_but_dominate_nothing_past_the_join() {
    let img = image_of(diamond);
    let g = cfg::reconstruct(&img, "f").unwrap();
    let dom = dominators(&g);
    let (taken, fallthrough) = match &g.block(g.entry()).term {
        Terminator::Branch { taken, fallthrough } => (*taken, *fallthrough),
        _ => unreachable!(),
    };
    assert!(!dom.dominates(taken, fallthrough));
    assert!(!dom.dominates(fallthrough, taken));
    // The join block is dominated by the entry only.
    let join = g.blocks.iter().find(|b| b.term == Terminator::Return).map(|b| b.id).unwrap();
    assert!(dom.dominates(g.entry(), join));
    assert!(!dom.dominates(taken, join));
    assert_eq!(dom.idom(join), Some(g.entry()));
}

#[test]
fn loop_head_dominates_the_loop_body() {
    let img = image_of(counted_loop);
    let g = cfg::reconstruct(&img, "f").unwrap();
    let dom = dominators(&g);
    // The block with two predecessors is the loop head; the latch (its
    // predecessor with the higher address) must be dominated by it.
    let preds = g.predecessors();
    let head = g.blocks.iter().find(|b| preds[b.id.0].len() >= 2).unwrap().id;
    let latch = preds[head.0].iter().copied().max_by_key(|p| g.block(*p).start).unwrap();
    assert!(dom.dominates(head, latch));
}

// --- input-derived registers ------------------------------------------------------

#[test]
fn arguments_start_out_derived_and_constants_do_not() {
    let img = image_of(|a| {
        a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi)) // rax derived
            .inst(Inst::MovRI(Reg::Rbx, 42)) // rbx not derived
            .inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rbx))
            .inst(Inst::Ret);
    });
    let g = cfg::reconstruct(&img, "f").unwrap();
    let derived = dataflow::input_derived(&g, RegSet::from_regs(Reg::ARGS));
    let before_ret = derived.before[0].last().copied().unwrap();
    assert!(before_ret.contains(Reg::Rax));
    assert!(!before_ret.contains(Reg::Rbx));
}

#[test]
fn overwriting_with_a_constant_kills_the_derived_status() {
    let img = image_of(|a| {
        a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi)).inst(Inst::MovRI(Reg::Rax, 0)).inst(Inst::Ret);
    });
    let g = cfg::reconstruct(&img, "f").unwrap();
    let derived = dataflow::input_derived(&g, RegSet::from_regs(Reg::ARGS));
    let before_ret = derived.before[0].last().copied().unwrap();
    assert!(!before_ret.contains(Reg::Rax));
}

#[test]
fn table_lookups_keyed_on_the_input_stay_derived() {
    let mut b = ImageBuilder::new();
    let mut asm = Assembler::new();
    asm.lea_sym(Reg::Rcx, "table", 0);
    asm.inst(Inst::Load(Reg::Rax, Mem::base_index(Reg::Rcx, Reg::Rdi, 8, 0)));
    asm.inst(Inst::Ret);
    b.add_function("f", asm);
    b.add_data("table", &[0u8; 64]);
    let img2 = b.build().unwrap();
    let g = cfg::reconstruct(&img2, "f").unwrap();
    let derived = dataflow::input_derived(&g, RegSet::from_regs(Reg::ARGS));
    let before_ret = derived.before[0].last().copied().unwrap();
    assert!(before_ret.contains(Reg::Rax), "input-indexed load result is derived");
    assert!(!before_ret.contains(Reg::Rcx), "the table base itself is not derived");
}

#[test]
fn derived_status_merges_over_joins() {
    // One arm copies the input into rax, the other loads a constant: the
    // join must conservatively treat rax as derived.
    let img = image_of(|a| {
        let else_l = a.new_label();
        let join = a.new_label();
        a.inst(Inst::TestI(Reg::Rdi, -1));
        a.jcc(Cond::E, else_l);
        a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi));
        a.jmp(join);
        a.bind(else_l);
        a.inst(Inst::MovRI(Reg::Rax, 3));
        a.bind(join);
        a.inst(Inst::AluI(AluOp::Add, Reg::Rax, 1));
        a.inst(Inst::Ret);
    });
    let g = cfg::reconstruct(&img, "f").unwrap();
    let derived = dataflow::input_derived(&g, RegSet::from_regs(Reg::ARGS));
    // Find the join block (the one ending in Return).
    let join = g.blocks.iter().find(|b| b.term == Terminator::Return).unwrap();
    assert!(derived.at_entry[join.id.0].contains(Reg::Rax));
}

// --- property tests: random (reducible) control flow ---------------------------------

/// Generates a nest of diamonds and loops with straight-line filler, then
/// checks structural CFG / liveness / dominator invariants.
fn arbitrary_structured_function() -> impl Strategy<Value = Vec<u8>> {
    // A compact "shape script": each byte decides diamond / loop / filler.
    prop::collection::vec(any::<u8>(), 1..12)
}

fn build_from_script(script: &[u8]) -> Image {
    let mut asm = Assembler::new();
    asm.inst(Inst::MovRI(Reg::Rax, 1));
    for (i, b) in script.iter().enumerate() {
        match b % 3 {
            0 => {
                // diamond
                let else_l = asm.new_label();
                let join = asm.new_label();
                asm.inst(Inst::CmpI(Reg::Rdi, (*b as i32) + i as i32));
                asm.jcc(Cond::G, else_l);
                asm.inst(Inst::AluI(AluOp::Add, Reg::Rax, 1));
                asm.jmp(join);
                asm.bind(else_l);
                asm.inst(Inst::AluI(AluOp::Xor, Reg::Rax, 0x21));
                asm.bind(join);
            }
            1 => {
                // small counted loop on rcx
                let head = asm.new_label();
                let done = asm.new_label();
                asm.inst(Inst::MovRI(Reg::Rcx, (*b % 7) as i64));
                asm.bind(head);
                asm.inst(Inst::TestI(Reg::Rcx, -1));
                asm.jcc(Cond::E, done);
                asm.inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rcx));
                asm.inst(Inst::AluI(AluOp::Sub, Reg::Rcx, 1));
                asm.jmp(head);
                asm.bind(done);
            }
            _ => {
                asm.inst(Inst::MulI(Reg::Rax, Reg::Rax, 3));
                asm.inst(Inst::AluI(AluOp::Add, Reg::Rax, *b as i32));
            }
        }
    }
    asm.inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("f", asm);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn structural_invariants_hold_on_arbitrary_structured_code(script in arbitrary_structured_function()) {
        let img = build_from_script(&script);
        let g = cfg::reconstruct(&img, "f").unwrap();

        // 1. Every successor is valid and every non-entry block is reachable.
        let mut reachable = vec![false; g.len()];
        let mut stack = vec![g.entry()];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut reachable[b.0], true) {
                continue;
            }
            for s in g.block(b).term.successors() {
                prop_assert!(s.0 < g.len());
                stack.push(s);
            }
        }
        prop_assert!(reachable.iter().all(|r| *r), "all blocks reachable");

        // 2. Reverse post-order is a permutation starting at the entry.
        let rpo = g.reverse_post_order();
        prop_assert_eq!(rpo.len(), g.len());
        prop_assert_eq!(rpo[0], g.entry());

        // 3. Liveness: live_out is the union of successor live_in.
        let live = liveness::analyze(&g);
        for b in &g.blocks {
            let mut expected = RegSet::EMPTY;
            for s in b.term.successors() {
                expected = expected.union(live.live_in[s.0]);
            }
            if !b.term.successors().is_empty() {
                prop_assert_eq!(live.live_out[b.id.0], expected);
            }
        }

        // 4. Dominators: the entry dominates everything; idom is a dominator.
        let dom = dominators(&g);
        for b in &g.blocks {
            prop_assert!(dom.dominates(g.entry(), b.id));
            if let Some(idom) = dom.idom(b.id) {
                prop_assert!(dom.dominates(idom, b.id));
                prop_assert!(idom != b.id);
            }
        }

        // 5. Input-derived registers at entry are exactly the arguments.
        let derived = dataflow::input_derived(&g, RegSet::from_regs(Reg::ARGS));
        prop_assert_eq!(derived.at_entry[g.entry().0], RegSet::from_regs(Reg::ARGS));

        // 6. Block partitioning covers the function without overlap.
        let func = img.function("f").unwrap();
        let mut spans: Vec<(u64, u64)> = g.blocks.iter().map(|b| (b.start, b.end())).collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0);
        }
        prop_assert_eq!(spans.last().unwrap().1, func.addr + func.size);
    }

    /// BlockId ordering used by DeltaTarget maps is stable under Display.
    #[test]
    fn block_id_display_is_stable(i in 0usize..10_000) {
        prop_assert_eq!(format!("{}", BlockId(i)), format!("bb{i}"));
    }
}
