//! Criterion benchmarks backing Fig. 5: emulated execution of a clbg kernel
//! under increasing obfuscation strength, plus the rewriter's own throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use raindrop::{Rewriter, RopConfig};
use raindrop_bench::{workload_cycles, ObfKind};
use raindrop_obfvm::ImplicitAt;
use raindrop_synth::codegen;

fn bench_workload_overhead(c: &mut Criterion) {
    let w = raindrop_synth::workloads::pidigits();
    let mut group = c.benchmark_group("fig5_pidigits");
    group.sample_size(10);
    for (name, kind) in [
        ("native", ObfKind::Native),
        ("rop_k025", ObfKind::Rop { k: 0.25 }),
        ("rop_k100", ObfKind::Rop { k: 1.00 }),
        ("vm2_implast", ObfKind::Vm { layers: 2, implicit: ImplicitAt::Last }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| workload_cycles(&w, &kind, 1).expect("runs"));
        });
    }
    group.finish();
}

fn bench_rewriter_throughput(c: &mut Criterion) {
    let w = raindrop_synth::workloads::fasta();
    let image = codegen::compile(&w.program).expect("compiles");
    let mut group = c.benchmark_group("rewriter");
    group.sample_size(10);
    group.bench_function("rewrite_fasta_full", |b| {
        b.iter(|| {
            let mut img = image.clone();
            let mut rw = Rewriter::new(RopConfig::full());
            rw.rewrite_functions(&mut img, w.obfuscate.iter().map(|s| s.as_str()))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_workload_overhead, bench_rewriter_throughput);
criterion_main!(benches);
