//! Criterion micro-benchmarks of the chain-materialization hot path:
//! chain resolution and full per-function materialization, fresh-buffer
//! mode (per-call allocations, the pre-`MaterializeCtx` behaviour) vs warm
//! mode (buffers reused across functions, as `Rewriter` now does).
//!
//! CI smokes this with `cargo bench --bench materialize -- --test`;
//! `scripts/regen_bench_materialize.sh` regenerates the committed
//! `BENCH_materialize.json` trajectory from the `exp_materialize` driver.

use criterion::{criterion_group, criterion_main, Criterion};
use raindrop::{ChainScratch, MaterializeCtx, ResolvedChain, RopConfig, RopRuntime};
use raindrop_bench::{many_function_image, synthetic_chain};

const CHAIN_ITEMS: usize = 1024;
const FUNCS: usize = 64;

fn bench_resolve(c: &mut Criterion) {
    let chain = synthetic_chain(CHAIN_ITEMS, 0x40_0000);
    let mut group = c.benchmark_group("chain_resolve");
    group.bench_function("fresh", |b| {
        b.iter(|| chain.resolve().expect("resolves").bytes.len());
    });
    group.bench_function("warm", |b| {
        let mut scratch = ChainScratch::default();
        let mut out = ResolvedChain::default();
        b.iter(|| {
            chain.resolve_into(&mut scratch, &mut out).expect("resolves");
            out.bytes.len()
        });
    });
    group.finish();
}

fn bench_materialize(c: &mut Criterion) {
    let chain = synthetic_chain(CHAIN_ITEMS, 0x40_0000);
    let base = many_function_image(FUNCS);
    let cfg = RopConfig::full();
    let names: Vec<String> = (0..FUNCS).map(|i| format!("f{i}")).collect();
    let mut group = c.benchmark_group("materialize");
    group.sample_size(20);
    // Each iteration materializes the chain into every function of a fresh
    // image clone; the clone cost is identical in both modes, so the delta
    // between them is pure buffer churn.
    group.bench_function("fresh_image_sweep", |b| {
        b.iter(|| {
            let mut img = base.clone();
            let rt = RopRuntime::install(&mut img, &cfg);
            for name in &names {
                MaterializeCtx::new()
                    .materialize(&mut img, &rt, name, &chain)
                    .expect("materializes");
            }
            img.data.len()
        });
    });
    group.bench_function("warm_image_sweep", |b| {
        b.iter(|| {
            let mut img = base.clone();
            let rt = RopRuntime::install(&mut img, &cfg);
            let mut ctx = MaterializeCtx::new();
            for name in &names {
                ctx.materialize(&mut img, &rt, name, &chain).expect("materializes");
            }
            img.data.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_resolve, bench_materialize);
criterion_main!(benches);
