//! Criterion micro-benchmarks of the emulator dispatch loop: guest
//! instruction throughput on straight-line, branchy and ROP-chain workloads,
//! fast path (predecoded icache) vs the reference re-decode path, plus the
//! batched differential verifier against its per-case equivalent.
//!
//! CI runs this as a smoke with `cargo bench --bench emu_dispatch -- --test`;
//! `scripts/regen_bench_emu.sh` regenerates the committed `BENCH_emu.json`
//! trajectory from the `exp_emu_dispatch` driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raindrop::{verify_batch, Rewriter, RopConfig, TestCase};
use raindrop_bench::{prepare_image, straight_line_image, ObfKind};
use raindrop_machine::{AluOp, Assembler, Cond, Emulator, Image, ImageBuilder, Inst, Reg};
use raindrop_synth::workloads;

fn bench_dispatch_modes(c: &mut Criterion) {
    // Same construction as exp_emu_dispatch, so the CI-smoked numbers and
    // the BENCH_emu.json trajectory measure the same images per label.
    let straight = straight_line_image();
    let fann = workloads::fannkuch();
    let branchy = prepare_image(&fann.program, &[], &ObfKind::Native, 1).expect("compiles");
    let pi = workloads::pidigits();
    let rop = prepare_image(&pi.program, &pi.obfuscate, &ObfKind::Rop { k: 0.0 }, 1)
        .expect("rop-rewrites");

    let cases: [(&str, &Image, &str, &[u64]); 3] = [
        ("straight_line", &straight, "spin", &[4_000]),
        ("branchy", &branchy, &fann.entry, &fann.args),
        ("rop_chain", &rop, &pi.entry, &[40]),
    ];

    let mut group = c.benchmark_group("emu_dispatch");
    group.sample_size(10);
    for (name, image, entry, args) in cases {
        for icache in [true, false] {
            let id = BenchmarkId::new(name, if icache { "icache" } else { "refdec" });
            group.bench_with_input(id, &icache, |b, &icache| {
                b.iter(|| {
                    let mut emu = Emulator::new(image);
                    emu.set_icache_enabled(icache);
                    emu.set_budget(10_000_000_000);
                    emu.call_named(image, entry, args).expect("runs")
                });
            });
        }
    }
    group.finish();
}

fn bench_verify_batching(c: &mut Criterion) {
    // The rewriter_matrix-style setup: one function, many register cases.
    let mut a = Assembler::new();
    let swap = a.new_label();
    let done = a.new_label();
    a.inst(Inst::Push(Reg::Rbp));
    a.inst(Inst::MovRR(Reg::Rbp, Reg::Rsp));
    a.inst(Inst::AluI(AluOp::Sub, Reg::Rsp, 16));
    a.inst(Inst::Store(raindrop_machine::Mem::base_disp(Reg::Rbp, -8), Reg::Rdi));
    a.inst(Inst::Load(Reg::Rdi, raindrop_machine::Mem::base_disp(Reg::Rbp, -8)));
    a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi));
    a.inst(Inst::Cmp(Reg::Rdi, Reg::Rsi));
    a.jcc(Cond::B, swap);
    a.inst(Inst::Alu(AluOp::Sub, Reg::Rax, Reg::Rsi));
    a.jmp(done);
    a.bind(swap);
    a.inst(Inst::MovRR(Reg::Rax, Reg::Rsi));
    a.inst(Inst::Alu(AluOp::Sub, Reg::Rax, Reg::Rdi));
    a.bind(done);
    a.inst(Inst::Leave);
    a.inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("absdiff", a);
    let original = b.build().expect("links");
    let mut obf = original.clone();
    let mut rw = Rewriter::new(RopConfig::full());
    rw.rewrite_function(&mut obf, "absdiff").expect("rewrites");

    let cases: Vec<TestCase> = (0..32u64).map(|i| TestCase::args(&[i * 7, 100 - i])).collect();

    let mut group = c.benchmark_group("verify");
    group.sample_size(10);
    group.bench_function("batch_32_cases", |b| {
        b.iter(|| verify_batch(&original, &obf, "absdiff", &cases));
    });
    group.bench_function("per_case_32_cases", |b| {
        b.iter(|| {
            cases
                .iter()
                .map(|case| raindrop::check_case(&original, &obf, "absdiff", case))
                .filter(raindrop::Verdict::is_match)
                .count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch_modes, bench_verify_batching);
criterion_main!(benches);
