//! Criterion benchmarks backing Table II's cost dimension: the work a DSE
//! attacker spends on one representative function under the NATIVE, ROPk and
//! nVM configurations, for both paper goals (secret finding and coverage).
//!
//! Absolute times are emulator-bound; the interesting output is the ratio
//! between configurations, which should follow the paper's ordering
//! NATIVE < nVM (low n) < ROPk (growing with k).

use criterion::{criterion_group, criterion_main, Criterion};
use raindrop_attacks::concolic::{DseAttack, DseBudget, Goal, InputSpec};
use raindrop_bench::{prepare_randomfun, ObfKind};
use raindrop_obfvm::ImplicitAt;
use raindrop_synth::{generate_randomfun, paper_structures, Goal as RfGoal, RandomFunConfig};
use std::time::Duration;

fn target(goal: RfGoal) -> raindrop_synth::RandomFun {
    let (name, structure) = paper_structures().into_iter().next().unwrap();
    generate_randomfun(RandomFunConfig {
        structure,
        structure_name: name,
        input_size: 1,
        seed: 3,
        goal,
        loop_size: 2,
    })
}

fn budget() -> DseBudget {
    DseBudget {
        total_instructions: 3_000_000,
        per_path_instructions: 500_000,
        max_paths: 60,
        max_wall: Duration::from_secs(5),
        ..DseBudget::default()
    }
}

fn bench_secret_finding(c: &mut Criterion) {
    let rf = target(RfGoal::SecretFinding);
    let mut group = c.benchmark_group("table2_secret_finding");
    group.sample_size(10);
    for (label, kind) in [
        ("native", ObfKind::Native),
        ("rop_k005", ObfKind::Rop { k: 0.05 }),
        ("rop_k100", ObfKind::Rop { k: 1.00 }),
        ("vm1", ObfKind::Vm { layers: 1, implicit: ImplicitAt::None }),
    ] {
        let image = prepare_randomfun(&rf, &kind, 1).expect("prepares");
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut attack = DseAttack::new(
                    &image,
                    &rf.name,
                    InputSpec::RegisterArg { size_bytes: 1 },
                    budget(),
                );
                attack.run(Goal::Secret { want: 1 })
            });
        });
    }
    group.finish();
}

fn bench_coverage(c: &mut Criterion) {
    let rf = target(RfGoal::CodeCoverage);
    let mut group = c.benchmark_group("table2_coverage");
    group.sample_size(10);
    for (label, kind) in [("native", ObfKind::Native), ("rop_k050", ObfKind::Rop { k: 0.50 })] {
        let image = prepare_randomfun(&rf, &kind, 1).expect("prepares");
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut attack = DseAttack::new(
                    &image,
                    &rf.name,
                    InputSpec::RegisterArg { size_bytes: 1 },
                    budget(),
                );
                attack.run(Goal::Coverage { total_probes: rf.probe_count })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_secret_finding, bench_coverage);
criterion_main!(benches);
