//! Criterion micro-benchmarks of the rewriter's building blocks: emulator
//! throughput, gadget-catalog requests (scan + synthesis + diversity), P1
//! array generation, whole-function chain crafting at different P3 fractions
//! (the Table III ablation), and the VM obfuscation baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raindrop::{P1Config, P1Instance, Rewriter, RopConfig};
use raindrop_gadgets::{CatalogConfig, GadgetCatalog, GadgetOp};
use raindrop_machine::{Emulator, Reg, RegSet};
use raindrop_obfvm::{apply, VmConfig};
use raindrop_synth::{codegen, workloads};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_emulator_throughput(c: &mut Criterion) {
    let w = workloads::fannkuch();
    let image = codegen::compile(&w.program).expect("compiles");
    c.bench_function("emulator_fannkuch_native", |b| {
        b.iter(|| {
            let mut emu = Emulator::new(&image);
            emu.set_budget(10_000_000_000);
            emu.call_named(&image, &w.entry, &w.args).expect("runs")
        });
    });
}

fn bench_gadget_requests(c: &mut Criterion) {
    let w = workloads::fasta();
    let image = codegen::compile(&w.program).expect("compiles");
    c.bench_function("catalog_1k_requests", |b| {
        b.iter(|| {
            let mut img = image.clone();
            let mut catalog = GadgetCatalog::from_image(&img, CatalogConfig::default());
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let mut total = 0u64;
            for i in 0..1000u64 {
                let reg = Reg::ALL[(i % 14 + 1) as usize];
                let g = catalog.request(
                    &mut img,
                    GadgetOp::Pop(if reg.is_sp() { Reg::Rax } else { reg }),
                    RegSet::EMPTY,
                    i % 3 == 0,
                    &mut rng,
                );
                total += g.addr;
            }
            total
        });
    });
}

fn bench_p1_generation(c: &mut Criterion) {
    c.bench_function("p1_array_generation_default", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        b.iter(|| P1Instance::generate(P1Config::default(), &mut rng));
    });
}

fn bench_rewriting_by_fraction(c: &mut Criterion) {
    let w = workloads::pidigits();
    let image = codegen::compile(&w.program).expect("compiles");
    let mut group = c.benchmark_group("rewrite_pidigits");
    group.sample_size(10);
    for k in [0.0, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("k{k:.2}")), &k, |b, &k| {
            b.iter(|| {
                let mut img = image.clone();
                let mut rw = Rewriter::new(RopConfig::ropk(k).with_seed(1));
                rw.rewrite_functions(&mut img, w.obfuscate.iter().map(|s| s.as_str()))
            });
        });
    }
    group.finish();
}

fn bench_vm_obfuscation(c: &mut Criterion) {
    let w = workloads::fannkuch();
    let mut group = c.benchmark_group("vm_obfuscation");
    group.sample_size(10);
    for layers in [1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(layers), &layers, |b, &layers| {
            b.iter(|| {
                let mut p = w.program.clone();
                for f in &w.obfuscate {
                    p = apply(&p, f, VmConfig::plain(layers)).expect("virtualizes");
                }
                codegen::compile(&p).expect("compiles")
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_emulator_throughput,
    bench_gadget_requests,
    bench_p1_generation,
    bench_rewriting_by_fraction,
    bench_vm_obfuscation
);
criterion_main!(benches);
