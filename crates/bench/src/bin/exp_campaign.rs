//! `exp_campaign` — checkpointed attack-campaign resilience and overhead.
//!
//! Measures the [`Campaign`] driver end to end over a mixed DSE-job corpus
//! (native, ROP-rewritten, coverage-goal and deliberately path-capped
//! attacks) under work-bounded budgets:
//!
//! 1. **direct** — every job run standalone ([`DseAttack::run_audited`]),
//!    the no-orchestration baseline;
//! 2. **campaign** — the same corpus under an uninterrupted campaign:
//!    checkpoint count/bytes/write-wall quantify what durability costs;
//! 3. **kill+resume** — the campaign is killed mid-run after a fixed
//!    number of checkpoints (a [`FaultPlan`] kill, simulating a crash) and
//!    resumed in a fresh driver; the report gives the resume overhead as
//!    the fraction of emulator work re-executed, since in-flight frontier
//!    entries re-run their path prefix instead of restoring a snapshot.
//!
//! Every phase must converge to identical per-job verdicts, witnesses and
//! schedules — the driver *asserts* this before writing
//! `BENCH_campaign.json` (`scripts/regen_bench_campaign.sh` wraps this).
//!
//! `--smoke` runs a CI-sized corpus through the same scripted
//! kill-and-resume cycle and all assertions, without rewriting the JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raindrop::{Rewriter, RopConfig};
use raindrop_attacks::campaign::{Campaign, CampaignConfig, CampaignReport, FaultPlan};
use raindrop_attacks::concolic::{DseAttack, DseAudit, DseBudget, DseOutcome, Goal, InputSpec};
use raindrop_attacks::fleet::DseJob;
use raindrop_bench::write_json;
use raindrop_synth::{codegen, generate_randomfun, paper_structures, Goal as RfGoal, RandomFun};
use serde::Serialize;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Durability cost of the uninterrupted campaign run.
#[derive(Debug, Clone, Serialize)]
struct CheckpointCost {
    /// Checkpoint records written.
    written: u64,
    /// Bytes appended to the log.
    bytes: u64,
    /// Wall seconds spent writing and syncing checkpoints.
    write_wall_seconds: f64,
    /// Campaign wall / direct wall — everything orchestration adds.
    campaign_over_direct: f64,
}

/// Cost of the scripted kill-and-resume cycle.
#[derive(Debug, Clone, Serialize)]
struct ResumeCost {
    /// Checkpoints after which the fault plan killed the campaign.
    kill_after_checkpoints: u64,
    /// Wall seconds of the killed partial run.
    killed_wall_seconds: f64,
    /// Wall seconds of the resumed run to completion.
    resumed_wall_seconds: f64,
    /// Jobs resumed mid-exploration from a persisted frontier.
    jobs_resumed: usize,
    /// Jobs replayed as finished straight from the log.
    jobs_recovered: usize,
    /// Fraction of the baseline emulator work re-executed because of the
    /// kill (resumed frontier entries re-run their path prefix).
    reexecuted_fraction: f64,
}

/// Top-level report written to `BENCH_campaign.json`.
#[derive(Debug, Clone, Serialize)]
struct Report {
    schema: String,
    /// Job labels, in campaign order.
    jobs: Vec<String>,
    /// Wall seconds running every job standalone, sequentially.
    direct_wall_seconds: f64,
    /// Wall seconds of the uninterrupted campaign.
    campaign_wall_seconds: f64,
    checkpoint: CheckpointCost,
    resume: ResumeCost,
    /// All three phases produced identical per-job results (asserted).
    verdicts_match: bool,
}

/// Work-bounded budget: wall clock effectively off, so verdicts are
/// independent of machine speed, kills and worker scheduling.
fn logical_budget(scale: u64) -> DseBudget {
    DseBudget {
        total_instructions: 4_000_000 * scale,
        per_path_instructions: 500_000 * scale,
        max_paths: 40 * scale as usize,
        max_wall: Duration::from_secs(3600),
        max_solver_calls: 2_000 * scale,
        ..DseBudget::default()
    }
}

fn rf(goal: RfGoal, structure_idx: usize, input_size: usize, seed: u64) -> RandomFun {
    let (name, structure) = paper_structures().into_iter().nth(structure_idx).unwrap();
    generate_randomfun(raindrop_synth::RandomFunConfig {
        structure,
        structure_name: name,
        input_size,
        seed,
        goal,
        loop_size: 2,
    })
}

/// The corpus: regenerated identically for every campaign run, exactly as
/// a restarted campaign binary would.
fn make_jobs(smoke: bool) -> Vec<DseJob> {
    let scale = if smoke { 1 } else { 2 };
    let mut jobs = Vec::new();

    let secret = rf(RfGoal::SecretFinding, 0, 4, 2);
    jobs.push(DseJob::new(
        "native/secret",
        codegen::compile(&secret.program).unwrap(),
        &secret.name,
        InputSpec::RegisterArg { size_bytes: 4 },
        logical_budget(scale),
        Goal::Secret { want: 1 },
    ));

    let coverage = rf(RfGoal::CodeCoverage, 4, 2, 8);
    jobs.push(DseJob::new(
        "native/coverage",
        codegen::compile(&coverage.program).unwrap(),
        &coverage.name,
        InputSpec::RegisterArg { size_bytes: 2 },
        logical_budget(scale),
        Goal::Coverage { total_probes: coverage.probe_count },
    ));

    let rop = rf(RfGoal::SecretFinding, 0, 1, 9);
    let mut rop_image = codegen::compile(&rop.program).unwrap();
    Rewriter::new(RopConfig::ropk(1.0).with_seed(9))
        .rewrite_function(&mut rop_image, &rop.name)
        .unwrap();
    jobs.push(DseJob::new(
        "rop1.0/secret",
        rop_image,
        &rop.name,
        InputSpec::RegisterArg { size_bytes: 1 },
        logical_budget(scale),
        Goal::Secret { want: 1 },
    ));

    let defeated = rf(RfGoal::SecretFinding, 3, 4, 7);
    jobs.push(DseJob::new(
        "defeated/path-cap",
        codegen::compile(&defeated.program).unwrap(),
        &defeated.name,
        InputSpec::RegisterArg { size_bytes: 4 },
        DseBudget { max_paths: 2, ..logical_budget(scale) },
        Goal::Secret { want: 1 },
    ));

    if !smoke {
        for seed in [11u64, 12, 13] {
            let extra = rf(RfGoal::SecretFinding, 1, 2, seed);
            jobs.push(DseJob::new(
                format!("native/secret-s{seed}"),
                codegen::compile(&extra.program).unwrap(),
                &extra.name,
                InputSpec::RegisterArg { size_bytes: 2 },
                logical_budget(scale),
                Goal::Secret { want: 1 },
            ));
        }
    }
    jobs
}

fn config() -> CampaignConfig {
    CampaignConfig {
        workers: 2,
        slice: 2,
        poll: Duration::from_millis(1),
        slice_timeout: Duration::from_secs(3600),
        ..CampaignConfig::default()
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("raindrop-exp-campaign-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Asserts a campaign's per-job results equal the direct baseline on every
/// determinism-pinned field (`wall`, `emulated_instructions` and
/// `resumed_paths` legitimately differ across phases).
fn assert_matches_direct(
    label: &str,
    direct: &[(String, DseOutcome, DseAudit)],
    c: &CampaignReport,
) {
    assert!(c.completed(), "[{label}] campaign completed");
    assert_eq!(direct.len(), c.jobs.len(), "[{label}] same job count");
    for ((name, d, da), job) in direct.iter().zip(&c.jobs) {
        assert_eq!(name, &job.label, "[{label}] same job order");
        let o = job.outcome().unwrap_or_else(|| panic!("[{label}] `{name}` not done"));
        assert_eq!(d.success, o.success, "[{label}/{name}] same verdict");
        assert_eq!(d.witness, o.witness, "[{label}/{name}] same witness");
        assert_eq!(d.paths, o.paths, "[{label}/{name}] same path count");
        assert_eq!(d.instructions, o.instructions, "[{label}/{name}] same instructions");
        assert_eq!(d.probes_covered, o.probes_covered, "[{label}/{name}] same coverage");
        assert_eq!(d.solver_calls, o.solver_calls, "[{label}/{name}] same solver schedule");
        assert_eq!(d.exhausted, o.exhausted, "[{label}/{name}] same exhaustion");
        assert_eq!(Some(da), job.audit(), "[{label}/{name}] same exploration schedule");
    }
}

fn emulated_total(c: &CampaignReport) -> u64 {
    c.jobs.iter().filter_map(|j| j.outcome()).map(|o| o.emulated_instructions).sum()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let jobs = make_jobs(smoke);
    let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
    println!("[exp_campaign] corpus: {} jobs{}", labels.len(), if smoke { ", smoke" } else { "" });

    // Phase 1: direct baseline, no orchestration.
    let start = Instant::now();
    let direct: Vec<(String, DseOutcome, DseAudit)> = jobs
        .into_iter()
        .map(|j| {
            let (outcome, audit) =
                DseAttack::new(&j.image, &j.func, j.spec.clone(), j.budget).run_audited(j.goal);
            (j.label, outcome, audit)
        })
        .collect();
    let direct_wall = start.elapsed().as_secs_f64();
    let direct_emulated: u64 = direct.iter().map(|(_, o, _)| o.emulated_instructions).sum();
    println!("direct     {:>8.3}s  {} jobs", direct_wall, direct.len());

    // Phase 2: uninterrupted campaign.
    let dir = fresh_dir("uninterrupted");
    let start = Instant::now();
    let uninterrupted =
        Campaign::open(&dir, config()).expect("campaign opens").run(make_jobs(smoke)).unwrap();
    let campaign_wall = start.elapsed().as_secs_f64();
    assert_matches_direct("uninterrupted", &direct, &uninterrupted);
    let stats = &uninterrupted.stats;
    println!(
        "campaign   {:>8.3}s  {} checkpoints  {} bytes  {:.3}s checkpoint wall",
        campaign_wall,
        stats.checkpoints_written,
        stats.checkpoint_bytes,
        stats.checkpoint_write_wall.as_secs_f64()
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 3: kill mid-campaign, then resume a fresh driver on the same
    // directory with the regenerated corpus.
    let kill_after = (stats.checkpoints_written / 2).max(1);
    let dir = fresh_dir("kill-resume");
    let start = Instant::now();
    let killed = Campaign::open(&dir, config())
        .expect("campaign opens")
        .with_faults(FaultPlan { kill_after_checkpoints: Some(kill_after), ..FaultPlan::default() })
        .run(make_jobs(smoke))
        .unwrap();
    let killed_wall = start.elapsed().as_secs_f64();
    assert!(!killed.completed(), "the fault plan killed the campaign mid-run");

    let start = Instant::now();
    let resumed =
        Campaign::open(&dir, config()).expect("campaign reopens").run(make_jobs(smoke)).unwrap();
    let resumed_wall = start.elapsed().as_secs_f64();
    assert_matches_direct("resumed", &direct, &resumed);
    let _ = std::fs::remove_dir_all(&dir);

    // Work re-executed because of the kill: everything the killed run
    // emulated plus everything the resumed run emulated, over the baseline.
    let replayed = emulated_total(&killed) + emulated_total(&resumed);
    let reexecuted = (replayed.saturating_sub(direct_emulated)) as f64 / direct_emulated as f64;
    println!(
        "kill+resume  killed after {kill_after} checkpoints: {:>8.3}s + {:>8.3}s, {} resumed, {} recovered, {:.1}% work re-executed",
        killed_wall,
        resumed_wall,
        resumed.stats.jobs_resumed,
        resumed.stats.jobs_recovered,
        reexecuted * 100.0
    );
    assert!(
        resumed.stats.jobs_resumed + resumed.stats.jobs_recovered > 0,
        "the resumed campaign restored state from the log"
    );

    if smoke {
        println!("[exp_campaign] smoke run passed: BENCH_campaign.json left untouched");
        return;
    }
    let report = Report {
        schema: "bench_campaign/v1".into(),
        jobs: labels,
        direct_wall_seconds: direct_wall,
        campaign_wall_seconds: campaign_wall,
        checkpoint: CheckpointCost {
            written: stats.checkpoints_written,
            bytes: stats.checkpoint_bytes,
            write_wall_seconds: stats.checkpoint_write_wall.as_secs_f64(),
            campaign_over_direct: campaign_wall / direct_wall.max(1e-9),
        },
        resume: ResumeCost {
            kill_after_checkpoints: kill_after,
            killed_wall_seconds: killed_wall,
            resumed_wall_seconds: resumed_wall,
            jobs_resumed: resumed.stats.jobs_resumed,
            jobs_recovered: resumed.stats.jobs_recovered,
            reexecuted_fraction: reexecuted,
        },
        verdicts_match: true,
    };
    write_json("BENCH_campaign", &report);
}
