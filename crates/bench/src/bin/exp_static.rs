//! Static attack surface over the workload-class corpus: what a purely
//! static attacker recovers from each configuration, next to the static
//! image audit the pipeline runs on its own output.
//!
//! Three attackers of increasing strength are scored per class and
//! configuration, with the compiled native image as ground truth:
//!
//! * **linear sweep** — objdump-style decode of the public function body,
//!   scored as the multiset-instruction fraction recovered
//!   ([`recovery_score`]); the paper's "~100% native / ~0% obfuscated"
//!   rows;
//! * **CFG reconstruction** — whether basic-block recovery succeeds on the
//!   obfuscated body at all;
//! * **abstract chain lifting** — per-gadget semantic summaries walked
//!   with a symbolic stack pointer over every `__rop_chain_*` blob
//!   ([`lift_image`]), reporting how far the walk gets before the opaque
//!   predicates stop it.
//!
//! Every obfuscated image is produced under
//! [`VerifyPolicy::Static`], so the defender's zero-emulation audit runs
//! on exactly the artifacts the attacker sees; a dirty audit fails the
//! experiment.
//!
//! * default: every registered class (static analysis never emulates, so
//!   worst-case classes are cheap) under NATIVE, ROP1.00, 2VM-IMPLAST and
//!   both cross-layer compositions;
//! * `--class <name>`: one class, `BENCH_static.json` left untouched;
//! * `--smoke`: the CI gate — first program of each class, asserts
//!   near-total native recovery, near-zero ROP recovery, a clean static
//!   audit and a liftable chain; writes nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raindrop::pipeline::VerifyPolicy;
use raindrop::ObfReport;
use raindrop_attacks::static_lift::{lift_image, recovery_score};
use raindrop_bench::{class_filter, write_json, ObfKind};
use raindrop_machine::Image;
use raindrop_obfvm::ImplicitAt;
use raindrop_synth::classes::{self, registry};
use raindrop_synth::Workload;
use serde::Serialize;

/// Matches the corpus seed of `exp_workloads`.
const SEED: u64 = 1;

#[derive(Serialize)]
struct ConfigRow {
    config: String,
    /// Programs measured (rewrite failures are excluded and counted).
    programs: usize,
    /// Obfuscated functions scored by the linear sweep.
    functions: usize,
    rewrite_failures: usize,
    /// Linear-sweep instruction recall (`matched / original`).
    recovery_mean: f64,
    recovery_min: f64,
    recovery_max: f64,
    /// Linear-sweep precision (`matched / decoded`) — the discriminating
    /// number for VM interpreters, whose huge bodies trivially recall the
    /// original's generic instruction multiset.
    precision_mean: f64,
    /// Functions whose CFG reconstruction succeeded.
    cfg_reconstructed: usize,
    /// Whether every program's pipeline-integrated static audit was clean.
    audit_clean: bool,
    /// Pre-rewrite lints raised across the class.
    lints: usize,
    /// `__rop_chain_*` blobs found and walked.
    chains: usize,
    chains_hit_opaque: usize,
    chains_reached_unpivot: usize,
    /// Primary instructions the abstract walk recovered across all chains.
    lifted_insts: usize,
}

#[derive(Serialize)]
struct ClassRow {
    class: String,
    description: String,
    rows: Vec<ConfigRow>,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    policy: String,
    classes: Vec<ClassRow>,
}

fn configurations() -> Vec<ObfKind> {
    vec![
        ObfKind::Native,
        ObfKind::Rop { k: 1.0 },
        ObfKind::Vm { layers: 2, implicit: ImplicitAt::Last },
        ObfKind::RopOverVm { k: 1.0, layers: 1, implicit: ImplicitAt::None },
        ObfKind::VmOverRop { k: 1.0, layers: 1, implicit: ImplicitAt::None },
    ]
}

/// Obfuscates `w` under `kind` with the static audit enabled. Returns
/// `None` when any target fails to rewrite (counted, not fatal — mirrors
/// `exp_workloads`).
fn prepare_audited(w: &Workload, kind: &ObfKind) -> Option<(Image, ObfReport)> {
    let run = kind
        .pipeline(SEED)
        .verify(VerifyPolicy::Static)
        .run_program(&w.program, &w.obfuscate)
        .expect("pipeline accepts the workload program");
    if !run.report.failures.is_empty() {
        return None;
    }
    Some((run.image, run.report))
}

fn measure(kind: &ObfKind, workloads: &[Workload]) -> ConfigRow {
    let mut fractions: Vec<f64> = Vec::new();
    let mut precisions: Vec<f64> = Vec::new();
    let mut cfg_reconstructed = 0usize;
    let mut audit_clean = true;
    let mut lints = 0usize;
    let mut rewrite_failures = 0usize;
    let mut programs = 0usize;
    let mut chains = 0usize;
    let mut chains_hit_opaque = 0usize;
    let mut chains_reached_unpivot = 0usize;
    let mut lifted_insts = 0usize;
    for w in workloads {
        let native = raindrop_synth::codegen::compile(&w.program).expect("workload compiles");
        let Some((image, report)) = prepare_audited(w, kind) else {
            rewrite_failures += 1;
            continue;
        };
        programs += 1;
        audit_clean &= report.audit_clean();
        lints += report.lints.len();
        for func in &w.obfuscate {
            let score = recovery_score(&native, &image, func);
            fractions.push(score.fraction());
            precisions.push(score.precision());
            cfg_reconstructed += usize::from(score.cfg_ok);
        }
        for lift in lift_image(&image) {
            chains += 1;
            chains_hit_opaque += usize::from(lift.hit_opaque);
            chains_reached_unpivot += usize::from(lift.reached_unpivot);
            lifted_insts += lift.recovered_insts;
        }
    }
    let n = fractions.len().max(1) as f64;
    ConfigRow {
        config: kind.label(),
        programs,
        functions: fractions.len(),
        rewrite_failures,
        recovery_mean: fractions.iter().sum::<f64>() / n,
        recovery_min: fractions.iter().copied().fold(f64::INFINITY, f64::min).min(1.0),
        recovery_max: fractions.iter().copied().fold(0.0, f64::max),
        precision_mean: precisions.iter().sum::<f64>() / n,
        cfg_reconstructed,
        audit_clean,
        lints,
        chains,
        chains_hit_opaque,
        chains_reached_unpivot,
        lifted_insts,
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke_gate();
        return;
    }
    let class = class_filter();
    let specs: Vec<_> =
        registry().into_iter().filter(|s| class.map(|c| s.id == c).unwrap_or(true)).collect();

    let mut class_rows = Vec::new();
    for spec in &specs {
        let workloads: Vec<Workload> =
            classes::generate(spec.id, SEED).into_iter().map(|cp| cp.workload).collect();
        let rows: Vec<ConfigRow> =
            configurations().iter().map(|kind| measure(kind, &workloads)).collect();
        println!("[{}] {}", spec.id.name(), spec.description);
        for r in &rows {
            println!(
                "  {:<22} recall={:.3} (min {:.3} / max {:.3}) precision={:.3}  cfg {}/{}  \
                 chains={} opaque={} unpivot={} lifted={}  audit_clean={}{}",
                r.config,
                r.recovery_mean,
                r.recovery_min,
                r.recovery_max,
                r.precision_mean,
                r.cfg_reconstructed,
                r.functions,
                r.chains,
                r.chains_hit_opaque,
                r.chains_reached_unpivot,
                r.lifted_insts,
                r.audit_clean,
                if r.rewrite_failures > 0 {
                    format!("  rewrite_failures={}", r.rewrite_failures)
                } else {
                    String::new()
                },
            );
        }
        class_rows.push(ClassRow {
            class: spec.id.name().to_string(),
            description: spec.description.to_string(),
            rows,
        });
    }

    let dirty: Vec<&str> = class_rows
        .iter()
        .flat_map(|c| c.rows.iter().filter(|r| !r.audit_clean).map(|_| c.class.as_str()))
        .collect();
    assert!(dirty.is_empty(), "static audit dirty on healthy outputs of classes {dirty:?}");

    let report = Report {
        seed: SEED,
        policy: "linear sweep + CFG reconstruction scored against the native ground truth; \
                 abstract chain lifting over every __rop_chain_* blob; every obfuscated \
                 image audited under VerifyPolicy::Static (dirty audit fails the run)"
            .to_string(),
        classes: class_rows,
    };
    if class.is_some() {
        println!("[exp_static] --class run: BENCH_static.json left untouched");
        return;
    }
    write_json("BENCH_static", &report);
}

/// The CI gate: for the first program of every registered class, a linear
/// sweep must recover the native body in full and (near) nothing of the
/// ROP-rewritten body, the pipeline's static audit must be clean on its
/// own output, and the chain blob must be found and walked. Writes
/// nothing.
fn smoke_gate() {
    for spec in registry() {
        let cp = classes::generate(spec.id, SEED).into_iter().next().expect("class generates");
        let w = cp.workload;
        let native = raindrop_synth::codegen::compile(&w.program).expect("workload compiles");
        for func in &w.obfuscate {
            let own = recovery_score(&native, &native, func);
            assert!(
                own.fraction() >= 0.999,
                "{}/{func}: native ground truth must self-recover, got {:.3}",
                spec.id.name(),
                own.fraction()
            );
        }
        let (image, report) =
            prepare_audited(&w, &ObfKind::Rop { k: 1.0 }).expect("ROP1.00 rewrites the workload");
        assert!(
            report.audit_clean(),
            "{}: static audit dirty on a healthy rewrite: {:?}",
            spec.id.name(),
            report.audit_diagnostics().collect::<Vec<_>>()
        );
        for func in &w.obfuscate {
            let score = recovery_score(&native, &image, func);
            assert!(
                score.fraction() <= 0.1,
                "{}/{func}: ROP1.00 body leaks {:.3} of the original instructions",
                spec.id.name(),
                score.fraction()
            );
        }
        let lifts = lift_image(&image);
        assert!(
            !lifts.is_empty() && lifts.iter().all(|l| l.visited > 0),
            "{}: chain blobs must be found and walkable: {lifts:?}",
            spec.id.name()
        );
        println!(
            "[exp_static] {}: native self-recovery ok, ROP sweep blind, audit clean, \
             {} chain(s) lifted",
            spec.id.name(),
            lifts.len()
        );
    }
    println!("[exp_static] smoke gate passed: BENCH_static.json left untouched");
}
