//! Figure 5: run-time overhead of ROPk on the clbg kernels, normalized to
//! the 2VM-IMPlast baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raindrop_bench::*;
use raindrop_obfvm::ImplicitAt;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    baseline_cycles: u64,
    slowdown_vs_baseline: Vec<(String, f64)>,
}

fn main() {
    let full = is_full_run();
    let ks = if full { ropk_fractions() } else { vec![0.05, 0.25, 1.00] };
    let baseline = ObfKind::Vm { layers: 2, implicit: ImplicitAt::Last };
    let mut rows = Vec::new();
    println!("{:<14} slowdown of ROPk vs 2VM-IMPlast", "BENCHMARK");
    for w in raindrop_synth::clbg_suite() {
        let base = match workload_cycles(&w, &baseline, 1) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("  {}: baseline failed: {e}", w.name);
                continue;
            }
        };
        let mut slowdowns = Vec::new();
        for k in &ks {
            match workload_cycles(&w, &ObfKind::Rop { k: *k }, 1) {
                Ok(c) => slowdowns.push((format!("ROP{k:.2}"), c as f64 / base as f64)),
                Err(e) => eprintln!("  {} ROP{k:.2}: {e}", w.name),
            }
        }
        let text: Vec<String> = slowdowns.iter().map(|(n, s)| format!("{n}={s:.2}x")).collect();
        println!("{:<14} {}", w.name, text.join("  "));
        rows.push(Row {
            benchmark: w.name.clone(),
            baseline_cycles: base,
            slowdown_vs_baseline: slowdowns,
        });
    }
    write_json("exp_fig5", &rows);
}
