//! §VII-C1: rewriting coverage over the coreutils-like corpus, with the
//! failure-class breakdown the paper reports, followed by the paper's
//! "run the test suite over the obfuscated binaries" check. The whole
//! experiment is one [`raindrop::Pipeline`] run: a full-strength
//! [`RopPass`] plus a [`VerifyPolicy`] that differentially verifies every
//! successfully rewritten function against the original image over the
//! zero/small/full-width register corners (one warm emulator pair per
//! function via `verify_batch`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raindrop::pipeline::{Pipeline, RopPass, VerifyPolicy};
use raindrop::FailureClass;
use raindrop_bench::*;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Report {
    total_functions: usize,
    attempted: usize,
    rewritten: usize,
    coverage: f64,
    failures: BTreeMap<String, usize>,
    verified_functions: usize,
    verified_cases: usize,
    verification_mismatches: Vec<String>,
}

fn main() {
    let full = is_full_run();
    let count = if full { 1354 } else { 250 };
    let corpus = raindrop_synth::corpus::generate(count, 8);
    let names: Vec<&str> = corpus.entries.iter().map(|e| e.name.as_str()).collect();
    // VerifyPolicy::Batch runs the default register-argument corner cases
    // (zero, small values, a byte pattern, full 64-bit width).
    let run = Pipeline::new()
        .pass(RopPass::full())
        .verify(VerifyPolicy::Batch)
        .run_image(&corpus.image, &names)
        .expect("pipeline runs");
    let rop = run.report.rop_passes();
    let report = rop.first().expect("one rop pass");

    let mut failures: BTreeMap<String, usize> = BTreeMap::new();
    for (_, reason) in &report.failures {
        let class = if reason.contains("pivot stub") {
            format!("{:?}", FailureClass::TooShort)
        } else if reason.contains("register pressure") {
            format!("{:?}", FailureClass::RegisterPressure)
        } else if reason.contains("unsupported") {
            format!("{:?}", FailureClass::UnsupportedInstruction)
        } else {
            format!("{:?}", FailureClass::Other)
        };
        *failures.entry(class).or_default() += 1;
    }

    let verified_functions = run.report.verify.iter().filter(|v| v.all_match()).count();
    let verified_cases: usize = run.report.verify.iter().map(|v| v.verdicts.len()).sum();
    let verification_mismatches: Vec<String> =
        run.report.verify.iter().filter(|v| !v.all_match()).map(|v| v.function.clone()).collect();

    let attempted = report.rewritten.len() + report.failures.len();
    let out = Report {
        total_functions: count,
        attempted,
        rewritten: report.rewritten.len(),
        coverage: report.coverage(),
        failures,
        verified_functions,
        verified_cases,
        verification_mismatches,
    };
    println!(
        "corpus: {} functions, rewritten {}/{} ({:.1}%)",
        out.total_functions,
        out.rewritten,
        out.attempted,
        out.coverage * 100.0
    );
    for (class, n) in &out.failures {
        println!("  failure {class}: {n}");
    }
    println!(
        "verified: {}/{} rewritten functions over {} differential cases ({} mismatches)",
        out.verified_functions,
        out.rewritten,
        out.verified_cases,
        out.verification_mismatches.len()
    );
    write_json("exp_coverage", &out);
}
