//! §VII-C1: rewriting coverage over the coreutils-like corpus, with the
//! failure-class breakdown the paper reports.

use raindrop::{FailureClass, Rewriter, RopConfig};
use raindrop_bench::*;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Report {
    total_functions: usize,
    attempted: usize,
    rewritten: usize,
    coverage: f64,
    failures: BTreeMap<String, usize>,
}

fn main() {
    let full = is_full_run();
    let count = if full { 1354 } else { 250 };
    let corpus = raindrop_synth::corpus::generate(count, 8);
    let mut image = corpus.image.clone();
    let mut rw = Rewriter::new(&mut image, RopConfig::full());
    let names: Vec<&str> = corpus.entries.iter().map(|e| e.name.as_str()).collect();
    let report = rw.rewrite_functions(&mut image, names.iter().copied());

    let mut failures: BTreeMap<String, usize> = BTreeMap::new();
    for (_, reason) in &report.failures {
        let class = if reason.contains("pivot stub") {
            format!("{:?}", FailureClass::TooShort)
        } else if reason.contains("register pressure") {
            format!("{:?}", FailureClass::RegisterPressure)
        } else if reason.contains("unsupported") {
            format!("{:?}", FailureClass::UnsupportedInstruction)
        } else {
            format!("{:?}", FailureClass::Other)
        };
        *failures.entry(class).or_default() += 1;
    }
    let attempted = report.rewritten.len() + report.failures.len();
    let out = Report {
        total_functions: count,
        attempted,
        rewritten: report.rewritten.len(),
        coverage: report.coverage(),
        failures,
    };
    println!(
        "corpus: {} functions, rewritten {}/{} ({:.1}%)",
        out.total_functions,
        out.rewritten,
        out.attempted,
        out.coverage * 100.0
    );
    for (class, n) in &out.failures {
        println!("  failure {class}: {n}");
    }
    write_json("exp_coverage", &out);
    let _ = is_full_run;
}
