//! §VII-C1: rewriting coverage over the coreutils-like corpus, with the
//! failure-class breakdown the paper reports, followed by the paper's
//! "run the test suite over the obfuscated binaries" check: every
//! successfully rewritten function is differentially verified against the
//! original with [`raindrop::verify_batch`] (one warm emulator pair per
//! function, image load + instruction predecode amortized over the cases).

use raindrop::{verify_batch, FailureClass, Rewriter, RopConfig, TestCase, Verdict};
use raindrop_bench::*;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Report {
    total_functions: usize,
    attempted: usize,
    rewritten: usize,
    coverage: f64,
    failures: BTreeMap<String, usize>,
    verified_functions: usize,
    verified_cases: usize,
    verification_mismatches: Vec<String>,
}

fn main() {
    let full = is_full_run();
    let count = if full { 1354 } else { 250 };
    let corpus = raindrop_synth::corpus::generate(count, 8);
    let mut image = corpus.image.clone();
    let mut rw = Rewriter::new(&mut image, RopConfig::full());
    let names: Vec<&str> = corpus.entries.iter().map(|e| e.name.as_str()).collect();
    let report = rw.rewrite_functions(&mut image, names.iter().copied());

    let mut failures: BTreeMap<String, usize> = BTreeMap::new();
    for (_, reason) in &report.failures {
        let class = if reason.contains("pivot stub") {
            format!("{:?}", FailureClass::TooShort)
        } else if reason.contains("register pressure") {
            format!("{:?}", FailureClass::RegisterPressure)
        } else if reason.contains("unsupported") {
            format!("{:?}", FailureClass::UnsupportedInstruction)
        } else {
            format!("{:?}", FailureClass::Other)
        };
        *failures.entry(class).or_default() += 1;
    }
    // Differential verification of every rewritten function (§VII-C1's
    // deployability check). Register-argument cases cover the zero, small,
    // and full-width corners of the input space.
    let cases: Vec<TestCase> =
        [0u64, 1, 5, 0xAB, u64::MAX].iter().map(|v| TestCase::args(&[*v])).collect();
    let mut verified_functions = 0usize;
    let mut verified_cases = 0usize;
    let mut verification_mismatches = Vec::new();
    for r in &report.rewritten {
        let verdicts = verify_batch(&corpus.image, &image, &r.name, &cases);
        verified_cases += verdicts.len();
        if verdicts.iter().all(Verdict::is_match) {
            verified_functions += 1;
        } else {
            verification_mismatches.push(r.name.clone());
        }
    }

    let attempted = report.rewritten.len() + report.failures.len();
    let out = Report {
        total_functions: count,
        attempted,
        rewritten: report.rewritten.len(),
        coverage: report.coverage(),
        failures,
        verified_functions,
        verified_cases,
        verification_mismatches,
    };
    println!(
        "corpus: {} functions, rewritten {}/{} ({:.1}%)",
        out.total_functions,
        out.rewritten,
        out.attempted,
        out.coverage * 100.0
    );
    for (class, n) in &out.failures {
        println!("  failure {class}: {n}");
    }
    println!(
        "verified: {}/{} rewritten functions over {} differential cases ({} mismatches)",
        out.verified_functions,
        out.rewritten,
        out.verified_cases,
        out.verification_mismatches.len()
    );
    write_json("exp_coverage", &out);
    let _ = is_full_run;
}
