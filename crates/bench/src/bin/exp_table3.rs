//! Table III: rewriter statistics per clbg benchmark (program points N,
//! total gadgets A, unique gadgets B, gadgets per point C) for each ROPk,
//! plus the cross-layer compositions (`ROPk-over-1VM`, `1VM-over-ROPk`)
//! the pipeline API makes expressible. The per-(benchmark, config) runs are
//! independent, so they run sharded over the attack fleet's worker pool.
//!
//! `--smoke` runs one benchmark under `ROP0.25` and the `ROP0.25-over-1VM`
//! cross-layer row (the CI composition smoke); `--full` widens the ROPk
//! sweep; `--class <name>` swaps the clbg suite for the named workload
//! class's generated programs (seed 1) so the gadget statistics can be
//! re-read per class.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raindrop_attacks::fleet::AttackFleet;
use raindrop_bench::*;
use raindrop_obfvm::ImplicitAt;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    config: String,
    program_points: u64,
    total_gadgets: u64,
    unique_gadgets: u64,
    gadgets_per_point: f64,
}

fn main() {
    let full = is_full_run();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ks = if full { ropk_fractions() } else { vec![0.0, 0.25, 1.00] };
    let mut configs: Vec<ObfKind> = if smoke {
        vec![ObfKind::Rop { k: 0.25 }]
    } else {
        ks.iter().map(|k| ObfKind::Rop { k: *k }).collect()
    };
    // The cross-layer rows: the ROP statistics of a chain rewritten over a
    // VM interpreter (much larger N) and of a chain hidden underneath one.
    let cross_k = 0.25;
    configs.push(ObfKind::RopOverVm { k: cross_k, layers: 1, implicit: ImplicitAt::None });
    if !smoke {
        configs.push(ObfKind::VmOverRop { k: cross_k, layers: 1, implicit: ImplicitAt::None });
    }
    let class = class_filter();
    let suite = match class {
        Some(class) => class_workload_list(class, 1),
        None => raindrop_synth::clbg_suite(),
    };
    let workloads = if smoke { &suite[..1] } else { &suite[..] };
    let items: Vec<(raindrop_synth::Workload, ObfKind)> = workloads
        .iter()
        .flat_map(|w| configs.iter().map(move |c| (w.clone(), c.clone())))
        .collect();
    let rows: Vec<Option<Row>> = AttackFleet::from_env().map(items, |_, (w, kind)| {
        let run = match kind.pipeline(1).run_program(&w.program, &w.obfuscate) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("{} / {}: {e}", w.name, kind.label());
                return None;
            }
        };
        for (func, reason) in &run.report.failures {
            eprintln!("{} / {}: {func}: {reason}", w.name, kind.label());
        }
        // Aggregate over the (single) ROP pass of the composition; native /
        // pure-VM configurations would have none.
        let rop = run.report.rop_passes();
        let report = rop.first()?;
        let n = report.program_points();
        let stats = report.gadgets;
        let c = if n > 0 { stats.total_used as f64 / n as f64 } else { 0.0 };
        Some(Row {
            benchmark: w.name.clone(),
            config: kind.label(),
            program_points: n,
            total_gadgets: stats.total_used,
            unique_gadgets: stats.unique_used,
            gadgets_per_point: c,
        })
    });
    let rows: Vec<Row> = rows.into_iter().flatten().collect();
    println!("{:<14} {:<22} {:>8} {:>8} {:>8} {:>8}", "BENCHMARK", "CONFIG", "N", "A", "B", "C");
    for r in &rows {
        println!(
            "{:<14} {:<22} {:>8} {:>8} {:>8} {:>8.2}",
            r.benchmark,
            r.config,
            r.program_points,
            r.total_gadgets,
            r.unique_gadgets,
            r.gadgets_per_point
        );
    }
    if smoke {
        assert!(
            rows.iter().any(|r| r.config.contains("-over-")),
            "smoke must exercise a cross-layer pipeline row"
        );
        println!("[exp_table3] smoke run: exp_table3.json left untouched");
        return;
    }
    if let Some(class) = class {
        // Class-filtered runs are ad-hoc re-reads; keep the canonical clbg
        // report file untouched.
        write_json(&format!("exp_table3_{}", class.name()), &rows);
        return;
    }
    write_json("exp_table3", &rows);
}
