//! Table III: rewriter statistics per clbg benchmark (program points N,
//! total gadgets A, unique gadgets B, gadgets per point C) for each ROPk.
//! The per-(benchmark, k) rewrites are independent, so they run sharded
//! over the attack fleet's worker pool.

use raindrop::{Rewriter, RopConfig};
use raindrop_attacks::fleet::AttackFleet;
use raindrop_bench::*;
use raindrop_synth::codegen;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    k: f64,
    program_points: u64,
    total_gadgets: u64,
    unique_gadgets: u64,
    gadgets_per_point: f64,
}

fn main() {
    let full = is_full_run();
    let ks = if full { ropk_fractions() } else { vec![0.0, 0.25, 1.00] };
    let items: Vec<(raindrop_synth::Workload, f64)> = raindrop_synth::clbg_suite()
        .into_iter()
        .flat_map(|w| ks.iter().map(move |k| (w.clone(), *k)).collect::<Vec<_>>())
        .collect();
    let rows: Vec<Option<Row>> = AttackFleet::from_env().map(items, |_, (w, k)| {
        let mut image = match codegen::compile(&w.program) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("{}: {e}", w.name);
                return None;
            }
        };
        let mut rw = Rewriter::new(&mut image, RopConfig::ropk(k));
        let report = rw.rewrite_functions(&mut image, w.obfuscate.iter().map(|s| s.as_str()));
        let n = report.program_points();
        let stats = report.gadgets;
        let c = if n > 0 { stats.total_used as f64 / n as f64 } else { 0.0 };
        Some(Row {
            benchmark: w.name.clone(),
            k,
            program_points: n,
            total_gadgets: stats.total_used,
            unique_gadgets: stats.unique_used,
            gadgets_per_point: c,
        })
    });
    let rows: Vec<Row> = rows.into_iter().flatten().collect();
    println!("{:<14} {:>6} {:>8} {:>8} {:>8} {:>8}", "BENCHMARK", "k", "N", "A", "B", "C");
    for r in &rows {
        println!(
            "{:<14} {:>6.2} {:>8} {:>8} {:>8} {:>8.2}",
            r.benchmark,
            r.k,
            r.program_points,
            r.total_gadgets,
            r.unique_gadgets,
            r.gadgets_per_point
        );
    }
    write_json("exp_table3", &rows);
    let _ = prepare_image; // keep the shared helpers linked for docs
}
