//! Table III: rewriter statistics per clbg benchmark (program points N,
//! total gadgets A, unique gadgets B, gadgets per point C) for each ROPk.

use raindrop::{Rewriter, RopConfig};
use raindrop_bench::*;
use raindrop_synth::codegen;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    k: f64,
    program_points: u64,
    total_gadgets: u64,
    unique_gadgets: u64,
    gadgets_per_point: f64,
}

fn main() {
    let full = is_full_run();
    let ks = if full { ropk_fractions() } else { vec![0.0, 0.25, 1.00] };
    let mut rows = Vec::new();
    println!("{:<14} {:>6} {:>8} {:>8} {:>8} {:>8}", "BENCHMARK", "k", "N", "A", "B", "C");
    for w in raindrop_synth::clbg_suite() {
        for k in &ks {
            let mut image = match codegen::compile(&w.program) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("{}: {e}", w.name);
                    continue;
                }
            };
            let mut rw = Rewriter::new(&mut image, RopConfig::ropk(*k));
            let report = rw.rewrite_functions(&mut image, w.obfuscate.iter().map(|s| s.as_str()));
            let n = report.program_points();
            let stats = report.gadgets;
            let c = if n > 0 { stats.total_used as f64 / n as f64 } else { 0.0 };
            println!(
                "{:<14} {:>6.2} {:>8} {:>8} {:>8} {:>8.2}",
                w.name, k, n, stats.total_used, stats.unique_used, c
            );
            rows.push(Row {
                benchmark: w.name.clone(),
                k: *k,
                program_points: n,
                total_gadgets: stats.total_used,
                unique_gadgets: stats.unique_used,
                gadgets_per_point: c,
            });
        }
    }
    write_json("exp_table3", &rows);
    let _ = prepare_image; // keep the shared helpers linked for docs
}
