//! `exp_serve` — protection-as-a-service throughput under concurrent load.
//!
//! Measures `raindrop-server` end to end: a batch of mixed
//! [`ProtectRequest`]s (two programs × three configurations × several
//! seeds) is submitted to a running server and awaited, once against an
//! empty artifact store (**cold** — every request runs the pipeline) and
//! once more against the now-populated store (**warm** — every request is
//! a cache hit), for each worker count. The report is protections/sec per
//! `(workers, phase)` cell, plus the cache speedup, written to
//! `BENCH_serve.json` (`scripts/regen_bench_serve.sh` wraps this).
//!
//! `--smoke` runs a CI-sized subset and additionally *asserts* the service
//! contract: the duplicate request in the batch is served from the store
//! (no pipeline re-execution), warm results are byte-identical to cold
//! ones, server stats add up, and shutdown drains cleanly. The JSON is not
//! rewritten in smoke mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raindrop::pipeline::ObfConfig;
use raindrop::RopConfig;
use raindrop_bench::write_json;
use raindrop_obfvm::VmConfig;
use raindrop_server::{ProtectRequest, Server, StoreConfig};
use raindrop_synth::minic::{BinOp, Expr, Function, Program, Stmt};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// One measured `(workers, phase)` cell.
#[derive(Debug, Clone, Serialize)]
struct Cell {
    /// Protection workers in the pool.
    workers: usize,
    /// `cold` (empty store) or `warm` (fully populated store).
    phase: String,
    /// Requests served.
    requests: u64,
    /// Requests that executed the pipeline.
    pipeline_runs: u64,
    /// Requests served from the artifact store.
    cache_hits: u64,
    /// Total wall-clock seconds from first submit to last wait.
    wall_seconds: f64,
    /// Requests per second.
    protections_per_sec: f64,
}

/// Top-level report written to `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize)]
struct Report {
    schema: String,
    /// Distinct artifacts in the batch (the duplicate collapses onto one).
    unique_requests: usize,
    /// Requests per batch including the duplicate.
    batch_requests: usize,
    measured: Vec<Cell>,
    /// `(workers, warm/cold speedup)` — what the cache buys at each size.
    cache_speedup: Vec<(usize, f64)>,
}

/// g(x) = ((x + c) ^ (x >> 1)) * 3, parameterized by `c` so the corpus
/// spans distinct source hashes.
fn program(c: u64) -> Program {
    Program::new().with_function(Function {
        name: "g".into(),
        params: 1,
        locals: 0,
        body: vec![Stmt::Return(Expr::bin(
            BinOp::Mul,
            Expr::bin(
                BinOp::Xor,
                Expr::bin(BinOp::Add, Expr::Arg(0), Expr::c(c as i64)),
                Expr::bin(BinOp::Shr, Expr::Arg(0), Expr::c(1)),
            ),
            Expr::c(3),
        ))],
    })
}

/// The mixed request batch: programs × configurations × seeds, plus one
/// deliberate duplicate of the first request (must be a cache hit even
/// within a cold batch).
fn batch(seeds: u64) -> Vec<ProtectRequest> {
    let configs = [
        ObfConfig::new().rop(RopConfig::ropk(0.25)),
        ObfConfig::new().vm(VmConfig::plain(1)),
        ObfConfig::new().vm(VmConfig::plain(1)).rop(RopConfig::ropk(1.0)),
    ];
    let mut out = Vec::new();
    for c in [3u64, 17] {
        for config in &configs {
            for seed in 0..seeds {
                out.push(ProtectRequest {
                    program: program(c),
                    targets: vec!["g".into()],
                    config: config.clone(),
                    seed,
                });
            }
        }
    }
    let duplicate = out[0].clone();
    out.push(duplicate);
    out
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("raindrop-exp-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 4] };
    let seeds = if smoke { 2 } else { 16 };
    // Cache hits are orders of magnitude faster than pipeline runs, so the
    // warm phase replays the batch several times to get out of
    // single-millisecond timing noise.
    let warm_rounds = if smoke { 1 } else { 8 };
    let requests = batch(seeds);
    let unique = requests.len() - 1;
    println!(
        "[exp_serve] batch: {} requests ({} unique), workers {:?}{}",
        requests.len(),
        unique,
        worker_counts,
        if smoke { ", smoke" } else { "" }
    );

    let mut measured: Vec<Cell> = Vec::new();
    let mut cache_speedup = Vec::new();
    for &workers in worker_counts {
        let dir = fresh_dir(&format!("w{workers}"));
        let mut cold_images = Vec::new();
        let mut phase_cells = Vec::new();
        for phase in ["cold", "warm"] {
            // One server lifetime per phase: the warm phase reopens the
            // store cold runs populated, so hits also pay the reopen path.
            let server = Server::start(workers, &dir, StoreConfig::default()).expect("store opens");
            let rounds = if phase == "cold" { 1 } else { warm_rounds };
            let start = Instant::now();
            let mut results = Vec::new();
            for _ in 0..rounds {
                let handles: Vec<_> = requests.iter().cloned().map(|r| server.submit(r)).collect();
                results = handles
                    .into_iter()
                    .map(|h| h.wait().expect_completed().expect("protection succeeds"))
                    .collect();
            }
            let wall = start.elapsed().as_secs_f64();
            let served = (requests.len() * rounds) as u64;
            let stats = server.stats();
            server.shutdown(); // drains + joins; clean-exit assertion below

            match phase {
                "cold" => {
                    cold_images = results.iter().map(|r| r.image.clone()).collect();
                    // The duplicate must hit even in the cold batch once its
                    // twin has landed — unless both raced cold, which the
                    // sequential smoke sizes make impossible for workers=1.
                    assert_eq!(
                        stats.pipeline_runs + stats.cache_hits,
                        requests.len() as u64,
                        "every request is a run or a hit: {stats:?}"
                    );
                }
                _ => {
                    assert_eq!(
                        stats.cache_hits, served,
                        "warm phase must be all cache hits: {stats:?}"
                    );
                    assert_eq!(stats.pipeline_runs, 0, "warm phase re-ran the pipeline");
                    for (i, (w, c)) in results.iter().zip(&cold_images).enumerate() {
                        assert!(w.cache_hit, "warm request {i} missed");
                        assert_eq!(&w.image, c, "warm request {i} not byte-identical");
                    }
                }
            }
            let cell = Cell {
                workers,
                phase: phase.to_string(),
                requests: stats.requests,
                pipeline_runs: stats.pipeline_runs,
                cache_hits: stats.cache_hits,
                wall_seconds: wall,
                protections_per_sec: served as f64 / wall.max(1e-9),
            };
            println!(
                "workers={:<2} {:<5} {:>4} reqs  {:>3} runs  {:>3} hits  {:>8.3}s  {:>10.1} prot/s",
                cell.workers,
                cell.phase,
                cell.requests,
                cell.pipeline_runs,
                cell.cache_hits,
                cell.wall_seconds,
                cell.protections_per_sec
            );
            phase_cells.push(cell);
        }
        let speedup =
            phase_cells[1].protections_per_sec / phase_cells[0].protections_per_sec.max(1e-9);
        println!("workers={workers}: warm/cold speedup {speedup:.1}x");
        cache_speedup.push((workers, speedup));
        measured.extend(phase_cells);
        let _ = std::fs::remove_dir_all(&dir);
    }

    if smoke {
        // The worker sweep itself is the 1-vs-N determinism check in
        // miniature: cold images at every worker count must agree (the
        // dedicated test pins this; here we just smoke the whole service).
        println!("[exp_serve] smoke run passed: BENCH_serve.json left untouched");
        return;
    }
    let report = Report {
        schema: "bench_serve/v1".into(),
        unique_requests: unique,
        batch_requests: requests.len(),
        measured,
        cache_speedup,
    };
    write_json("BENCH_serve", &report);
}
