//! Table II: successful attacks per configuration (secret finding + coverage).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raindrop_bench::*;
use raindrop_synth::Goal;

fn main() {
    let full = is_full_run();
    let secret_funs = randomfun_population(Goal::SecretFinding, full);
    let coverage_funs = randomfun_population(Goal::CodeCoverage, full);
    let configs = table2_configurations(full);
    let budget = dse_budget(!full);
    eprintln!(
        "Table II: {} functions x {} configurations ({})",
        secret_funs.len(),
        configs.len(),
        if full { "full" } else { "quick" }
    );
    let rows = run_table2(&secret_funs, &coverage_funs, &configs, budget);
    println!(
        "{:<14} {:>14} {:>10} {:>18}  EXHAUSTED",
        "CONFIGURATION", "FOUND", "AVG TIME", "100% POINTS"
    );
    for r in &rows {
        let exhausted = if r.exhausted.is_empty() {
            "-".to_string()
        } else {
            r.exhausted.iter().map(|(dim, n)| format!("{dim}: {n}")).collect::<Vec<_>>().join(", ")
        };
        println!(
            "{:<14} {:>10}/{:<3} {:>8.1}s {:>14}/{:<3}  {exhausted}",
            r.config,
            r.secrets_found,
            r.attempted,
            r.avg_secret_seconds,
            r.fully_covered,
            r.attempted
        );
    }
    write_json("exp_table2", &rows);
}
