//! §VII-C3: the base64 case study — DSE secret recovery effort and run-time
//! cost across configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raindrop_attacks::concolic::{DseAttack, Goal, InputSpec};
use raindrop_bench::*;
use raindrop_obfvm::ImplicitAt;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    cycles: u64,
    dse_success: bool,
    dse_instructions: u64,
    dse_seconds: f64,
}

fn main() {
    let full = is_full_run();
    let w = raindrop_synth::base64();
    let input_len = 6usize; // the 6-byte input of §VII-C3
    let budget = dse_budget(!full);
    let configs = vec![
        ObfKind::Native,
        ObfKind::Vm { layers: 2, implicit: ImplicitAt::Last },
        ObfKind::Rop { k: 0.0 },
        ObfKind::Rop { k: 1.0 },
        // The cross-layer composition of §IV-C, one pipeline expression.
        ObfKind::RopOverVm { k: 1.0, layers: 1, implicit: ImplicitAt::None },
    ];
    let mut rows = Vec::new();
    println!("{:<16} {:>14} {:>10} {:>14}", "CONFIG", "CYCLES", "DSE OK", "DSE INSTR");
    for kind in configs {
        let cycles = workload_cycles(&w, &kind, 1).unwrap_or(0);
        let image = match prepare_image(&w.program, &w.obfuscate, &kind, 1) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("{}: {e}", kind.label());
                continue;
            }
        };
        // The attacker must recover input bytes that make the encoder
        // produce a chosen checksum: hit the target return value observed
        // for a hidden 6-byte input.
        let inp = image.symbol("b64_in").expect("input buffer");
        let secret = b"SecRet";
        let mut emu = raindrop_machine::Emulator::new(&image);
        emu.set_budget(20_000_000_000);
        emu.mem.write_bytes(inp, secret);
        let target = emu.call_named(&image, &w.entry, &[input_len as u64]).unwrap();
        let spec =
            InputSpec::MemoryBuffer { addr: inp, len: input_len, args: vec![input_len as u64] };
        let mut attack = DseAttack::new(&image, &w.entry, spec, budget);
        let outcome = attack.run(Goal::Secret { want: target });
        let exhausted =
            outcome.exhausted.map_or_else(|| "-".to_string(), |e| format!("{e} exhausted"));
        println!(
            "{:<16} {:>14} {:>10} {:>14}  [{exhausted}]",
            kind.label(),
            cycles,
            outcome.success,
            outcome.instructions
        );
        rows.push(Row {
            config: kind.label(),
            cycles,
            dse_success: outcome.success,
            dse_instructions: outcome.instructions,
            dse_seconds: outcome.wall.as_secs_f64(),
        });
    }
    write_json("exp_base64", &rows);
}
