//! Per-class overhead and attack outcomes over the workload-class corpus,
//! reported Oxidalloc-style: every registered class is measured, but the
//! adversarial worst-case classes are excluded from the headline rows —
//! runnable on demand via `--include-worst-case` and reported in a separate
//! section with the same columns.
//!
//! * default: headline classes only (`synthetic-stress`, `application`,
//!   `database`); the worst-case classes are listed as excluded;
//! * `--include-worst-case`: also measures `adversarial-icache` and
//!   `adversarial-depth` into the `worst_case` section;
//! * `--class <name>`: restricts the run to one class (headline or not) and
//!   leaves `BENCH_workloads.json` untouched;
//! * `--full`: wider configuration sweep and the full DSE budget;
//! * `--smoke`: the CI class-coverage gate — asserts every registered class
//!   generates programs, agrees with its reference interpreter on the
//!   emulator, and survives a quick ROP differential check; writes nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raindrop::{equivalent, TestCase};
use raindrop_attacks::campaign::class_of_label;
use raindrop_attacks::concolic::{Goal, InputSpec};
use raindrop_attacks::fleet::{AttackFleet, DseJob};
use raindrop_bench::*;
use raindrop_machine::Emulator;
use raindrop_obfvm::ImplicitAt;
use raindrop_synth::classes::{self, registry, ClassProgram, ClassSpec};
use raindrop_synth::codegen;
use serde::Serialize;

/// The seed the reported corpus is generated from (the differential test
/// suite sweeps more).
const SEED: u64 = 1;

#[derive(Serialize)]
struct DseRow {
    config: String,
    defeated: bool,
    paths: usize,
    instructions: u64,
    hazards: u64,
}

#[derive(Serialize)]
struct ProgramRow {
    program: String,
    native_cycles: u64,
    /// (configuration label, cycles / native cycles).
    overheads: Vec<(String, f64)>,
    dse: Vec<DseRow>,
}

#[derive(Serialize)]
struct ClassRow {
    class: String,
    description: String,
    programs: Vec<ProgramRow>,
    /// DSE jobs defeated / finished across the class.
    defeated: usize,
    attempted: usize,
}

#[derive(Serialize)]
struct Report {
    scale: String,
    seed: u64,
    policy: String,
    headline: Vec<ClassRow>,
    worst_case: Vec<ClassRow>,
    excluded: Vec<String>,
}

fn overhead_kinds(full: bool) -> Vec<ObfKind> {
    let mut kinds =
        vec![ObfKind::Rop { k: 1.0 }, ObfKind::Vm { layers: 2, implicit: ImplicitAt::Last }];
    if full {
        kinds.push(ObfKind::RopOverVm { k: 1.0, layers: 1, implicit: ImplicitAt::None });
        kinds.push(ObfKind::VmOverRop { k: 1.0, layers: 1, implicit: ImplicitAt::None });
    }
    kinds
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke_gate();
        return;
    }
    let full = is_full_run();
    let include_worst = std::env::args().any(|a| a == "--include-worst-case");
    let class = class_filter();
    let budget = dse_budget(!full);
    let kinds = overhead_kinds(full);

    let mut excluded = Vec::new();
    let specs: Vec<ClassSpec> = registry()
        .into_iter()
        .filter(|spec| match class {
            Some(c) => spec.id == c,
            None => true,
        })
        .filter(|spec| {
            // Worst-case classes run only on demand — unless named directly.
            if spec.headline || include_worst || class.is_some() {
                true
            } else {
                excluded.push(format!(
                    "{} ({}): excluded from headline rows; run with --include-worst-case",
                    spec.id.name(),
                    spec.description
                ));
                false
            }
        })
        .collect();

    // Overhead sweep (sequential: cycle counts, cheap) and DSE job list.
    let mut rows: Vec<(ClassSpec, Vec<ProgramRow>)> = Vec::new();
    let mut jobs: Vec<DseJob> = Vec::new();
    for spec in &specs {
        let mut program_rows = Vec::new();
        for cp in classes::generate(spec.id, SEED) {
            let w = &cp.workload;
            let native = workload_cycles(w, &ObfKind::Native, SEED).expect("native workload runs");
            let mut overheads = Vec::new();
            for kind in &kinds {
                match workload_cycles(w, kind, SEED) {
                    Ok(cycles) => overheads.push((kind.label(), cycles as f64 / native as f64)),
                    Err(e) => eprintln!("{}/{}: {e}", spec.id.name(), w.name),
                }
            }
            // The attack target is the point-test wrapper (want: 1), the
            // paper's secret-finding shape; only the checksum entry under
            // it is obfuscated, as with the randomfun drivers.
            for kind in [ObfKind::Native, ObfKind::Rop { k: 1.0 }] {
                let image = prepare_image(&w.program, &w.obfuscate, &kind, SEED).expect("prepares");
                jobs.push(DseJob::new(
                    format!("{}/{}/{}", spec.id.name(), w.name, kind.label().to_lowercase()),
                    image,
                    cp.check_entry.clone(),
                    InputSpec::RegisterArg { size_bytes: 1 },
                    budget,
                    Goal::Secret { want: 1 },
                ));
            }
            program_rows.push(ProgramRow {
                program: w.name.clone(),
                native_cycles: native,
                overheads,
                dse: Vec::new(),
            });
        }
        rows.push((spec.clone(), program_rows));
    }

    // One fleet over every class's jobs; results re-attached per program.
    let results = AttackFleet::from_env().run_dse(jobs);
    for r in &results {
        let class = class_of_label(&r.label).expect("workload job labels carry a class");
        let mut parts = r.label.splitn(3, '/');
        let (_, program, config) = (parts.next(), parts.next().unwrap(), parts.next().unwrap());
        let row = rows
            .iter_mut()
            .find(|(spec, _)| spec.id.name() == class)
            .and_then(|(_, programs)| programs.iter_mut().find(|p| p.program == program))
            .expect("job label maps back to a program row");
        row.dse.push(DseRow {
            config: config.to_string(),
            defeated: r.outcome.success,
            paths: r.outcome.paths,
            instructions: r.outcome.instructions,
            hazards: r.outcome.hazard_causes.iter().map(|(_, n)| n).sum(),
        });
    }

    let to_class_row = |(spec, programs): (ClassSpec, Vec<ProgramRow>)| {
        let attempted = programs.iter().map(|p| p.dse.len()).sum();
        let defeated = programs.iter().flat_map(|p| &p.dse).filter(|d| d.defeated).count();
        ClassRow {
            class: spec.id.name().to_string(),
            description: spec.description.to_string(),
            programs,
            defeated,
            attempted,
        }
    };
    let (headline_rows, worst_rows): (Vec<_>, Vec<_>) =
        rows.into_iter().partition(|(spec, _)| spec.headline);
    let report = Report {
        scale: if full { "full" } else { "quick" }.to_string(),
        seed: SEED,
        policy: "headline rows cover the benchmark classes; adversarial worst cases are \
                 measured under --include-worst-case and reported separately, never \
                 averaged into headlines"
            .to_string(),
        headline: headline_rows.into_iter().map(to_class_row).collect(),
        worst_case: worst_rows.into_iter().map(to_class_row).collect(),
        excluded,
    };

    for section in [("HEADLINE", &report.headline), ("WORST CASE", &report.worst_case)] {
        let (title, classes) = section;
        if classes.is_empty() {
            continue;
        }
        println!("== {title} ==");
        for cr in classes {
            println!(
                "[{}] {} — DSE defeated {}/{}",
                cr.class, cr.description, cr.defeated, cr.attempted
            );
            for p in &cr.programs {
                let overheads: Vec<String> =
                    p.overheads.iter().map(|(label, x)| format!("{label} x{x:.1}")).collect();
                println!(
                    "  {:<16} native={:>9} cycles  {}",
                    p.program,
                    p.native_cycles,
                    overheads.join("  ")
                );
                for d in &p.dse {
                    println!(
                        "    dse {:<10} defeated={} paths={} instructions={} hazards={}",
                        d.config, d.defeated, d.paths, d.instructions, d.hazards
                    );
                }
            }
        }
    }
    for line in &report.excluded {
        println!("excluded: {line}");
    }

    if class.is_some() {
        println!("[exp_workloads] --class run: BENCH_workloads.json left untouched");
        return;
    }
    write_json("BENCH_workloads", &report);
}

/// The CI gate: every registered class must have generator coverage and
/// survive a quick end-to-end differential check — reference interpreter vs
/// emulator on the native image, and native vs ROP1.00 `verify_batch`
/// equivalence. A class registered without a working generator (or whose
/// programs diverge) fails the gate; the full per-seed sweep lives in
/// `tests/workload_differential.rs`.
fn smoke_gate() {
    let reg = registry();
    assert!(reg.len() >= 5, "registry must keep at least five classes");
    assert!(
        reg.iter().filter(|s| !s.headline).count() >= 2,
        "registry must keep at least two worst-case classes"
    );
    for spec in &reg {
        let programs = classes::generate(spec.id, SEED);
        assert!(!programs.is_empty(), "{}: class has no generator coverage", spec.id.name());
        let cp: &ClassProgram = &programs[0];
        let w = &cp.workload;
        let native = codegen::compile(&w.program).expect("class program compiles");
        let mut emu = Emulator::new(&native);
        emu.set_budget(2_000_000_000);
        let got = emu.call_named(&native, &w.entry, &w.args).expect("class program runs");
        assert_eq!(
            got,
            cp.reference_value(),
            "{}/{}: emulator vs reference interpreter",
            spec.id.name(),
            w.name
        );
        let rewritten = prepare_image(&w.program, &w.obfuscate, &ObfKind::Rop { k: 1.0 }, SEED)
            .expect("ROP pipeline prepares");
        assert!(
            equivalent(&native, &rewritten, &w.entry, &[TestCase::args(&w.args)]),
            "{}/{}: ROP1.00 differential check",
            spec.id.name(),
            w.name
        );
        println!(
            "[exp_workloads] {}: {} programs, differential check ok",
            spec.id.name(),
            programs.len()
        );
    }
    println!("[exp_workloads] smoke gate passed: BENCH_workloads.json left untouched");
}
