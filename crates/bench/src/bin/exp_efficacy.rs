//! §VII-A: per-predicate efficacy — P1/P3 against DSE, P2 against the
//! ROPMEMU-style flag flipping, gadget confusion against gadget guessing,
//! P3 against taint-driven simplification. The DSE section also mounts the
//! attack on the cross-layer compositions (`ROP-over-VM`, `VM-over-ROP`)
//! the pipeline API composes.
//!
//! `--class <name>` replaces the default random-function target with every
//! generated program of the named workload class (seed 1): the same four
//! attack families then run against each class program, with the DSE goal
//! set to each program's reference checksum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raindrop::pipeline::{Pipeline, RopPass};
use raindrop::RopConfig;
use raindrop_attacks::concolic::{Goal, InputSpec};
use raindrop_attacks::fleet::{AttackFleet, DseJob};
use raindrop_attacks::{chain_symbol, flip_exploration, gadget_guess, simplify};
use raindrop_bench::*;
use raindrop_obfvm::ImplicitAt;
use raindrop_synth::{randomfuns, Goal as RfGoal};
use serde::Serialize;

#[derive(Serialize, Default)]
struct Report {
    dse: Vec<(String, bool, u64)>,
    flip: Vec<(String, usize, usize, usize)>,
    guess: Vec<(String, usize, usize)>,
    tds: Vec<(String, usize, usize)>,
}

fn sample(goal: RfGoal) -> raindrop_synth::RandomFun {
    randomfuns::generate(raindrop_synth::RandomFunConfig {
        structure: randomfuns::Ctrl::for_(randomfuns::Ctrl::if_(
            randomfuns::Ctrl::bb(4),
            randomfuns::Ctrl::bb(4),
        )),
        structure_name: "(for (if (bb 4) (bb 4)))".into(),
        input_size: 4,
        seed: 3,
        goal,
        loop_size: 5,
    })
}

/// One attack target: a program, the function the obfuscations rewrite
/// (also the entry point), and the inputs/goal of each attack family.
struct Target {
    /// Label prefix ("" for the default random function, so the default
    /// report keeps its historical labels).
    prefix: String,
    program: raindrop_synth::Program,
    func: String,
    input_size: usize,
    /// Input for the flag-flipping exploration.
    flip_input: u64,
    /// Input for the taint-driven simplification run.
    tds_input: u64,
    /// The secret-finding goal value.
    want: u64,
}

fn targets() -> Vec<Target> {
    match class_filter() {
        None => {
            let rf = sample(RfGoal::SecretFinding);
            vec![Target {
                prefix: String::new(),
                func: rf.name.clone(),
                input_size: rf.config.input_size,
                flip_input: 0,
                tds_input: rf.secret_input,
                want: 1,
                program: rf.program,
            }]
        }
        Some(class) => raindrop_synth::classes::generate(class, 1)
            .into_iter()
            .map(|cp| Target {
                prefix: format!("{}/{}/", class.name(), cp.workload.name),
                func: cp.workload.entry.clone(),
                input_size: 1,
                flip_input: cp.workload.args[0],
                tds_input: cp.workload.args[0],
                want: cp.reference_value(),
                program: cp.workload.program.clone(),
            })
            .collect(),
    }
}

fn main() {
    let full = is_full_run();
    let budget = dse_budget(!full);
    let mut report = Report::default();
    let targets = targets();

    println!("== A1/A3: DSE (secret finding) against P1/P3 and cross-layer pipelines ==");
    let configs = [
        ("NATIVE".to_string(), ObfKind::Native),
        ("ROP-P1 only".to_string(), ObfKind::Rop { k: 0.0 }),
        ("ROP-P1+P3".to_string(), ObfKind::Rop { k: 1.0 }),
        (
            ObfKind::RopOverVm { k: 1.0, layers: 1, implicit: ImplicitAt::None }.label(),
            ObfKind::RopOverVm { k: 1.0, layers: 1, implicit: ImplicitAt::None },
        ),
        (
            ObfKind::VmOverRop { k: 1.0, layers: 1, implicit: ImplicitAt::None }.label(),
            ObfKind::VmOverRop { k: 1.0, layers: 1, implicit: ImplicitAt::None },
        ),
    ];
    let jobs: Vec<DseJob> = targets
        .iter()
        .flat_map(|t| {
            configs.iter().map(|(label, kind)| {
                let image = prepare_image(&t.program, std::slice::from_ref(&t.func), kind, 1)
                    .expect("prepare");
                DseJob::new(
                    format!("{}{label}", t.prefix),
                    image,
                    t.func.clone(),
                    InputSpec::RegisterArg { size_bytes: t.input_size },
                    budget,
                    Goal::Secret { want: t.want },
                )
            })
        })
        .collect();
    for r in AttackFleet::from_env().run_dse(jobs) {
        let out = r.outcome;
        let exhausted = out.exhausted.map_or_else(|| "-".to_string(), |e| format!("{e} exhausted"));
        // Why a defeated attack was defeated: which shadow-tracking hazard
        // (if any) first forced concretization, and how many distinct
        // branches the explorer forked before that point.
        let hazards = if out.hazard_causes.is_empty() {
            "none".to_string()
        } else {
            out.hazard_causes
                .iter()
                .map(|(cause, n)| format!("{cause} x{n}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "  {:<14} success={} instructions={} [{exhausted}]",
            r.label, out.success, out.instructions
        );
        println!(
            "  {:<14}   hazards: {hazards}; branches before first hazard: {}",
            "", out.max_branches_pre_hazard
        );
        report.dse.push((r.label, out.success, out.instructions));
    }

    println!("== A2: flag flipping (ROPMEMU) with and without P2 ==");
    for t in &targets {
        for (label, p2) in [("ROP without P2", false), ("ROP with P2", true)] {
            let mut cfg = RopConfig::plain();
            cfg.p2 = p2;
            let (image, _) = Pipeline::new()
                .pass(RopPass::new(cfg))
                .run_program(&t.program, &[&t.func])
                .expect("pipeline runs")
                .into_strict()
                .expect("rewrite succeeds");
            let r = flip_exploration(&image, &t.func, t.flip_input, 100_000_000);
            let label = format!("{}{label}", t.prefix);
            println!(
                "  {label:<16} leaks={} new_blocks={} derailed={}",
                r.leak_sites, r.new_blocks, r.derailed_runs
            );
            report.flip.push((label, r.leak_sites, r.new_blocks, r.derailed_runs));
        }
    }

    println!("== A1: gadget guessing with and without confusion ==");
    for t in &targets {
        for (label, confusion) in [("no confusion", false), ("confusion", true)] {
            let mut cfg = RopConfig::plain();
            cfg.gadget_confusion = confusion;
            let (image, _) = Pipeline::new()
                .pass(RopPass::new(cfg))
                .run_program(&t.program, &[&t.func])
                .expect("pipeline runs")
                .into_strict()
                .expect("rewrite succeeds");
            let g = gadget_guess(&image, &chain_symbol(&t.func));
            let label = format!("{}{label}", t.prefix);
            println!(
                "  {label:<16} plausible={} unaligned_candidates={}",
                g.plausible_pointers, g.unaligned_candidates
            );
            report.guess.push((label, g.plausible_pointers, g.unaligned_candidates));
        }
    }

    println!("== A3: taint-driven simplification against P3 ==");
    for t in &targets {
        for (label, kind) in
            [("ROP plain", ObfKind::Rop { k: 0.0 }), ("ROP P3 k=1", ObfKind::Rop { k: 1.0 })]
        {
            let image = prepare_image(&t.program, std::slice::from_ref(&t.func), &kind, 1)
                .expect("prepare");
            let r = simplify(&image, &t.func, t.tds_input, 200_000_000);
            let label = format!("{}{label}", t.prefix);
            println!("  {label:<14} trace={} relevant={}", r.trace_len, r.relevant);
            report.tds.push((label, r.trace_len, r.relevant));
        }
    }

    match class_filter() {
        Some(class) => write_json(&format!("exp_efficacy_{}", class.name()), &report),
        None => write_json("exp_efficacy", &report),
    }
}
