//! # raindrop-bench
//!
//! The experiment harness: one driver per table/figure of the paper's
//! evaluation (§VII), plus Criterion micro-benchmarks. Each driver prints
//! the same rows/series the paper reports and writes a JSON file next to the
//! textual output so EXPERIMENTS.md can record paper-vs-measured.
//!
//! Binaries (run with `cargo run -p raindrop-bench --release --bin <name>`):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `exp_table2` | Table II — secret finding & code coverage under the Table I configurations |
//! | `exp_fig5` | Fig. 5 — run-time slowdown of ROPk vs 2VM-IMPlast on the clbg kernels |
//! | `exp_table3` | Table III — per-benchmark gadget statistics, incl. cross-layer pipeline rows |
//! | `exp_coverage` | §VII-C1 — rewriting coverage over the corpus |
//! | `exp_base64` | §VII-C3 — base64 case study |
//! | `exp_efficacy` | §VII-A — per-predicate efficacy against DSE/TDS/ROP-aware tools |
//! | `exp_materialize` | — chain materialization throughput (`BENCH_materialize.json`) |
//!
//! Every driver composes its obfuscations through [`ObfKind::pipeline`] —
//! one [`raindrop::Pipeline`] per configuration, including the cross-layer
//! `ROPk-over-nVM` / `nVM-over-ROPk` rows only that API makes cheap to
//! express.
//!
//! Every driver accepts `--full` for a larger run and defaults to a
//! laptop-scale quick run (fewer functions, smaller budgets); the scale used
//! is recorded in the JSON output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raindrop::pipeline::{Pipeline, PipelineError, RopPass, VmPass};
use raindrop_attacks::concolic::{DseBudget, Goal as AttackGoal, InputSpec};
use raindrop_attacks::fleet::{AttackFleet, DseJob};
use raindrop_machine::{Emulator, Image};
use raindrop_obfvm::{ImplicitAt, VmConfig};
use raindrop_synth::{RandomFun, Workload};
use serde::Serialize;
use std::time::Duration;

/// An obfuscation configuration of Table I, plus the cross-layer
/// compositions only the pipeline API makes cheap to express.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ObfKind {
    /// Unprotected baseline.
    Native,
    /// `ROPk` — ROP rewriting with P3 at fraction `k`.
    Rop {
        /// P3 fraction `k`.
        k: f64,
    },
    /// `nVM(-IMPx)` — nested virtualization.
    Vm {
        /// Number of layers.
        layers: usize,
        /// Implicit-VPC placement.
        implicit: ImplicitAt,
    },
    /// `ROPk-over-nVM` — the function is virtualized, then the generated
    /// interpreter is ROP-rewritten (ROP is the outer layer).
    RopOverVm {
        /// P3 fraction `k` of the outer ROP layer.
        k: f64,
        /// Number of VM layers underneath.
        layers: usize,
        /// Implicit-VPC placement of the VM layers.
        implicit: ImplicitAt,
    },
    /// `nVM-over-ROPk` — the original body is ROP-rewritten and a VM
    /// interpreter with the public name dispatches into the chain (VM is
    /// the outer layer).
    VmOverRop {
        /// P3 fraction `k` of the inner ROP layer.
        k: f64,
        /// Number of VM layers on top.
        layers: usize,
        /// Implicit-VPC placement of the VM layers.
        implicit: ImplicitAt,
    },
}

impl ObfKind {
    /// Table I-style label (cross-layer compositions read outer-first, e.g.
    /// `ROP1.00-over-1VM`).
    pub fn label(&self) -> String {
        match self {
            ObfKind::Native => "NATIVE".to_string(),
            ObfKind::Rop { k } => format!("ROP{k:.2}"),
            ObfKind::Vm { layers, implicit } => VmConfig::with_implicit(*layers, *implicit).label(),
            ObfKind::RopOverVm { k, layers, implicit } => {
                format!("ROP{k:.2}-over-{}", VmConfig::with_implicit(*layers, *implicit).label())
            }
            ObfKind::VmOverRop { k, layers, implicit } => {
                format!("{}-over-ROP{k:.2}", VmConfig::with_implicit(*layers, *implicit).label())
            }
        }
    }

    /// The [`Pipeline`] realizing this configuration, with `seed` threaded
    /// through every pass. Passes are declared in nesting order (innermost
    /// first), so `RopOverVm` is `VmPass` then `RopPass`.
    pub fn pipeline(&self, seed: u64) -> Pipeline {
        let p = Pipeline::new().seed(seed);
        match self {
            ObfKind::Native => p,
            ObfKind::Rop { k } => p.pass(RopPass::ropk(*k)),
            ObfKind::Vm { layers, implicit } => p.pass(VmPass::with_implicit(*layers, *implicit)),
            ObfKind::RopOverVm { k, layers, implicit } => {
                p.pass(VmPass::with_implicit(*layers, *implicit)).pass(RopPass::ropk(*k))
            }
            ObfKind::VmOverRop { k, layers, implicit } => {
                p.pass(RopPass::ropk(*k)).pass(VmPass::with_implicit(*layers, *implicit))
            }
        }
    }
}

/// The configurations of Table II, in the paper's row order. The quick run
/// drops the 3VM rows (their interpreters are enormous in emulation time);
/// `--full` includes them.
pub fn table2_configurations(full: bool) -> Vec<ObfKind> {
    let mut out = vec![ObfKind::Native];
    for k in [0.05, 0.25, 0.50, 0.75, 1.00] {
        out.push(ObfKind::Rop { k });
    }
    out.push(ObfKind::Vm { layers: 1, implicit: ImplicitAt::All });
    out.push(ObfKind::Vm { layers: 2, implicit: ImplicitAt::None });
    out.push(ObfKind::Vm { layers: 2, implicit: ImplicitAt::First });
    out.push(ObfKind::Vm { layers: 2, implicit: ImplicitAt::Last });
    out.push(ObfKind::Vm { layers: 2, implicit: ImplicitAt::All });
    if full {
        out.push(ObfKind::Vm { layers: 3, implicit: ImplicitAt::None });
        out.push(ObfKind::Vm { layers: 3, implicit: ImplicitAt::First });
        out.push(ObfKind::Vm { layers: 3, implicit: ImplicitAt::Last });
        out.push(ObfKind::Vm { layers: 3, implicit: ImplicitAt::All });
    }
    out
}

/// The ROPk fractions used by Fig. 5 and Table III.
pub fn ropk_fractions() -> Vec<f64> {
    vec![0.0, 0.05, 0.25, 0.50, 0.75, 1.00]
}

/// Compiles `program`, applying the obfuscation `kind` to the listed
/// functions through the [`Pipeline`] API (VM passes at the MiniC level
/// before compilation, ROP passes on the compiled image). Strict: any
/// per-target failure is promoted to an error.
///
/// Multi-function ROP preparation follows `Rewriter::rewrite_functions`
/// semantics: the gadget ranges of *all* scheduled functions are retired up
/// front, so no chain can reference a gadget destroyed by a later rewrite.
/// (The pre-pipeline helper retired lazily per function, which could craft
/// such dangling references; images with ≥ 2 rewritten functions therefore
/// differ bitwise from its output. Single-function preparation — including
/// every `BENCH_dse.json` job — is unchanged.)
pub fn prepare_image(
    program: &raindrop_synth::Program,
    functions: &[String],
    kind: &ObfKind,
    seed: u64,
) -> Result<Image, PipelineError> {
    let run = kind.pipeline(seed).run_program(program, functions)?;
    run.into_strict().map(|(image, _)| image)
}

/// Prepares an image for a [`RandomFun`] under a configuration.
pub fn prepare_randomfun(
    rf: &RandomFun,
    kind: &ObfKind,
    seed: u64,
) -> Result<Image, PipelineError> {
    prepare_image(&rf.program, std::slice::from_ref(&rf.name), kind, seed)
}

/// Runs a workload under a configuration and returns the emulated cycle
/// count (the run-time proxy used for Fig. 5).
pub fn workload_cycles(w: &Workload, kind: &ObfKind, seed: u64) -> Result<u64, PipelineError> {
    let image = prepare_image(&w.program, &w.obfuscate, kind, seed)?;
    let mut emu = Emulator::new(&image);
    emu.set_budget(20_000_000_000);
    emu.call_named(&image, &w.entry, &w.args).expect("workload runs to completion");
    Ok(emu.stats().cycles)
}

/// DSE budgets: the paper gives each attack one hour on a Xeon server; the
/// quick budget is scaled so an unprotected function is cracked in well
/// under a second while a ~50x slowdown still exhausts it.
pub fn dse_budget(quick: bool) -> DseBudget {
    if quick {
        DseBudget {
            total_instructions: 12_000_000,
            per_path_instructions: 2_000_000,
            max_paths: 100,
            max_wall: Duration::from_secs(5),
            ..DseBudget::default()
        }
    } else {
        DseBudget {
            total_instructions: 400_000_000,
            per_path_instructions: 20_000_000,
            max_paths: 2_000,
            max_wall: Duration::from_secs(120),
            ..DseBudget::default()
        }
    }
}

/// One job of the `exp_dse_speed` suite: a prepared image plus the attack
/// to mount on it. The suite is the DSE-bound slice of the Table II quick
/// run (three structures, two input sizes, both goals, three
/// configurations) and must stay stable across PRs — `BENCH_dse.json`
/// compares wall-clock trajectories over exactly this job list.
pub struct DseSpeedJob {
    /// Human-readable job label (`<structure>/<size>/<goal>/<config>`).
    pub label: String,
    /// The prepared (possibly obfuscated) image.
    pub image: Image,
    /// Target function name.
    pub func: String,
    /// How the symbolic input reaches the target.
    pub spec: InputSpec,
    /// The attack goal.
    pub goal: AttackGoal,
}

/// The fixed job list `exp_dse_speed` measures (see [`DseSpeedJob`]).
/// `smoke` trims it to a CI-sized subset.
pub fn dse_speed_suite(smoke: bool) -> Vec<DseSpeedJob> {
    let structures = raindrop_synth::paper_structures();
    let picks: &[usize] = if smoke { &[0] } else { &[0, 1, 3] };
    let sizes: &[usize] = if smoke { &[1] } else { &[1, 4] };
    let configs: &[ObfKind] = if smoke {
        &[ObfKind::Native, ObfKind::Rop { k: 1.00 }]
    } else {
        &[ObfKind::Native, ObfKind::Rop { k: 0.25 }, ObfKind::Rop { k: 1.00 }]
    };
    let mut jobs = Vec::new();
    for &si in picks {
        let (name, structure) = &structures[si];
        for &input_size in sizes {
            for goal in [raindrop_synth::Goal::SecretFinding, raindrop_synth::Goal::CodeCoverage] {
                let rf = raindrop_synth::generate_randomfun(raindrop_synth::RandomFunConfig {
                    structure: structure.clone(),
                    structure_name: name.clone(),
                    input_size,
                    seed: 1,
                    goal,
                    loop_size: 3,
                });
                for kind in configs {
                    let image = prepare_randomfun(&rf, kind, 1).expect("suite image prepares");
                    let goal_label = match goal {
                        raindrop_synth::Goal::SecretFinding => "secret",
                        raindrop_synth::Goal::CodeCoverage => "coverage",
                    };
                    let attack_goal = match goal {
                        raindrop_synth::Goal::SecretFinding => AttackGoal::Secret { want: 1 },
                        raindrop_synth::Goal::CodeCoverage => {
                            AttackGoal::Coverage { total_probes: rf.probe_count }
                        }
                    };
                    jobs.push(DseSpeedJob {
                        label: format!(
                            "s{si}/in{input_size}/{goal_label}/{}",
                            kind.label().to_lowercase()
                        ),
                        image,
                        func: rf.name.clone(),
                        spec: InputSpec::RegisterArg { size_bytes: input_size },
                        goal: attack_goal,
                    });
                }
            }
        }
    }
    jobs
}

/// The budget `exp_dse_speed` gives every job: the Table II quick budget
/// plus a solver-work cap (`smoke` shrinks everything so the CI step
/// finishes in seconds).
///
/// The solver cap is what lets defeated attacks terminate on *work* rather
/// than wall clock: the frozen pre-PR explorer managed ~17 solver calls in
/// the 5 s wall (the cap never bound — the wall always hit first), so its
/// baseline numbers are valid under this budget definition, while the
/// current engine performs the full 600 calls and exits long before the
/// wall.
pub fn dse_speed_budget(smoke: bool) -> DseBudget {
    if smoke {
        DseBudget {
            total_instructions: 2_000_000,
            per_path_instructions: 500_000,
            max_paths: 40,
            max_wall: Duration::from_secs(2),
            max_solver_calls: 200,
            ..DseBudget::default()
        }
    } else {
        DseBudget { max_solver_calls: 600, ..dse_budget(true) }
    }
}

/// The depth-stress workload: a deep P3-heavy ROP chain (`ROP1.00` over a
/// 200-iteration loop with a branch per iteration) whose shadow run builds
/// long dependent expression chains. Under the tree-counted size hazard
/// this workload concretized after a handful of forked branches; the
/// DAG-counted arena keeps it symbolic far deeper. `exp_dse_speed
/// --depth-stress` measures how many distinct branches the explorer forks
/// before the first expression-size hazard.
pub fn depth_stress_randomfun() -> RandomFun {
    raindrop_synth::generate_randomfun(raindrop_synth::RandomFunConfig {
        structure: raindrop_synth::randomfuns::Ctrl::for_(raindrop_synth::randomfuns::Ctrl::if_(
            raindrop_synth::randomfuns::Ctrl::bb(4),
            raindrop_synth::randomfuns::Ctrl::bb(4),
        )),
        structure_name: "(for (if (bb 4) (bb 4)))".into(),
        input_size: 4,
        seed: 7,
        goal: raindrop_synth::Goal::SecretFinding,
        loop_size: depth_stress_loop_size(false),
    })
}

/// The loop trip count of the depth-stress workload (`smoke` shrinks it so
/// the CI step finishes in seconds while still crossing the old tree-size
/// hazard threshold).
pub fn depth_stress_loop_size(smoke: bool) -> u64 {
    if smoke {
        40
    } else {
        200
    }
}

/// A CI-sized variant of [`depth_stress_randomfun`].
pub fn depth_stress_randomfun_smoke() -> RandomFun {
    raindrop_synth::generate_randomfun(raindrop_synth::RandomFunConfig {
        structure: raindrop_synth::randomfuns::Ctrl::for_(raindrop_synth::randomfuns::Ctrl::if_(
            raindrop_synth::randomfuns::Ctrl::bb(4),
            raindrop_synth::randomfuns::Ctrl::bb(4),
        )),
        structure_name: "(for (if (bb 4) (bb 4)))".into(),
        input_size: 4,
        seed: 7,
        goal: raindrop_synth::Goal::SecretFinding,
        loop_size: depth_stress_loop_size(true),
    })
}

/// The budget of the depth-stress run: generous instruction/wall room (one
/// deep path through a ROP1.00 chain costs tens of millions of guest
/// instructions) with tight path/solver caps, because the measurement is
/// about how deep the *first* paths stay symbolic, not about cracking the
/// secret.
pub fn depth_stress_budget(smoke: bool) -> DseBudget {
    if smoke {
        DseBudget {
            total_instructions: 120_000_000,
            per_path_instructions: 12_000_000,
            max_paths: 6,
            max_wall: Duration::from_secs(20),
            max_solver_calls: 60,
            ..DseBudget::default()
        }
    } else {
        DseBudget {
            total_instructions: 600_000_000,
            per_path_instructions: 60_000_000,
            max_paths: 12,
            max_wall: Duration::from_secs(60),
            max_solver_calls: 300,
            ..DseBudget::default()
        }
    }
}

/// One Table II row: secret-finding and coverage results for a
/// configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Configuration label.
    pub config: String,
    /// Functions whose secret was found.
    pub secrets_found: usize,
    /// Average wall-clock seconds of the successful secret attacks.
    pub avg_secret_seconds: f64,
    /// Functions fully covered.
    pub fully_covered: usize,
    /// Functions attempted.
    pub attempted: usize,
    /// Exhausted budget dimensions of the failed attacks, with counts.
    pub exhausted: Vec<(String, usize)>,
}

/// Runs the Table II experiment over the given random functions and
/// configurations. All attacks of all configurations are sharded over one
/// [`AttackFleet`] (worker count from `RAINDROP_DSE_WORKERS` or the
/// machine's parallelism); results are aggregated per configuration.
pub fn run_table2(
    secret_funs: &[RandomFun],
    coverage_funs: &[RandomFun],
    configs: &[ObfKind],
    budget: DseBudget,
) -> Vec<Table2Row> {
    // Job construction: images are prepared up front (cheap next to the
    // attacks); each job is tagged with its configuration index and goal.
    let mut jobs = Vec::new();
    let mut tags = Vec::new();
    let mut attempted = vec![0usize; configs.len()];
    for (ci, kind) in configs.iter().enumerate() {
        for (rf_secret, rf_cov) in secret_funs.iter().zip(coverage_funs) {
            attempted[ci] += 1;
            if let Ok(image) = prepare_randomfun(rf_secret, kind, 1) {
                jobs.push(DseJob::new(
                    format!("{}/{}/secret", kind.label(), rf_secret.name),
                    image,
                    rf_secret.name.clone(),
                    InputSpec::RegisterArg { size_bytes: rf_secret.config.input_size },
                    budget,
                    AttackGoal::Secret { want: 1 },
                ));
                tags.push((ci, true));
            }
            if let Ok(image) = prepare_randomfun(rf_cov, kind, 1) {
                jobs.push(DseJob::new(
                    format!("{}/{}/coverage", kind.label(), rf_cov.name),
                    image,
                    rf_cov.name.clone(),
                    InputSpec::RegisterArg { size_bytes: rf_cov.config.input_size },
                    budget,
                    AttackGoal::Coverage { total_probes: rf_cov.probe_count },
                ));
                tags.push((ci, false));
            }
        }
    }

    let results = AttackFleet::from_env().run_dse(jobs);

    let mut rows: Vec<Table2Row> = configs
        .iter()
        .enumerate()
        .map(|(ci, kind)| Table2Row {
            config: kind.label(),
            secrets_found: 0,
            avg_secret_seconds: 0.0,
            fully_covered: 0,
            attempted: attempted[ci],
            exhausted: Vec::new(),
        })
        .collect();
    let mut secret_time = vec![0.0f64; configs.len()];
    let mut exhausted: Vec<std::collections::BTreeMap<String, usize>> =
        vec![Default::default(); configs.len()];
    for ((ci, is_secret), result) in tags.into_iter().zip(results) {
        let outcome = result.outcome;
        if outcome.success {
            if is_secret {
                rows[ci].secrets_found += 1;
                secret_time[ci] += outcome.wall.as_secs_f64();
            } else {
                rows[ci].fully_covered += 1;
            }
        } else if let Some(dim) = outcome.exhausted {
            *exhausted[ci].entry(dim.to_string()).or_insert(0) += 1;
        }
    }
    for (ci, row) in rows.iter_mut().enumerate() {
        if row.secrets_found > 0 {
            row.avg_secret_seconds = secret_time[ci] / row.secrets_found as f64;
        }
        row.exhausted = std::mem::take(&mut exhausted[ci]).into_iter().collect();
        eprintln!("  [{}] done", row.config);
    }
    rows
}

/// Parses the optional `--class <name>` filter shared by `exp_workloads`,
/// `exp_table3` and `exp_efficacy`: restricts a run to one registered
/// workload class. Unknown class names abort with the list of valid ones.
pub fn class_filter() -> Option<raindrop_synth::ClassId> {
    let args: Vec<String> = std::env::args().collect();
    let pos = args.iter().position(|a| a == "--class")?;
    let name = args.get(pos + 1).unwrap_or_else(|| {
        eprintln!("--class requires a class name");
        std::process::exit(2);
    });
    match raindrop_synth::ClassId::from_name(name) {
        Some(class) => Some(class),
        None => {
            let known: Vec<&str> =
                raindrop_synth::ClassId::all().into_iter().map(|c| c.name()).collect();
            eprintln!("unknown workload class {name:?}; known classes: {}", known.join(", "));
            std::process::exit(2);
        }
    }
}

/// The runnable workloads of one class at `seed`, in generation order.
pub fn class_workload_list(class: raindrop_synth::ClassId, seed: u64) -> Vec<Workload> {
    raindrop_synth::classes::generate(class, seed).into_iter().map(|cp| cp.workload).collect()
}

/// Writes a JSON report next to the textual output.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = format!("{name}.json");
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if std::fs::write(&path, s).is_ok() {
                println!("[report written to {path}]");
            }
        }
        Err(e) => eprintln!("could not serialize report: {e}"),
    }
}

/// Parses the common `--full` flag.
pub fn is_full_run() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// The `straight_line` dispatch workload shared by the `emu_dispatch`
/// criterion bench and the `exp_emu_dispatch` driver: `rdi` iterations of a
/// 64-instruction unrolled register-only ALU kernel (plus the 2-instruction
/// loop tail), entry `spin`. One builder so both report the same kernel
/// under the same label.
pub fn straight_line_image() -> Image {
    use raindrop_machine::{AluOp, Assembler, Cond, ImageBuilder, Inst, Reg};
    let mut a = Assembler::new();
    let top = a.new_label();
    a.inst(Inst::MovRI(Reg::Rax, 1));
    a.inst(Inst::MovRI(Reg::Rcx, 3));
    a.inst(Inst::MovRI(Reg::Rdx, 5));
    a.bind(top);
    for _ in 0..16 {
        a.inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rcx));
        a.inst(Inst::Alu(AluOp::Xor, Reg::Rcx, Reg::Rdx));
        a.inst(Inst::Alu(AluOp::Add, Reg::Rdx, Reg::Rax));
        a.inst(Inst::Shl(Reg::Rax, 1));
    }
    a.inst(Inst::AluI(AluOp::Sub, Reg::Rdi, 1));
    a.jcc(Cond::Ne, top);
    a.inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("spin", a);
    b.build().expect("straight-line image links")
}

/// A synthetic chain shaped like a crafted one — mostly gadget+imm pairs
/// with branch deltas, block markers and unaligned confusion padding —
/// shared by the `materialize` criterion bench and the `exp_materialize`
/// driver so both measure the same layout under the same label.
pub fn synthetic_chain(items: usize, gadget_addr: u64) -> raindrop::Chain {
    use raindrop::{Chain, ChainItem, DeltaTarget};
    use raindrop_analysis::BlockId;
    use raindrop_gadgets::GadgetOp;
    let mut chain = Chain::new();
    let mut block = 0usize;
    for i in 0..items {
        match i % 8 {
            0 => {
                chain.items.push(ChainItem::BlockStart(BlockId(block)));
                block += 1;
            }
            1 | 4 | 6 => chain.items.push(ChainItem::Gadget {
                addr: gadget_addr,
                junk_pops: usize::from(i % 16 == 4),
                op: GadgetOp::Unclassified,
            }),
            2 | 5 => chain.items.push(ChainItem::Imm(i as u64)),
            3 => chain.items.push(ChainItem::BranchDelta {
                target: DeltaTarget::Item(i - 2),
                anchor: i - 2,
                bias: 0,
            }),
            _ => chain.items.push(ChainItem::Pad(vec![0xAA; 3])),
        }
    }
    chain
}

/// An image with `funcs` rewritable functions (`f0`..), each big enough for
/// the pivot stub — the materialization-bench workload image.
pub fn many_function_image(funcs: usize) -> Image {
    use raindrop_machine::{Assembler, ImageBuilder, Inst, Reg};
    let mut b = ImageBuilder::new();
    for i in 0..funcs {
        let mut a = Assembler::new();
        for _ in 0..12 {
            a.inst(Inst::MovRI(Reg::Rax, 7));
        }
        a.inst(Inst::Ret);
        b.add_function(format!("f{i}"), a);
    }
    b.build().expect("image links")
}

/// Generates a laptop-scale subset of the 72-function population: one seed
/// per structure and the two smallest input sizes (quick) or the full 72
/// (`full`).
pub fn randomfun_population(goal: raindrop_synth::Goal, full: bool) -> Vec<RandomFun> {
    if full {
        raindrop_synth::paper_suite(goal, 8)
    } else {
        raindrop_synth::paper_structures()
            .into_iter()
            .flat_map(|(name, structure)| {
                [1usize, 4].into_iter().map(move |input_size| {
                    raindrop_synth::generate_randomfun(raindrop_synth::RandomFunConfig {
                        structure: structure.clone(),
                        structure_name: name.clone(),
                        input_size,
                        seed: 1,
                        goal,
                        loop_size: 3,
                    })
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_synth::{randomfuns, Goal};

    fn tiny_rf(goal: Goal) -> RandomFun {
        randomfuns::generate(raindrop_synth::RandomFunConfig {
            structure: randomfuns::Ctrl::if_(randomfuns::Ctrl::bb(4), randomfuns::Ctrl::bb(4)),
            structure_name: "(if (bb 4) (bb 4))".into(),
            input_size: 1,
            seed: 2,
            goal,
            loop_size: 2,
        })
    }

    #[test]
    fn table2_configuration_list_matches_table_i() {
        let configs = table2_configurations(true);
        assert_eq!(configs.len(), 15);
        assert_eq!(configs[0].label(), "NATIVE");
        assert_eq!(configs[1].label(), "ROP0.05");
        assert_eq!(configs.last().unwrap().label(), "3VM-IMPall");
        assert!(table2_configurations(false).len() < 15);
    }

    #[test]
    fn prepare_image_supports_all_kinds() {
        let rf = tiny_rf(Goal::SecretFinding);
        for kind in [
            ObfKind::Native,
            ObfKind::Rop { k: 0.0 },
            ObfKind::Vm { layers: 1, implicit: ImplicitAt::None },
            ObfKind::RopOverVm { k: 0.0, layers: 1, implicit: ImplicitAt::None },
            ObfKind::VmOverRop { k: 0.0, layers: 1, implicit: ImplicitAt::None },
        ] {
            let image = prepare_randomfun(&rf, &kind, 1).expect("prepares");
            let mut emu = Emulator::new(&image);
            emu.set_budget(200_000_000);
            assert_eq!(
                emu.call_named(&image, &rf.name, &[rf.secret_input]).unwrap(),
                1,
                "{} preserves semantics",
                kind.label()
            );
        }
    }

    #[test]
    fn native_is_cracked_and_not_easier_than_rop_under_the_quick_budget() {
        let rf = tiny_rf(Goal::SecretFinding);
        let budget = dse_budget(true);
        let rows = run_table2(
            std::slice::from_ref(&rf),
            &[tiny_rf(Goal::CodeCoverage)],
            &[ObfKind::Native, ObfKind::Rop { k: 1.0 }],
            budget,
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].secrets_found, 1, "native function cracked");
        assert!(rows[1].secrets_found <= rows[0].secrets_found);
    }

    #[test]
    fn cross_layer_labels_read_outer_first() {
        let rop_over_vm = ObfKind::RopOverVm { k: 1.0, layers: 2, implicit: ImplicitAt::Last };
        assert_eq!(rop_over_vm.label(), "ROP1.00-over-2VM-IMPlast");
        let vm_over_rop = ObfKind::VmOverRop { k: 0.25, layers: 1, implicit: ImplicitAt::None };
        assert_eq!(vm_over_rop.label(), "1VM-over-ROP0.25");
    }

    #[test]
    fn workload_cycles_grow_with_obfuscation() {
        let w = raindrop_synth::workloads::pidigits();
        let native = workload_cycles(&w, &ObfKind::Native, 1).unwrap();
        let rop = workload_cycles(&w, &ObfKind::Rop { k: 0.05 }, 1).unwrap();
        assert!(native > 0);
        assert!(rop > native, "ROP rewriting costs cycles ({rop} vs {native})");
    }
}
