//! Differential tests of the MiniC → RM64 code generator against the
//! reference interpreter, plus structural checks on the RandomFuns
//! population (Table IV), the clbg workloads (Fig. 5 / Table III) and the
//! coreutils-like corpus (§VII-C1).

use proptest::prelude::*;
use raindrop_machine::Emulator;
use raindrop_synth::minic::{BinOp, Expr, Function, Program, Stmt, UnOp};
use raindrop_synth::{
    codegen, corpus, generate_randomfun, input_mask, paper_structures, paper_suite, workloads,
    CorpusKind, Goal, Interp, RandomFunConfig,
};

/// Runs a program both ways and asserts the results agree.
fn assert_agrees(program: &Program, func: &str, args: &[u64]) {
    let mut interp = Interp::new(program);
    let expected = interp.call(func, args).expect("interpreter succeeds");
    let image = codegen::compile(program).expect("compiles");
    let mut emu = Emulator::new(&image);
    emu.set_budget(2_000_000_000);
    let got = emu.call_named(&image, func, args).expect("runs");
    assert_eq!(got, expected, "{func}({args:?})");
}

// --- hand-written programs -----------------------------------------------------

#[test]
fn collatz_total_stopping_time_agrees() {
    let f = Function {
        name: "collatz".into(),
        params: 1,
        locals: 2,
        body: vec![
            Stmt::Assign(0, Expr::Arg(0)),
            Stmt::Assign(1, Expr::c(0)),
            Stmt::While(
                Expr::bin(BinOp::Gt, Expr::Var(0), Expr::c(1)),
                vec![
                    Stmt::If(
                        Expr::bin(BinOp::And, Expr::Var(0), Expr::c(1)),
                        vec![Stmt::Assign(
                            0,
                            Expr::bin(
                                BinOp::Add,
                                Expr::bin(BinOp::Mul, Expr::Var(0), Expr::c(3)),
                                Expr::c(1),
                            ),
                        )],
                        vec![Stmt::Assign(0, Expr::bin(BinOp::Div, Expr::Var(0), Expr::c(2)))],
                    ),
                    Stmt::Assign(1, Expr::bin(BinOp::Add, Expr::Var(1), Expr::c(1))),
                ],
            ),
            Stmt::Return(Expr::Var(1)),
        ],
    };
    let p = Program::new().with_function(f);
    for n in [1u64, 2, 7, 27, 97, 1000] {
        assert_agrees(&p, "collatz", &[n]);
    }
}

#[test]
fn nested_calls_and_globals_agree() {
    let store = Function {
        name: "store_at".into(),
        params: 2,
        locals: 0,
        body: vec![
            Stmt::Store(
                Expr::bin(
                    BinOp::Add,
                    Expr::GlobalAddr("cells".into()),
                    Expr::bin(BinOp::Mul, Expr::Arg(0), Expr::c(8)),
                ),
                Expr::Arg(1),
            ),
            Stmt::Return(Expr::c(0)),
        ],
    };
    let sum = Function {
        name: "sum_cells".into(),
        params: 1,
        locals: 2,
        body: vec![
            Stmt::Assign(0, Expr::c(0)),
            Stmt::Assign(1, Expr::c(0)),
            Stmt::While(
                Expr::bin(BinOp::Lt, Expr::Var(1), Expr::Arg(0)),
                vec![
                    Stmt::Assign(
                        0,
                        Expr::bin(
                            BinOp::Add,
                            Expr::Var(0),
                            Expr::Load(Box::new(Expr::bin(
                                BinOp::Add,
                                Expr::GlobalAddr("cells".into()),
                                Expr::bin(BinOp::Mul, Expr::Var(1), Expr::c(8)),
                            ))),
                        ),
                    ),
                    Stmt::Assign(1, Expr::bin(BinOp::Add, Expr::Var(1), Expr::c(1))),
                ],
            ),
            Stmt::Return(Expr::Var(0)),
        ],
    };
    let driver = Function {
        name: "driver".into(),
        params: 1,
        locals: 1,
        body: vec![
            Stmt::Assign(0, Expr::c(0)),
            Stmt::While(
                Expr::bin(BinOp::Lt, Expr::Var(0), Expr::c(8)),
                vec![
                    Stmt::ExprStmt(Expr::Call(
                        "store_at".into(),
                        vec![Expr::Var(0), Expr::bin(BinOp::Mul, Expr::Var(0), Expr::Arg(0))],
                    )),
                    Stmt::Assign(0, Expr::bin(BinOp::Add, Expr::Var(0), Expr::c(1))),
                ],
            ),
            Stmt::Return(Expr::Call("sum_cells".into(), vec![Expr::c(8)])),
        ],
    };
    let p = Program::new()
        .with_function(store)
        .with_function(sum)
        .with_function(driver)
        .with_global("cells", vec![0u8; 64]);
    for x in [0u64, 1, 3, 1000] {
        assert_agrees(&p, "driver", &[x]);
    }
}

#[test]
fn byte_memory_and_unary_operators_agree() {
    let f = Function {
        name: "bytes".into(),
        params: 1,
        locals: 1,
        body: vec![
            Stmt::StoreByte(Expr::GlobalAddr("buf".into()), Expr::Arg(0)),
            Stmt::StoreByte(
                Expr::bin(BinOp::Add, Expr::GlobalAddr("buf".into()), Expr::c(1)),
                Expr::un(UnOp::Not, Expr::Arg(0)),
            ),
            Stmt::Assign(
                0,
                Expr::bin(
                    BinOp::Or,
                    Expr::LoadByte(Box::new(Expr::GlobalAddr("buf".into()))),
                    Expr::bin(
                        BinOp::Shl,
                        Expr::LoadByte(Box::new(Expr::bin(
                            BinOp::Add,
                            Expr::GlobalAddr("buf".into()),
                            Expr::c(1),
                        ))),
                        Expr::c(8),
                    ),
                ),
            ),
            Stmt::Return(Expr::un(UnOp::Neg, Expr::Var(0))),
        ],
    };
    let p = Program::new().with_function(f).with_global("buf", vec![0u8; 2]);
    for x in [0u64, 0x41, 0xff, 0x1234] {
        assert_agrees(&p, "bytes", &[x]);
    }
}

// --- property test: random expression programs -----------------------------------

/// A small strategy for arithmetic expressions over two arguments and two
/// locals (depth-bounded).
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Expr::Const),
        (0usize..2).prop_map(Expr::Arg),
        (0usize..2).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Xor),
                    Just(BinOp::Lt),
                    Just(BinOp::Gt),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner)
                .prop_map(|(op, a)| Expr::un(op, a)),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random straight-line + conditional programs evaluate identically under
    /// the interpreter and the compiled RM64 code.
    #[test]
    fn random_programs_compile_to_equivalent_code(
        init0 in arb_expr(2),
        init1 in arb_expr(2),
        cond in arb_expr(2),
        then_e in arb_expr(3),
        else_e in arb_expr(3),
        result in arb_expr(3),
        args in prop::collection::vec(any::<u64>(), 2),
    ) {
        let f = Function {
            name: "rand_fn".into(),
            params: 2,
            locals: 2,
            body: vec![
                Stmt::Assign(0, init0),
                Stmt::Assign(1, init1),
                Stmt::If(cond, vec![Stmt::Assign(0, then_e)], vec![Stmt::Assign(1, else_e)]),
                Stmt::Return(result),
            ],
        };
        let p = Program::new().with_function(f);
        let mut interp = Interp::new(&p);
        let expected = interp.call("rand_fn", &args).unwrap();
        let image = codegen::compile(&p).unwrap();
        let mut emu = Emulator::new(&image);
        emu.set_budget(100_000_000);
        let got = emu.call_named(&image, "rand_fn", &args).unwrap();
        prop_assert_eq!(got, expected);
    }
}

// --- RandomFuns population (§VII-B, Table IV) ------------------------------------

#[test]
fn the_paper_structures_match_table_iv() {
    let structures = paper_structures();
    assert_eq!(structures.len(), 6, "six control structures");
    // Table IV: depth / #if / #loops per structure. `Ctrl::depth()` counts
    // the basic-block leaves as one level, so every Table IV depth appears
    // shifted by one.
    let expected = [(2, 1, 0), (3, 1, 1), (3, 0, 2), (4, 1, 2), (4, 3, 1), (4, 5, 0)];
    let mut seen: Vec<(usize, usize, usize)> =
        structures.iter().map(|(_, c)| (c.depth(), c.if_count(), c.loop_count())).collect();
    let mut want: Vec<(usize, usize, usize)> = expected.to_vec();
    seen.sort_unstable();
    want.sort_unstable();
    assert_eq!(seen, want);
}

#[test]
fn the_full_suite_has_72_functions() {
    let suite = paper_suite(Goal::SecretFinding, 4);
    assert_eq!(suite.len(), 72, "6 structures × 4 input sizes × 3 seeds");
    let sizes: std::collections::BTreeSet<usize> =
        suite.iter().map(|rf| rf.config.input_size).collect();
    assert_eq!(sizes.into_iter().collect::<Vec<_>>(), vec![1, 2, 4, 8]);
}

#[test]
fn randomfun_generation_is_deterministic_and_the_secret_validates() {
    let (name, structure) = paper_structures().into_iter().nth(1).unwrap();
    let config = RandomFunConfig {
        structure,
        structure_name: name,
        input_size: 2,
        seed: 3,
        goal: Goal::SecretFinding,
        loop_size: 3,
    };
    let a = generate_randomfun(config.clone());
    let b = generate_randomfun(config);
    assert_eq!(a.program, b.program, "same seed, same program");
    assert_eq!(a.secret_input, b.secret_input);
    assert_eq!(a.secret_input & !input_mask(2), 0, "secret fits the declared input size");

    // The point test accepts the secret and rejects a couple of other inputs.
    let image = codegen::compile(&a.program).unwrap();
    let mut emu = Emulator::new(&image);
    emu.set_budget(500_000_000);
    assert_eq!(emu.call_named(&image, &a.name, &[a.secret_input]).unwrap(), 1);
    let mut rejected = 0;
    for probe in [a.secret_input ^ 1, a.secret_input.wrapping_add(7) & a.input_mask(), 0] {
        if probe == a.secret_input {
            continue;
        }
        let mut emu = Emulator::new(&image);
        emu.set_budget(500_000_000);
        if emu.call_named(&image, &a.name, &[probe]).unwrap() == 0 {
            rejected += 1;
        }
    }
    assert!(rejected >= 1, "the point test is not a constant function");
}

#[test]
fn coverage_flavour_emits_probes_and_the_interpreter_agrees_with_the_emulator() {
    let (name, structure) = paper_structures().into_iter().next().unwrap();
    let rf = generate_randomfun(RandomFunConfig {
        structure,
        structure_name: name,
        input_size: 1,
        seed: 2,
        goal: Goal::CodeCoverage,
        loop_size: 3,
    });
    assert!(rf.probe_count > 0, "coverage flavour annotates split/join points");
    let image = codegen::compile(&rf.program).unwrap();
    for input in 0..8u64 {
        let mut interp = Interp::new(&rf.program);
        let expected = interp.call(&rf.name, &[input]).unwrap();
        let mut emu = Emulator::new(&image);
        emu.set_budget(500_000_000);
        assert_eq!(emu.call_named(&image, &rf.name, &[input]).unwrap(), expected);
    }
}

// --- clbg workloads and base64 (§VII-C) --------------------------------------------

#[test]
fn every_clbg_kernel_compiles_runs_and_is_deterministic() {
    let suite = workloads::clbg_suite();
    assert_eq!(suite.len(), 10, "the ten kernels of Fig. 5 / Table III");
    let names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
    for expected in ["b-trees", "fannkuch", "fasta", "mandelbrot", "n-body", "pidigits", "sp-norm"]
    {
        assert!(names.contains(&expected), "{expected} missing from the suite");
    }
    for w in &suite {
        let image = codegen::compile(&w.program).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let mut e1 = Emulator::new(&image);
        e1.set_budget(20_000_000_000);
        let r1 = e1.call_named(&image, &w.entry, &w.args).unwrap();
        let mut e2 = Emulator::new(&image);
        e2.set_budget(20_000_000_000);
        let r2 = e2.call_named(&image, &w.entry, &w.args).unwrap();
        assert_eq!(r1, r2, "{} is deterministic", w.name);
        assert!(!w.obfuscate.is_empty(), "{} declares functions to obfuscate", w.name);
        for f in &w.obfuscate {
            assert!(w.program.function(f).is_some(), "{}: obfuscation target {f} exists", w.name);
        }
    }
}

#[test]
fn base64_reference_vectors_hold() {
    // RFC 4648 test vectors, written through guest memory.
    let w = workloads::base64();
    let image = codegen::compile(&w.program).unwrap();
    let input_addr = image.symbol("b64_in").unwrap();
    let output_addr = image.symbol("b64_out").unwrap();
    for (plain, encoded) in [
        ("f", "Zg=="),
        ("fo", "Zm8="),
        ("foo", "Zm9v"),
        ("foob", "Zm9vYg=="),
        ("fooba", "Zm9vYmE="),
        ("foobar", "Zm9vYmFy"),
    ] {
        let mut emu = Emulator::new(&image);
        emu.set_budget(500_000_000);
        emu.mem.write_bytes(input_addr, plain.as_bytes());
        emu.call_named(&image, "base64_encode", &[plain.len() as u64]).unwrap();
        let mut buf = vec![0u8; encoded.len()];
        emu.mem.read_bytes(output_addr, &mut buf);
        assert_eq!(&buf, encoded.as_bytes(), "base64({plain})");
    }
}

// --- corpus (§VII-C1) -----------------------------------------------------------------

#[test]
fn the_corpus_is_heterogeneous_and_reproducible() {
    let c1 = corpus::generate(200, 42);
    let c2 = corpus::generate(200, 42);
    assert_eq!(c1.entries, c2.entries, "same seed, same corpus");
    assert_eq!(c1.image.text, c2.image.text);
    assert!(c1.entries.len() >= 200);
    // Every declared entry exists in the image.
    for e in &c1.entries {
        assert!(c1.image.function(&e.name).is_ok(), "{} missing", e.name);
    }
    // The failure-bucket kinds of §VII-C1 are all represented.
    for kind in [
        CorpusKind::Ordinary,
        CorpusKind::Tiny,
        CorpusKind::RegisterPressure,
        CorpusKind::Unsupported,
    ] {
        assert!(!c1.names_of(kind).is_empty(), "{kind:?} bucket is empty");
    }
    // Ordinary functions dominate, as in coreutils.
    assert!(c1.names_of(CorpusKind::Ordinary).len() * 2 > c1.entries.len());
    // Tiny functions really are tiny.
    for name in c1.names_of(CorpusKind::Tiny) {
        assert!(c1.image.function(name).unwrap().size < 60);
    }
}
