//! A coreutils-like corpus of heterogeneous functions (§VII-C1).
//!
//! The paper measures rewriting coverage over the 1354 unique functions of
//! coreutils 8.28: 119 are shorter than the pivoting sequence, 40 fail for
//! register pressure, 19 for unsupported stack idioms and 1 for CFG
//! reconstruction. This module generates a corpus with the same *kinds* of
//! functions — ordinary compiler output of varying size and shape, a tail of
//! tiny stubs, a few register-pressure monsters and a few functions using
//! idioms the translator rejects — so the coverage experiment exercises every
//! failure class.

use crate::codegen::compile_function;
use crate::minic::{MAX_PROBES, PROBE_ARRAY};
use crate::randomfuns::{self, Ctrl, Goal, RandomFunConfig};
use raindrop_machine::{AluOp, Assembler, Image, ImageBuilder, Inst, Reg};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// What kind of function a corpus entry is (used to sanity-check the
/// coverage experiment's failure buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorpusKind {
    /// Ordinary compiler-shaped function; expected to rewrite successfully.
    Ordinary,
    /// Shorter than the pivot stub; expected to be skipped.
    Tiny,
    /// Keeps almost every register live across a stack operation; expected
    /// to fail with register pressure.
    RegisterPressure,
    /// Uses an idiom the translator rejects (indirect call).
    Unsupported,
}

/// One corpus entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// Function name inside the corpus image.
    pub name: String,
    /// Expected rewriting outcome class.
    pub kind: CorpusKind,
}

/// A generated corpus: one image with many functions.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The linked image containing every corpus function.
    pub image: Image,
    /// The entries in generation order.
    pub entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// Names of the functions of a given kind.
    pub fn names_of(&self, kind: CorpusKind) -> Vec<&str> {
        self.entries.iter().filter(|e| e.kind == kind).map(|e| e.name.as_str()).collect()
    }
}

/// Deterministic FNV-1a tag for a named RNG stream. Seeding
/// `ChaCha8Rng::seed_from_u64(seed ^ stream_tag(name))` gives each consumer
/// its own stream derived from one user-facing seed, so different generators
/// never share (and can never perturb) each other's draws.
pub fn stream_tag(name: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &byte in name {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn random_structure(rng: &mut ChaCha8Rng) -> Ctrl {
    let structures = randomfuns::paper_structures();
    let (_, s) = &structures[rng.gen_range(0..structures.len())];
    s.clone()
}

fn tiny_function() -> Assembler {
    let mut a = Assembler::new();
    a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi));
    a.inst(Inst::AluI(AluOp::Add, Reg::Rax, 1));
    a.inst(Inst::Ret);
    a
}

fn register_pressure_function() -> Assembler {
    // Fill every register with a distinct value, push/pop in the middle so
    // the stack-access lowering needs scratch registers that do not exist,
    // then consume all the values so they stay live across the push.
    let mut a = Assembler::new();
    let regs = [
        Reg::Rbx,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
        Reg::Rbp,
    ];
    for (i, r) in regs.iter().enumerate() {
        a.inst(Inst::MovRI(*r, i as i64 + 1));
    }
    a.inst(Inst::MovRI(Reg::Rax, 0));
    a.inst(Inst::Push(Reg::Rax));
    a.inst(Inst::Pop(Reg::Rax));
    for r in regs {
        a.inst(Inst::Alu(AluOp::Add, Reg::Rax, r));
    }
    a.inst(Inst::Ret);
    a
}

fn unsupported_function() -> Assembler {
    // An indirect call through a register: the translator classifies this as
    // an unsupported inter-procedural transfer.
    let mut a = Assembler::new();
    a.inst(Inst::Push(Reg::Rbp));
    a.inst(Inst::MovRR(Reg::Rbp, Reg::Rsp));
    a.inst(Inst::AluI(AluOp::Sub, Reg::Rsp, 16));
    a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi));
    a.inst(Inst::MovRI(Reg::R11, 0x1_0000));
    a.inst(Inst::CallReg(Reg::R11));
    a.inst(Inst::AluI(AluOp::Add, Reg::Rax, 1));
    a.inst(Inst::Leave);
    a.inst(Inst::Ret);
    a
}

/// Generates a corpus of `count` functions with roughly the paper's mix of
/// failure classes (about 9% tiny, 3% register pressure, 1.5% unsupported).
pub fn generate(count: usize, seed: u64) -> Corpus {
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = ImageBuilder::new();
    builder.add_bss(PROBE_ARRAY, MAX_PROBES * 8);
    let mut entries = Vec::with_capacity(count);

    for i in 0..count {
        // Exactly two draws from the shared stream per entry — the kind roll
        // and a payload sub-seed — regardless of which kind is chosen. Any
        // per-kind randomness comes from a sub-RNG seeded with the payload,
        // so a generator that changes how much randomness it consumes cannot
        // shift the kinds (or payloads) of later entries. The regression
        // tests below pin this discipline.
        let roll: f64 = rng.gen();
        let payload: u64 = rng.gen();
        let (name, kind, asm) = if roll < 0.088 {
            (format!("corpus_tiny_{i}"), CorpusKind::Tiny, tiny_function())
        } else if roll < 0.118 {
            (
                format!("corpus_pressure_{i}"),
                CorpusKind::RegisterPressure,
                register_pressure_function(),
            )
        } else if roll < 0.132 {
            (format!("corpus_indirect_{i}"), CorpusKind::Unsupported, unsupported_function())
        } else {
            use rand::SeedableRng as _;
            let mut sub = ChaCha8Rng::seed_from_u64(payload ^ stream_tag(b"corpus-ordinary"));
            let cfg = RandomFunConfig {
                structure: random_structure(&mut sub),
                structure_name: "corpus".to_string(),
                input_size: [1usize, 2, 4, 8][sub.gen_range(0..4usize)],
                seed: sub.gen(),
                goal: if sub.gen_bool(0.5) { Goal::SecretFinding } else { Goal::CodeCoverage },
                loop_size: sub.gen_range(2..8),
            };
            let rf = randomfuns::generate(cfg);
            let mut f = rf.program.functions[0].clone();
            f.name = format!("corpus_fn_{i}");
            let asm = compile_function(&f).expect("corpus function compiles");
            (f.name.clone(), CorpusKind::Ordinary, asm)
        };
        builder.add_function(name.clone(), asm);
        entries.push(CorpusEntry { name, kind });
    }

    let image = builder.build().expect("corpus links");
    Corpus { image, entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_contains_every_kind_and_is_deterministic() {
        let corpus = generate(120, 8);
        assert_eq!(corpus.entries.len(), 120);
        for kind in [
            CorpusKind::Ordinary,
            CorpusKind::Tiny,
            CorpusKind::RegisterPressure,
            CorpusKind::Unsupported,
        ] {
            assert!(!corpus.names_of(kind).is_empty(), "expected at least one {kind:?} function");
        }
        assert!(corpus.names_of(CorpusKind::Ordinary).len() > 90);
        let again = generate(120, 8);
        assert_eq!(corpus.entries, again.entries);
        assert_eq!(corpus.image.functions.len(), again.image.functions.len());
    }

    fn kind_fingerprint(count: usize, seed: u64) -> String {
        generate(count, seed)
            .entries
            .iter()
            .map(|e| match e.kind {
                CorpusKind::Ordinary => 'O',
                CorpusKind::Tiny => 'T',
                CorpusKind::RegisterPressure => 'P',
                CorpusKind::Unsupported => 'U',
            })
            .collect()
    }

    /// The kind sequence is a pure function of the two fixed draws per
    /// entry: simulating that discipline with an independent RNG must match
    /// what `generate` actually produced. If any generator started pulling
    /// extra randomness from the shared stream, this (and the frozen table
    /// below) would catch the silent shift in later entries' kinds.
    #[test]
    fn kind_stream_uses_exactly_two_draws_per_entry() {
        use rand::SeedableRng;
        for seed in [0u64, 1, 8, 99] {
            let corpus = generate(48, seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for (i, entry) in corpus.entries.iter().enumerate() {
                let roll: f64 = rng.gen();
                let _payload: u64 = rng.gen();
                let expect = if roll < 0.088 {
                    CorpusKind::Tiny
                } else if roll < 0.118 {
                    CorpusKind::RegisterPressure
                } else if roll < 0.132 {
                    CorpusKind::Unsupported
                } else {
                    CorpusKind::Ordinary
                };
                assert_eq!(entry.kind, expect, "seed {seed}, entry {i}");
            }
        }
    }

    /// Frozen seed→kind-fingerprint table. These strings may only change in
    /// a commit that *deliberately* changes the corpus stream discipline;
    /// any other diff here means an unrelated generator perturbed the shared
    /// RNG stream.
    #[test]
    fn kind_fingerprints_are_frozen() {
        let table = [
            (3u64, "OOOTOOOOOOOOOOTOOOOOTOPOOOOOOOTO"),
            (8u64, "OOOOOOOTPTOOOOOOOOOOTOOOOOOOOOOO"),
            (21u64, "OOOOOOOTOOOTOTOOTTOOOTOOOOTOOOOT"),
            (77u64, "OTOOOOOOUOOOOOOTOTOOOOOOOTOOTOPO"),
        ];
        for (seed, want) in table {
            assert_eq!(kind_fingerprint(32, seed), want, "seed {seed}");
        }
    }

    #[test]
    fn stream_tags_separate_named_streams() {
        assert_ne!(stream_tag(b"corpus-ordinary"), stream_tag(b"application"));
        assert_eq!(stream_tag(b"database"), stream_tag(b"database"));
    }

    #[test]
    fn ordinary_corpus_functions_execute() {
        let corpus = generate(40, 3);
        let mut emu = raindrop_machine::Emulator::new(&corpus.image);
        for name in corpus.names_of(CorpusKind::Ordinary).into_iter().take(5) {
            emu.call_named(&corpus.image, name, &[12345]).unwrap();
        }
    }
}
