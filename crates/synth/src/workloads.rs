//! CPU-bound workloads: the ten clbg shootout kernels of Fig. 5 / Table III,
//! the base64 case study of §VII-C3, and the tiny allocator runtime they
//! share.
//!
//! The real Computer Language Benchmarks Game programs are I/O-heavy C; here
//! each kernel is a self-contained MiniC function (plus helpers) with the
//! same structural character the paper relies on — allocation-heavy
//! (b-trees), permutation-heavy (fannkuch), table-driven byte processing
//! (fasta, rev-comp, regex-redux, base64), numeric loops (mandelbrot,
//! n-body, pidigits, sp-norm with a short helper called from a tight loop).
//! Run time is measured in emulated cycles, so absolute scale differences
//! from the originals do not matter; only relative slowdowns do.

use crate::minic::{BinOp, Expr, Function, Global, Program, Stmt, UnOp};
use raindrop_machine::HEAP_BASE;

/// A named benchmark workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Benchmark name (matches the paper's Fig. 5 labels).
    pub name: String,
    /// The MiniC program.
    pub program: Program,
    /// Entry function to call.
    pub entry: String,
    /// Arguments for the entry function.
    pub args: Vec<u64>,
    /// Functions that the obfuscation experiments rewrite (the runtime
    /// helpers such as `malloc` stay native, as in the paper).
    pub obfuscate: Vec<String>,
}

// --- tiny expression DSL -------------------------------------------------

pub(crate) fn c(v: i64) -> Expr {
    Expr::Const(v)
}
pub(crate) fn v(i: usize) -> Expr {
    Expr::Var(i)
}
pub(crate) fn arg(i: usize) -> Expr {
    Expr::Arg(i)
}
pub(crate) fn b(op: BinOp, x: Expr, y: Expr) -> Expr {
    Expr::bin(op, x, y)
}
pub(crate) fn add(x: Expr, y: Expr) -> Expr {
    b(BinOp::Add, x, y)
}
pub(crate) fn sub(x: Expr, y: Expr) -> Expr {
    b(BinOp::Sub, x, y)
}
pub(crate) fn mul(x: Expr, y: Expr) -> Expr {
    b(BinOp::Mul, x, y)
}
pub(crate) fn and(x: Expr, y: Expr) -> Expr {
    b(BinOp::And, x, y)
}
pub(crate) fn xor(x: Expr, y: Expr) -> Expr {
    b(BinOp::Xor, x, y)
}
pub(crate) fn shr(x: Expr, y: Expr) -> Expr {
    b(BinOp::Shr, x, y)
}
pub(crate) fn load(a: Expr) -> Expr {
    Expr::Load(Box::new(a))
}
pub(crate) fn loadb(a: Expr) -> Expr {
    Expr::LoadByte(Box::new(a))
}
pub(crate) fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call(name.to_string(), args)
}
pub(crate) fn gaddr(name: &str) -> Expr {
    Expr::GlobalAddr(name.to_string())
}
pub(crate) fn assign(i: usize, e: Expr) -> Stmt {
    Stmt::Assign(i, e)
}
pub(crate) fn ret(e: Expr) -> Stmt {
    Stmt::Return(e)
}
pub(crate) fn while_(cond: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::While(cond, body)
}
pub(crate) fn if_(cond: Expr, then: Vec<Stmt>, els: Vec<Stmt>) -> Stmt {
    Stmt::If(cond, then, els)
}
pub(crate) fn func(name: &str, params: usize, locals: usize, body: Vec<Stmt>) -> Function {
    Function { name: name.to_string(), params, locals, body }
}

// --- shared runtime -------------------------------------------------------

/// The bump-allocator runtime every allocation-using workload links against:
/// `malloc(size)` advances a global break pointer (16-byte aligned), `free`
/// is a no-op — enough for benchmark-style allocation patterns, and calls to
/// them from ROP-rewritten code exercise the ROP→native pivoting path.
pub fn runtime_functions() -> (Vec<Function>, Vec<Global>) {
    let heap_ptr = Global { name: "__heap_ptr".into(), bytes: HEAP_BASE.to_le_bytes().to_vec() };
    let malloc = func(
        "malloc",
        1,
        1,
        vec![
            assign(0, load(gaddr("__heap_ptr"))),
            Stmt::Store(
                gaddr("__heap_ptr"),
                and(add(add(v(0), arg(0)), c(15)), Expr::un(UnOp::Not, c(15))),
            ),
            ret(v(0)),
        ],
    );
    let free = func("free", 1, 0, vec![ret(c(0))]);
    (vec![malloc, free], vec![heap_ptr])
}

pub(crate) fn with_runtime(mut functions: Vec<Function>, mut globals: Vec<Global>) -> Program {
    let (rt_f, rt_g) = runtime_functions();
    functions.extend(rt_f);
    globals.extend(rt_g);
    Program { functions, globals }
}

// --- kernels ---------------------------------------------------------------

/// `b-trees`: builds perfect binary trees with `malloc`, sums node checks.
pub fn btrees() -> Workload {
    // node layout: [left, right, value]
    let build = func(
        "bt_build",
        2, // (depth, item)
        2,
        vec![
            assign(0, call("malloc", vec![c(24)])),
            if_(
                b(BinOp::Gt, arg(0), c(0)),
                vec![
                    Stmt::Store(v(0), call("bt_build", vec![sub(arg(0), c(1)), mul(arg(1), c(2))])),
                    Stmt::Store(
                        add(v(0), c(8)),
                        call("bt_build", vec![sub(arg(0), c(1)), add(mul(arg(1), c(2)), c(1))]),
                    ),
                ],
                vec![Stmt::Store(v(0), c(0)), Stmt::Store(add(v(0), c(8)), c(0))],
            ),
            Stmt::Store(add(v(0), c(16)), arg(1)),
            ret(v(0)),
        ],
    );
    let check = func(
        "bt_check",
        1,
        1,
        vec![
            assign(0, load(add(arg(0), c(16)))),
            if_(
                b(BinOp::Ne, load(arg(0)), c(0)),
                vec![assign(
                    0,
                    add(
                        v(0),
                        sub(
                            call("bt_check", vec![load(arg(0))]),
                            call("bt_check", vec![load(add(arg(0), c(8)))]),
                        ),
                    ),
                )],
                vec![],
            ),
            ret(v(0)),
        ],
    );
    let main = func(
        "btrees_main",
        1,
        3,
        vec![
            assign(0, c(0)), // checksum
            assign(1, c(0)), // i
            while_(
                b(BinOp::Lt, v(1), c(8)),
                vec![
                    assign(2, call("bt_build", vec![arg(0), v(1)])),
                    assign(0, add(v(0), call("bt_check", vec![v(2)]))),
                    Stmt::ExprStmt(call("free", vec![v(2)])),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            ret(v(0)),
        ],
    );
    Workload {
        name: "b-trees".into(),
        program: with_runtime(vec![build, check, main], vec![]),
        entry: "btrees_main".into(),
        args: vec![5],
        obfuscate: vec!["btrees_main".into(), "bt_build".into(), "bt_check".into()],
    }
}

/// `fannkuch`: pancake-flip counting over permutations of 0..n.
pub fn fannkuch() -> Workload {
    let buf = Global { name: "fk_perm".into(), bytes: vec![0u8; 16 * 8] };
    let flip = func(
        "fk_flips",
        0,
        4,
        vec![
            assign(0, c(0)), // flips
            while_(
                b(BinOp::Ne, load(gaddr("fk_perm")), c(0)),
                vec![
                    assign(1, load(gaddr("fk_perm"))), // k = perm[0]
                    assign(2, c(0)),                   // i
                    while_(
                        b(BinOp::Lt, v(2), b(BinOp::Div, add(v(1), c(1)), c(2))),
                        vec![
                            assign(3, load(add(gaddr("fk_perm"), mul(v(2), c(8))))),
                            Stmt::Store(
                                add(gaddr("fk_perm"), mul(v(2), c(8))),
                                load(add(gaddr("fk_perm"), mul(sub(v(1), v(2)), c(8)))),
                            ),
                            Stmt::Store(add(gaddr("fk_perm"), mul(sub(v(1), v(2)), c(8))), v(3)),
                            assign(2, add(v(2), c(1))),
                        ],
                    ),
                    assign(0, add(v(0), c(1))),
                ],
            ),
            ret(v(0)),
        ],
    );
    // Enumerate rotations of an initial permutation as a cheap stand-in for
    // the full permutation generator, counting total flips.
    let main = func(
        "fannkuch_main",
        1,
        4,
        vec![
            assign(0, c(0)), // total
            assign(1, c(0)), // rotation r
            while_(
                b(BinOp::Lt, v(1), arg(0)),
                vec![
                    assign(2, c(0)),
                    while_(
                        b(BinOp::Lt, v(2), c(7)),
                        vec![
                            Stmt::Store(
                                add(gaddr("fk_perm"), mul(v(2), c(8))),
                                b(BinOp::Rem, add(v(2), v(1)), c(7)),
                            ),
                            assign(2, add(v(2), c(1))),
                        ],
                    ),
                    assign(0, add(v(0), call("fk_flips", vec![]))),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            ret(v(0)),
        ],
    );
    Workload {
        name: "fannkuch".into(),
        program: with_runtime(vec![flip, main], vec![buf]),
        entry: "fannkuch_main".into(),
        args: vec![20],
        obfuscate: vec!["fannkuch_main".into(), "fk_flips".into()],
    }
}

fn lcg_next(state_var: usize) -> Stmt {
    assign(
        state_var,
        and(
            add(mul(v(state_var), c(6364136223846793005)), c(1442695040888963407)),
            c(u64::MAX as i64),
        ),
    )
}

/// `fasta`: pseudo-random sequence generation into a buffer.
pub fn fasta() -> Workload {
    let buf = Global { name: "fasta_buf".into(), bytes: vec![0u8; 4096] };
    let main = func(
        "fasta_main",
        1,
        3,
        vec![
            assign(0, c(42)), // rng state
            assign(1, c(0)),  // i
            assign(2, c(0)),  // checksum
            while_(
                b(BinOp::Lt, v(1), arg(0)),
                vec![
                    lcg_next(0),
                    Stmt::StoreByte(
                        add(gaddr("fasta_buf"), and(v(1), c(4095))),
                        add(c(65), and(shr(v(0), c(33)), c(3))),
                    ),
                    assign(2, add(v(2), loadb(add(gaddr("fasta_buf"), and(v(1), c(4095)))))),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            ret(v(2)),
        ],
    );
    Workload {
        name: "fasta".into(),
        program: with_runtime(vec![main], vec![buf]),
        entry: "fasta_main".into(),
        args: vec![1500],
        obfuscate: vec!["fasta_main".into()],
    }
}

/// `fasta-redux`: like `fasta` but through a cumulative lookup table.
pub fn fasta_redux() -> Workload {
    let mut table = Vec::new();
    for i in 0..16u64 {
        table.extend_from_slice(&(65 + (i % 4)).to_le_bytes());
    }
    let tab = Global { name: "fr_table".into(), bytes: table };
    let buf = Global { name: "fr_buf".into(), bytes: vec![0u8; 4096] };
    let main = func(
        "fasta_redux_main",
        1,
        3,
        vec![
            assign(0, c(1337)),
            assign(1, c(0)),
            assign(2, c(0)),
            while_(
                b(BinOp::Lt, v(1), arg(0)),
                vec![
                    lcg_next(0),
                    Stmt::StoreByte(
                        add(gaddr("fr_buf"), and(v(1), c(4095))),
                        load(add(gaddr("fr_table"), mul(and(shr(v(0), c(30)), c(15)), c(8)))),
                    ),
                    assign(2, xor(v(2), loadb(add(gaddr("fr_buf"), and(v(1), c(4095)))))),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            ret(v(2)),
        ],
    );
    Workload {
        name: "fasta-redux".into(),
        program: with_runtime(vec![main], vec![tab, buf]),
        entry: "fasta_redux_main".into(),
        args: vec![1500],
        obfuscate: vec!["fasta_redux_main".into()],
    }
}

/// `mandelbrot`: fixed-point escape-time iteration over a small grid.
pub fn mandelbrot() -> Workload {
    // Fixed point with 16 fractional bits; grid arg(0) x arg(0).
    let main = func(
        "mandelbrot_main",
        1,
        8,
        vec![
            assign(0, c(0)), // count
            assign(1, c(0)), // y
            while_(
                b(BinOp::Lt, v(1), arg(0)),
                vec![
                    assign(2, c(0)), // x
                    while_(
                        b(BinOp::Lt, v(2), arg(0)),
                        vec![
                            // zr = zi = 0; iterate 16 times with c = (x, y) scaled.
                            assign(3, c(0)),
                            assign(4, c(0)),
                            assign(5, c(0)), // iter
                            while_(
                                b(BinOp::Lt, v(5), c(16)),
                                vec![
                                    // zr2 = (zr*zr - zi*zi) >> 16 + cx
                                    assign(
                                        6,
                                        add(
                                            shr(sub(mul(v(3), v(3)), mul(v(4), v(4))), c(16)),
                                            sub(mul(v(2), c(1024)), c(98304)),
                                        ),
                                    ),
                                    // zi = 2*zr*zi >> 16 + cy
                                    assign(
                                        4,
                                        add(
                                            shr(mul(mul(v(3), v(4)), c(2)), c(16)),
                                            sub(mul(v(1), c(1024)), c(65536)),
                                        ),
                                    ),
                                    assign(3, v(6)),
                                    assign(5, add(v(5), c(1))),
                                ],
                            ),
                            // count += (|zr| < 2.0 in fixed point)
                            if_(
                                b(BinOp::Lt, and(v(3), c(0x7fff_ffff)), c(131072)),
                                vec![assign(0, add(v(0), c(1)))],
                                vec![],
                            ),
                            assign(2, add(v(2), c(1))),
                        ],
                    ),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            ret(v(0)),
        ],
    );
    Workload {
        name: "mandelbrot".into(),
        program: with_runtime(vec![main], vec![]),
        entry: "mandelbrot_main".into(),
        args: vec![12],
        obfuscate: vec!["mandelbrot_main".into()],
    }
}

/// `n-body`: integer-only leapfrog integration of three bodies in 1-D.
pub fn nbody() -> Workload {
    let state = Global { name: "nb_state".into(), bytes: vec![0u8; 6 * 8] };
    let advance = func(
        "nb_advance",
        0,
        3,
        vec![
            assign(0, c(0)),
            while_(
                b(BinOp::Lt, v(0), c(3)),
                vec![
                    // v[i] += (pos[(i+1)%3] - pos[i]) / 16
                    assign(
                        1,
                        sub(
                            load(add(
                                gaddr("nb_state"),
                                mul(b(BinOp::Rem, add(v(0), c(1)), c(3)), c(8)),
                            )),
                            load(add(gaddr("nb_state"), mul(v(0), c(8)))),
                        ),
                    ),
                    Stmt::Store(
                        add(gaddr("nb_state"), add(c(24), mul(v(0), c(8)))),
                        add(
                            load(add(gaddr("nb_state"), add(c(24), mul(v(0), c(8))))),
                            b(BinOp::Div, v(1), c(16)),
                        ),
                    ),
                    // pos[i] += v[i] / 4
                    Stmt::Store(
                        add(gaddr("nb_state"), mul(v(0), c(8))),
                        add(
                            load(add(gaddr("nb_state"), mul(v(0), c(8)))),
                            b(
                                BinOp::Div,
                                load(add(gaddr("nb_state"), add(c(24), mul(v(0), c(8))))),
                                c(4),
                            ),
                        ),
                    ),
                    assign(0, add(v(0), c(1))),
                ],
            ),
            ret(c(0)),
        ],
    );
    let main = func(
        "nbody_main",
        1,
        2,
        vec![
            Stmt::Store(gaddr("nb_state"), c(1000)),
            Stmt::Store(add(gaddr("nb_state"), c(8)), c(2000)),
            Stmt::Store(add(gaddr("nb_state"), c(16)), c(4000)),
            assign(0, c(0)),
            while_(
                b(BinOp::Lt, v(0), arg(0)),
                vec![Stmt::ExprStmt(call("nb_advance", vec![])), assign(0, add(v(0), c(1)))],
            ),
            ret(add(load(gaddr("nb_state")), load(add(gaddr("nb_state"), c(8))))),
        ],
    );
    Workload {
        name: "n-body".into(),
        program: with_runtime(vec![advance, main], vec![state]),
        entry: "nbody_main".into(),
        args: vec![150],
        obfuscate: vec!["nbody_main".into(), "nb_advance".into()],
    }
}

/// `pidigits`: a simplified integer spigot producing digits of π-like series.
pub fn pidigits() -> Workload {
    let main = func(
        "pidigits_main",
        1,
        6,
        vec![
            assign(0, c(1)), // q
            assign(1, c(0)), // r
            assign(2, c(1)), // t
            assign(3, c(1)), // k
            assign(4, c(0)), // digits emitted
            assign(5, c(0)), // checksum
            while_(
                b(BinOp::Lt, v(4), arg(0)),
                vec![
                    // Next-state updates of the spigot recurrence (bounded to
                    // stay within 64 bits by periodic renormalization).
                    assign(1, add(mul(v(1), v(3)), mul(v(0), c(2)))),
                    assign(0, mul(v(0), v(3))),
                    assign(2, mul(v(2), add(mul(v(3), c(2)), c(1)))),
                    assign(3, add(v(3), c(1))),
                    if_(
                        b(BinOp::Gt, v(2), c(1 << 40)),
                        vec![
                            assign(0, b(BinOp::Div, v(0), c(1 << 20))),
                            assign(1, b(BinOp::Div, v(1), c(1 << 20))),
                            assign(2, b(BinOp::Div, v(2), c(1 << 20))),
                        ],
                        vec![],
                    ),
                    assign(
                        5,
                        add(v(5), b(BinOp::Div, add(mul(v(0), c(3)), v(1)), add(v(2), c(1)))),
                    ),
                    assign(4, add(v(4), c(1))),
                ],
            ),
            ret(v(5)),
        ],
    );
    Workload {
        name: "pidigits".into(),
        program: with_runtime(vec![main], vec![]),
        entry: "pidigits_main".into(),
        args: vec![400],
        obfuscate: vec!["pidigits_main".into()],
    }
}

/// `regex-redux`: count pattern matches over a generated byte buffer.
pub fn regex_redux() -> Workload {
    let buf = Global { name: "re_buf".into(), bytes: vec![0u8; 2048] };
    let main = func(
        "regex_redux_main",
        1,
        4,
        vec![
            // Fill the buffer with a 4-letter alphabet.
            assign(0, c(7)),
            assign(1, c(0)),
            while_(
                b(BinOp::Lt, v(1), c(2048)),
                vec![
                    lcg_next(0),
                    Stmt::StoreByte(
                        add(gaddr("re_buf"), v(1)),
                        add(c(97), and(shr(v(0), c(21)), c(3))),
                    ),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            // Count occurrences of "aba"-style patterns parameterized by arg.
            assign(2, c(0)),
            assign(1, c(0)),
            while_(
                b(BinOp::Lt, v(1), c(2046)),
                vec![
                    if_(
                        b(
                            BinOp::Eq,
                            add(
                                add(
                                    loadb(add(gaddr("re_buf"), v(1))),
                                    mul(loadb(add(gaddr("re_buf"), add(v(1), c(1)))), c(256)),
                                ),
                                mul(loadb(add(gaddr("re_buf"), add(v(1), c(2)))), c(65536)),
                            ),
                            arg(0),
                        ),
                        vec![assign(2, add(v(2), c(1)))],
                        vec![],
                    ),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            ret(v(2)),
        ],
    );
    // Pattern "aba" = 0x61 + 0x62*256 + 0x61*65536.
    Workload {
        name: "regex-redux".into(),
        program: with_runtime(vec![main], vec![buf]),
        entry: "regex_redux_main".into(),
        args: vec![0x61 + 0x62 * 256 + 0x61 * 65536],
        obfuscate: vec!["regex_redux_main".into()],
    }
}

/// `rev-comp`: reverse-complement of a byte buffer through a lookup table.
pub fn rev_comp() -> Workload {
    let mut table = vec![0u8; 256];
    for (a, b) in [(b'A', b'T'), (b'T', b'A'), (b'C', b'G'), (b'G', b'C')] {
        table[a as usize] = b;
    }
    let tab = Global { name: "rc_table".into(), bytes: table };
    let buf = Global { name: "rc_buf".into(), bytes: vec![0u8; 2048] };
    let main = func(
        "rev_comp_main",
        1,
        4,
        vec![
            assign(0, c(99)),
            assign(1, c(0)),
            while_(
                b(BinOp::Lt, v(1), arg(0)),
                vec![
                    lcg_next(0),
                    Stmt::StoreByte(
                        add(gaddr("rc_buf"), v(1)),
                        load(add(gaddr("rc_table_sel"), mul(and(shr(v(0), c(17)), c(3)), c(8)))),
                    ),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            // Reverse-complement in place.
            assign(1, c(0)),
            assign(2, sub(arg(0), c(1))),
            while_(
                b(BinOp::Lt, v(1), v(2)),
                vec![
                    assign(3, loadb(add(gaddr("rc_buf"), v(1)))),
                    Stmt::StoreByte(
                        add(gaddr("rc_buf"), v(1)),
                        loadb(add(gaddr("rc_table"), loadb(add(gaddr("rc_buf"), v(2))))),
                    ),
                    Stmt::StoreByte(
                        add(gaddr("rc_buf"), v(2)),
                        loadb(add(gaddr("rc_table"), v(3))),
                    ),
                    assign(1, add(v(1), c(1))),
                    assign(2, sub(v(2), c(1))),
                ],
            ),
            ret(add(loadb(gaddr("rc_buf")), loadb(add(gaddr("rc_buf"), c(1))))),
        ],
    );
    let mut sel = Vec::new();
    for ch in [b'A', b'C', b'G', b'T'] {
        sel.extend_from_slice(&(ch as u64).to_le_bytes());
    }
    let sel_tab = Global { name: "rc_table_sel".into(), bytes: sel };
    Workload {
        name: "rev-comp".into(),
        program: with_runtime(vec![main], vec![tab, buf, sel_tab]),
        entry: "rev_comp_main".into(),
        args: vec![1024],
        obfuscate: vec!["rev_comp_main".into()],
    }
}

/// `sp-norm`: spectral-norm-style matrix-vector products where the matrix
/// entry is computed by a short helper called from a tight loop (the
/// worst-case pivoting pattern discussed in §VII-C2).
pub fn sp_norm() -> Workload {
    let vec_u = Global { name: "sn_u".into(), bytes: vec![0u8; 16 * 8] };
    let vec_v = Global { name: "sn_v".into(), bytes: vec![0u8; 16 * 8] };
    let eval_a = func(
        "sn_eval_a",
        2,
        1,
        vec![
            assign(
                0,
                add(
                    b(BinOp::Div, mul(add(arg(0), arg(1)), add(add(arg(0), arg(1)), c(1))), c(2)),
                    add(arg(0), c(1)),
                ),
            ),
            ret(b(BinOp::Div, c(1 << 20), add(v(0), c(1)))),
        ],
    );
    let main = func(
        "sp_norm_main",
        1,
        4,
        vec![
            assign(0, c(0)),
            while_(
                b(BinOp::Lt, v(0), c(8)),
                vec![
                    Stmt::Store(add(gaddr("sn_u"), mul(v(0), c(8))), c(1 << 10)),
                    assign(0, add(v(0), c(1))),
                ],
            ),
            assign(3, c(0)), // checksum
            assign(0, c(0)), // outer iteration
            while_(
                b(BinOp::Lt, v(0), arg(0)),
                vec![
                    assign(1, c(0)), // i
                    while_(
                        b(BinOp::Lt, v(1), c(8)),
                        vec![
                            assign(2, c(0)), // j
                            Stmt::Store(add(gaddr("sn_v"), mul(v(1), c(8))), c(0)),
                            while_(
                                b(BinOp::Lt, v(2), c(8)),
                                vec![
                                    Stmt::Store(
                                        add(gaddr("sn_v"), mul(v(1), c(8))),
                                        add(
                                            load(add(gaddr("sn_v"), mul(v(1), c(8)))),
                                            mul(
                                                call("sn_eval_a", vec![v(1), v(2)]),
                                                shr(
                                                    load(add(gaddr("sn_u"), mul(v(2), c(8)))),
                                                    c(10),
                                                ),
                                            ),
                                        ),
                                    ),
                                    assign(2, add(v(2), c(1))),
                                ],
                            ),
                            assign(1, add(v(1), c(1))),
                        ],
                    ),
                    assign(3, add(v(3), load(gaddr("sn_v")))),
                    assign(0, add(v(0), c(1))),
                ],
            ),
            ret(v(3)),
        ],
    );
    Workload {
        name: "sp-norm".into(),
        program: with_runtime(vec![eval_a, main], vec![vec_u, vec_v]),
        entry: "sp_norm_main".into(),
        args: vec![6],
        obfuscate: vec!["sp_norm_main".into(), "sn_eval_a".into()],
    }
}

/// The ten clbg kernels of Fig. 5 / Table III, in the paper's order.
pub fn clbg_suite() -> Vec<Workload> {
    vec![
        btrees(),
        fannkuch(),
        fasta(),
        fasta_redux(),
        mandelbrot(),
        nbody(),
        pidigits(),
        regex_redux(),
        rev_comp(),
        sp_norm(),
    ]
}

/// The base64 reference encoder of §VII-C3: encodes `len` bytes from a fixed
/// input buffer into an output buffer through the standard alphabet table
/// (byte manipulations + table lookups).
pub fn base64() -> Workload {
    let alphabet = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let tab = Global { name: "b64_table".into(), bytes: alphabet.to_vec() };
    let inp = Global { name: "b64_in".into(), bytes: vec![0u8; 64] };
    let out = Global { name: "b64_out".into(), bytes: vec![0u8; 128] };
    // base64_encode(len) -> checksum of output; reads b64_in, writes b64_out.
    // Groups shorter than three bytes are zero-filled and the unused output
    // characters become '=' padding, exactly like the reference b64.c the
    // paper's case study obfuscates (RFC 4648).
    let encode = func(
        "base64_encode",
        1,
        8,
        vec![
            assign(0, c(0)), // i (input index)
            assign(1, c(0)), // o (output index)
            assign(5, c(0)), // checksum
            while_(
                b(BinOp::Lt, v(0), arg(0)),
                vec![
                    // Second and third group bytes are zero past the input end.
                    assign(6, c(0)),
                    assign(7, c(0)),
                    Stmt::If(
                        b(BinOp::Lt, add(v(0), c(1)), arg(0)),
                        vec![assign(6, loadb(add(gaddr("b64_in"), add(v(0), c(1)))))],
                        vec![],
                    ),
                    Stmt::If(
                        b(BinOp::Lt, add(v(0), c(2)), arg(0)),
                        vec![assign(7, loadb(add(gaddr("b64_in"), add(v(0), c(2)))))],
                        vec![],
                    ),
                    // Pack the (zero-filled) three input bytes into a 24-bit group.
                    assign(
                        2,
                        add(
                            add(
                                mul(loadb(add(gaddr("b64_in"), v(0))), c(65536)),
                                mul(v(6), c(256)),
                            ),
                            v(7),
                        ),
                    ),
                    assign(3, c(0)), // k
                    while_(
                        b(BinOp::Lt, v(3), c(4)),
                        vec![
                            assign(4, and(shr(v(2), mul(sub(c(3), v(3)), c(6))), c(63))),
                            assign(4, loadb(add(gaddr("b64_table"), v(4)))),
                            // '=' padding for the output positions that map to
                            // bytes beyond the input.
                            Stmt::If(
                                and(
                                    b(BinOp::Eq, v(3), c(2)),
                                    b(BinOp::Ge, add(v(0), c(1)), arg(0)),
                                ),
                                vec![assign(4, c(61))],
                                vec![],
                            ),
                            Stmt::If(
                                and(
                                    b(BinOp::Eq, v(3), c(3)),
                                    b(BinOp::Ge, add(v(0), c(2)), arg(0)),
                                ),
                                vec![assign(4, c(61))],
                                vec![],
                            ),
                            Stmt::StoreByte(add(gaddr("b64_out"), add(v(1), v(3))), v(4)),
                            assign(5, add(v(5), v(4))),
                            assign(3, add(v(3), c(1))),
                        ],
                    ),
                    assign(0, add(v(0), c(3))),
                    assign(1, add(v(1), c(4))),
                ],
            ),
            ret(v(5)),
        ],
    );
    Workload {
        name: "base64".into(),
        program: with_runtime(vec![encode], vec![tab, inp, out]),
        entry: "base64_encode".into(),
        args: vec![24],
        obfuscate: vec!["base64_encode".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use raindrop_machine::Emulator;

    fn run(w: &Workload) -> u64 {
        let img = compile(&w.program).unwrap();
        let mut emu = Emulator::new(&img);
        emu.call_named(&img, &w.entry, &w.args).unwrap()
    }

    #[test]
    fn all_clbg_kernels_compile_and_run() {
        for w in clbg_suite() {
            let value = run(&w);
            // Every kernel produces a non-trivial checksum and declares at
            // least one function to obfuscate.
            assert!(!w.obfuscate.is_empty(), "{}", w.name);
            // The checksum itself is workload-specific; determinism is the
            // property we rely on.
            let again = run(&w);
            assert_eq!(value, again, "{} must be deterministic", w.name);
        }
    }

    #[test]
    fn btrees_exercises_the_allocator() {
        let w = btrees();
        let img = compile(&w.program).unwrap();
        let mut emu = Emulator::new(&img);
        emu.call_named(&img, &w.entry, &w.args).unwrap();
        let heap_ptr = img.symbol("__heap_ptr").unwrap();
        assert!(emu.mem.read_u64(heap_ptr) > raindrop_machine::HEAP_BASE, "allocations happened");
        assert!(emu.stats().calls > 10, "recursive build performs many calls");
    }

    #[test]
    fn base64_encodes_known_vector() {
        let w = base64();
        let img = compile(&w.program).unwrap();
        let mut emu = Emulator::new(&img);
        let inp = img.symbol("b64_in").unwrap();
        emu.mem.write_bytes(inp, b"Man");
        emu.call_named(&img, "base64_encode", &[3]).unwrap();
        let out = img.symbol("b64_out").unwrap();
        let mut buf = [0u8; 4];
        emu.mem.read_bytes(out, &mut buf);
        assert_eq!(&buf, b"TWFu", "RFC 4648 test vector");
    }

    #[test]
    fn sp_norm_calls_its_helper_in_a_tight_loop() {
        let w = sp_norm();
        let img = compile(&w.program).unwrap();
        let mut emu = Emulator::new(&img);
        emu.call_named(&img, &w.entry, &w.args).unwrap();
        assert!(emu.stats().calls >= 6 * 8 * 8, "eval_a called per matrix element");
    }

    #[test]
    fn rev_comp_produces_complemented_bytes() {
        let w = rev_comp();
        let img = compile(&w.program).unwrap();
        let mut emu = Emulator::new(&img);
        emu.call_named(&img, &w.entry, &w.args).unwrap();
        let buf = img.symbol("rc_buf").unwrap();
        let mut bytes = vec![0u8; 16];
        emu.mem.read_bytes(buf, &mut bytes);
        assert!(bytes.iter().all(|b| b"ACGT".contains(b)), "alphabet preserved: {bytes:?}");
    }
}
