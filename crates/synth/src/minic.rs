//! MiniC: a small structured IR standing in for the C sources the paper
//! compiles with gcc.
//!
//! Everything the evaluation needs — the Tigress-style random hash functions,
//! the clbg shootout kernels, base64, the coreutils-like corpus and the VM
//! obfuscator's interpreters — is written in (or generated as) MiniC and then
//! compiled to RM64 machine code by [`codegen`](crate::codegen), so the ROP
//! rewriter always sees realistic, compiler-shaped binary functions.

use serde::{Deserialize, Serialize};

/// Index of a local variable within a function.
pub type VarId = usize;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (UB-free: division by zero yields zero).
    Div,
    /// Unsigned remainder (remainder by zero yields the dividend).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by the low 6 bits).
    Shl,
    /// Logical shift right (by the low 6 bits).
    Shr,
    /// Equality (1 or 0).
    Eq,
    /// Inequality (1 or 0).
    Ne,
    /// Unsigned less-than (1 or 0).
    Lt,
    /// Unsigned less-or-equal (1 or 0).
    Le,
    /// Unsigned greater-than (1 or 0).
    Gt,
    /// Unsigned greater-or-equal (1 or 0).
    Ge,
}

impl BinOp {
    /// Whether the operator yields a 0/1 truth value.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// Reference semantics on unsigned 64-bit values.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => a.checked_div(b).unwrap_or(0),
            BinOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a << (b & 63),
            BinOp::Shr => a >> (b & 63),
            BinOp::Eq => (a == b) as u64,
            BinOp::Ne => (a != b) as u64,
            BinOp::Lt => (a < b) as u64,
            BinOp::Le => (a <= b) as u64,
            BinOp::Gt => (a > b) as u64,
            BinOp::Ge => (a >= b) as u64,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Two's complement negation.
    Neg,
    /// Bitwise NOT.
    Not,
}

impl UnOp {
    /// Reference semantics.
    pub fn eval(self, a: u64) -> u64 {
        match self {
            UnOp::Neg => (a as i64).wrapping_neg() as u64,
            UnOp::Not => !a,
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A 64-bit constant.
    Const(i64),
    /// A local variable.
    Var(VarId),
    /// The `i`-th function argument (0-based, at most 6).
    Arg(usize),
    /// The absolute address of a named global data object.
    GlobalAddr(String),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// 64-bit load from the address the operand evaluates to.
    Load(Box<Expr>),
    /// Zero-extended byte load.
    LoadByte(Box<Expr>),
    /// Call to another MiniC (or native) function with up to 6 arguments.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor: `a op b`.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `op a`.
    pub fn un(op: UnOp, a: Expr) -> Expr {
        Expr::Un(op, Box::new(a))
    }

    /// Convenience constructor for a constant.
    pub fn c(v: i64) -> Expr {
        Expr::Const(v)
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `var = expr`.
    Assign(VarId, Expr),
    /// 64-bit store: `*(addr) = value`.
    Store(Expr, Expr),
    /// Byte store: `*(u8*)(addr) = value & 0xff`.
    StoreByte(Expr, Expr),
    /// `if (cond != 0) { then } else { otherwise }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond != 0) { body }`.
    While(Expr, Vec<Stmt>),
    /// `return expr`.
    Return(Expr),
    /// Evaluate an expression for its side effects (typically a call).
    ExprStmt(Expr),
    /// Coverage probe: records that control reached this point (Tigress
    /// `RandomFunsTrace`-style annotation of CFG split/join points).
    Probe(u32),
}

/// A MiniC function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (also its symbol in the image).
    pub name: String,
    /// Number of parameters (at most 6, passed in registers).
    pub params: usize,
    /// Number of local variables.
    pub locals: usize,
    /// Function body.
    pub body: Vec<Stmt>,
}

/// A global data object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Initial contents.
    pub bytes: Vec<u8>,
}

/// A MiniC program: functions plus global data.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Functions, in definition order.
    pub functions: Vec<Function>,
    /// Global data objects.
    pub globals: Vec<Global>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a function and returns `self` for chaining.
    pub fn with_function(mut self, f: Function) -> Program {
        self.functions.push(f);
        self
    }

    /// Adds a global and returns `self` for chaining.
    pub fn with_global(mut self, name: impl Into<String>, bytes: Vec<u8>) -> Program {
        self.globals.push(Global { name: name.into(), bytes });
        self
    }

    /// Looks a function up by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total number of statements across all functions (a rough size
    /// measure used by the corpus generator).
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If(_, a, b) => 1 + count(a) + count(b),
                    Stmt::While(_, body) => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        self.functions.iter().map(|f| count(&f.body)).sum()
    }
}

/// Name of the global array coverage probes write into.
pub const PROBE_ARRAY: &str = "__probes";
/// Maximum number of coverage probes per program.
pub const MAX_PROBES: usize = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_reference_semantics() {
        assert_eq!(BinOp::Add.eval(u64::MAX, 1), 0);
        assert_eq!(BinOp::Div.eval(10, 0), 0, "division by zero is defined");
        assert_eq!(BinOp::Rem.eval(10, 0), 10);
        assert_eq!(BinOp::Shl.eval(1, 65), 2, "shift counts are masked");
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Ge.eval(1, 2), 0);
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Xor.is_comparison());
    }

    #[test]
    fn unop_reference_semantics() {
        assert_eq!(UnOp::Neg.eval(5), (-5i64) as u64);
        assert_eq!(UnOp::Not.eval(0), u64::MAX);
    }

    #[test]
    fn program_builders_and_stmt_count() {
        let f = Function {
            name: "f".into(),
            params: 1,
            locals: 1,
            body: vec![
                Stmt::Assign(0, Expr::Arg(0)),
                Stmt::If(
                    Expr::bin(BinOp::Eq, Expr::Var(0), Expr::c(3)),
                    vec![Stmt::Return(Expr::c(1))],
                    vec![Stmt::Return(Expr::c(0))],
                ),
            ],
        };
        let p = Program::new().with_function(f).with_global("tab", vec![1, 2, 3]);
        assert!(p.function("f").is_some());
        assert!(p.function("g").is_none());
        assert_eq!(p.stmt_count(), 4);
        assert_eq!(p.globals[0].bytes.len(), 3);
    }
}
