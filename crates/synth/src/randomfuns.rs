//! Tigress-style random function generation (§VII-B and Appendix A).
//!
//! The paper evaluates obfuscation resilience on 72 synthetic
//! non-cryptographic hash functions produced by Tigress `RandomFuns`:
//! 6 control structures (Table IV) × 4 input sizes (1, 2, 4, 8 bytes) ×
//! 3 seeds, in two flavours — a *point test* that compares the hash against
//! a secret (goal G1) and a *coverage* flavour with probes at CFG split and
//! join points (goal G2). This module reproduces that generator on MiniC.
//!
//! One deliberate substitution: the hash chain applies the (masked) input
//! once and then transforms it through invertible steps (add/xor/mul-odd/
//! not/neg with constants), with branch decisions driven by individual input
//! bits. Real Tigress functions are messier, but the attacker in the paper
//! wields an SMT solver (S2E); our reproduction's concolic attacker solves
//! by inversion and bounded search instead, and this structure keeps the
//! *unprotected* functions solvable so that the protected/unprotected gap —
//! the quantity Table II reports — remains meaningful.

use crate::codegen;
use crate::minic::{BinOp, Expr, Function, Program, Stmt, UnOp};
use raindrop_machine::Emulator;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A Tigress-style control structure (Table IV).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ctrl {
    /// A basic block with `n` computation statements.
    Bb(usize),
    /// A two-way branch.
    If(Box<Ctrl>, Box<Ctrl>),
    /// A counted loop around the inner structure.
    For(Box<Ctrl>),
}

impl Ctrl {
    /// `(bb n)`
    pub fn bb(n: usize) -> Ctrl {
        Ctrl::Bb(n)
    }

    /// `(if a b)`
    pub fn if_(a: Ctrl, b: Ctrl) -> Ctrl {
        Ctrl::If(Box::new(a), Box::new(b))
    }

    /// `(for a)`
    pub fn for_(a: Ctrl) -> Ctrl {
        Ctrl::For(Box::new(a))
    }

    /// Number of `if` statements in the structure (Table IV column).
    pub fn if_count(&self) -> usize {
        match self {
            Ctrl::Bb(_) => 0,
            Ctrl::If(a, b) => 1 + a.if_count() + b.if_count(),
            Ctrl::For(a) => a.if_count(),
        }
    }

    /// Number of loops in the structure (Table IV column).
    pub fn loop_count(&self) -> usize {
        match self {
            Ctrl::Bb(_) => 0,
            Ctrl::If(a, b) => a.loop_count() + b.loop_count(),
            Ctrl::For(a) => 1 + a.loop_count(),
        }
    }

    /// Control-flow nesting depth (Table IV column).
    pub fn depth(&self) -> usize {
        match self {
            Ctrl::Bb(_) => 1,
            Ctrl::If(a, b) => 1 + a.depth().max(b.depth()),
            Ctrl::For(a) => 1 + a.depth(),
        }
    }
}

/// The six control structures of Table IV.
pub fn paper_structures() -> Vec<(String, Ctrl)> {
    use Ctrl as C;
    vec![
        ("(if (bb 4) (bb 4))".to_string(), C::if_(C::bb(4), C::bb(4))),
        ("(for (if (bb 4) (bb 4)))".to_string(), C::for_(C::if_(C::bb(4), C::bb(4)))),
        ("(for (for (bb 4)))".to_string(), C::for_(C::for_(C::bb(4)))),
        (
            "(for (for (if (bb 4) (bb 4))))".to_string(),
            C::for_(C::for_(C::if_(C::bb(4), C::bb(4)))),
        ),
        (
            "(for (if (if (bb 4) (bb 4)) (if (bb 4) (bb 4))))".to_string(),
            C::for_(C::if_(C::if_(C::bb(4), C::bb(4)), C::if_(C::bb(4), C::bb(4)))),
        ),
        (
            "(if (if (if (bb 4) (bb 4)) (if (bb 4) (bb 4))) (if (bb 4) (bb 4)))".to_string(),
            C::if_(
                C::if_(C::if_(C::bb(4), C::bb(4)), C::if_(C::bb(4), C::bb(4))),
                C::if_(C::bb(4), C::bb(4)),
            ),
        ),
    ]
}

/// Goal flavour a random function is generated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Goal {
    /// G1: the function returns 1 iff the input hashes to the secret.
    SecretFinding,
    /// G2: the function carries coverage probes at split/join points.
    CodeCoverage,
}

/// Generator parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomFunConfig {
    /// Control structure.
    pub structure: Ctrl,
    /// Human-readable structure description.
    pub structure_name: String,
    /// Input size in bytes (1, 2, 4 or 8).
    pub input_size: usize,
    /// Generation seed.
    pub seed: u64,
    /// Goal flavour.
    pub goal: Goal,
    /// Loop trip count (`RandomFunsLoopSize`; the paper uses 25/15, a
    /// smaller default keeps emulated experiments laptop-scale).
    pub loop_size: u64,
}

/// A generated random function with its ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomFun {
    /// The generator configuration.
    pub config: RandomFunConfig,
    /// Name of the target function inside [`RandomFun::program`].
    pub name: String,
    /// The MiniC program containing the target function.
    pub program: Program,
    /// An input that passes the point test (the "secret").
    pub secret_input: u64,
    /// The hash value the point test compares against.
    pub secret_hash: u64,
    /// Number of coverage probes emitted (coverage flavour).
    pub probe_count: u32,
}

impl RandomFun {
    /// Bit mask selecting the meaningful input bytes.
    pub fn input_mask(&self) -> u64 {
        input_mask(self.config.input_size)
    }
}

/// Mask selecting `size` input bytes.
pub fn input_mask(size: usize) -> u64 {
    if size >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * size)) - 1
    }
}

const H: usize = 0; // hash state variable
const NOISE: usize = 1; // input-coupled noise variable (never checked)
const CTR_BASE: usize = 2; // loop counters start here

struct Gen {
    rng: ChaCha8Rng,
    stmts_probe: bool,
    probe_next: u32,
    input_bits: usize,
    loop_size: u64,
    max_ctr: usize,
}

impl Gen {
    fn probe(&mut self, out: &mut Vec<Stmt>) {
        if self.stmts_probe {
            out.push(Stmt::Probe(self.probe_next));
            self.probe_next += 1;
        }
    }

    fn invertible_update(&mut self) -> Stmt {
        let c = (self.rng.gen::<u32>() as i64) | 1;
        match self.rng.gen_range(0..5) {
            0 => Stmt::Assign(H, Expr::bin(BinOp::Add, Expr::Var(H), Expr::c(c))),
            1 => Stmt::Assign(H, Expr::bin(BinOp::Xor, Expr::Var(H), Expr::c(c))),
            2 => Stmt::Assign(H, Expr::bin(BinOp::Mul, Expr::Var(H), Expr::c(c))),
            3 => Stmt::Assign(H, Expr::un(UnOp::Not, Expr::Var(H))),
            _ => Stmt::Assign(H, Expr::bin(BinOp::Sub, Expr::Var(H), Expr::c(c))),
        }
    }

    fn noise_update(&mut self) -> Stmt {
        let k = self.rng.gen_range(0..self.input_bits) as i64;
        let c = self.rng.gen::<u16>() as i64;
        Stmt::Assign(
            NOISE,
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::Var(NOISE), Expr::c(3)),
                Expr::bin(BinOp::Add, Expr::bin(BinOp::Shr, Expr::Arg(0), Expr::c(k)), Expr::c(c)),
            ),
        )
    }

    fn bit_condition(&mut self) -> Expr {
        let k = self.rng.gen_range(0..self.input_bits) as i64;
        Expr::bin(
            BinOp::Eq,
            Expr::bin(BinOp::And, Expr::bin(BinOp::Shr, Expr::Arg(0), Expr::c(k)), Expr::c(1)),
            Expr::c(1),
        )
    }

    fn gen(&mut self, ctrl: &Ctrl, depth: usize, out: &mut Vec<Stmt>) {
        match ctrl {
            Ctrl::Bb(n) => {
                for i in 0..*n {
                    if i % 2 == 0 {
                        out.push(self.invertible_update());
                    } else {
                        out.push(self.noise_update());
                    }
                }
            }
            Ctrl::If(a, b) => {
                let cond = self.bit_condition();
                let mut then_branch = Vec::new();
                self.probe(&mut then_branch);
                self.gen(a, depth, &mut then_branch);
                let mut else_branch = Vec::new();
                self.probe(&mut else_branch);
                self.gen(b, depth, &mut else_branch);
                out.push(Stmt::If(cond, then_branch, else_branch));
                self.probe(out);
            }
            Ctrl::For(inner) => {
                let ctr = CTR_BASE + depth;
                self.max_ctr = self.max_ctr.max(ctr);
                out.push(Stmt::Assign(ctr, Expr::c(self.loop_size as i64)));
                let mut body = Vec::new();
                self.probe(&mut body);
                self.gen(inner, depth + 1, &mut body);
                body.push(Stmt::Assign(ctr, Expr::bin(BinOp::Sub, Expr::Var(ctr), Expr::c(1))));
                out.push(Stmt::While(Expr::bin(BinOp::Gt, Expr::Var(ctr), Expr::c(0)), body));
                self.probe(out);
            }
        }
    }
}

/// Generates one random function with its ground-truth secret.
pub fn generate(config: RandomFunConfig) -> RandomFun {
    use rand::SeedableRng;
    let mut g = Gen {
        rng: ChaCha8Rng::seed_from_u64(config.seed ^ 0x5eed_f00d),
        stmts_probe: config.goal == Goal::CodeCoverage,
        probe_next: 0,
        input_bits: config.input_size * 8,
        loop_size: config.loop_size,
        max_ctr: CTR_BASE,
    };

    let mask = input_mask(config.input_size);
    let mut body = Vec::new();
    if g.stmts_probe {
        body.push(Stmt::Probe(g.probe_next));
        g.probe_next += 1;
    }
    // h = input & mask; noise = 0
    body.push(Stmt::Assign(H, Expr::bin(BinOp::And, Expr::Arg(0), Expr::c(mask as i64))));
    body.push(Stmt::Assign(NOISE, Expr::c(0)));
    g.gen(&config.structure.clone(), 0, &mut body);

    let probe_count = g.probe_next;
    let locals = g.max_ctr + 1;
    let name = format!(
        "rf_{}_{}b_s{}",
        config.structure_name.matches("(for").count() * 10
            + config.structure_name.matches("(if").count(),
        config.input_size,
        config.seed
    );

    // Determine the secret hash: compile a plain "return h" variant and run
    // it on a randomly chosen winning input.
    let secret_input = g.rng.gen::<u64>() & mask;
    let mut hash_body = body.clone();
    hash_body.push(Stmt::Return(Expr::Var(H)));
    let hash_fn = Function { name: "hash_only".into(), params: 1, locals, body: hash_body };
    let hash_prog = Program::new().with_function(hash_fn);
    let image = codegen::compile(&hash_prog).expect("hash program compiles");
    let mut emu = Emulator::new(&image);
    let secret_hash =
        emu.call_named(&image, "hash_only", &[secret_input]).expect("hash program runs");

    // The released function: point test or coverage flavour.
    let mut final_body = body;
    match config.goal {
        Goal::SecretFinding => {
            final_body.push(Stmt::If(
                Expr::bin(BinOp::Eq, Expr::Var(H), Expr::c(secret_hash as i64)),
                vec![Stmt::Return(Expr::c(1))],
                vec![Stmt::Return(Expr::c(0))],
            ));
        }
        Goal::CodeCoverage => {
            final_body.push(Stmt::Return(Expr::Var(H)));
        }
    }
    let func = Function { name: name.clone(), params: 1, locals, body: final_body };
    let program = Program::new().with_function(func);

    RandomFun { config, name, program, secret_input, secret_hash, probe_count }
}

/// Generates the full 72-function population of §VII-B: 6 structures × 4
/// input sizes × 3 seeds.
pub fn paper_suite(goal: Goal, loop_size: u64) -> Vec<RandomFun> {
    let mut out = Vec::new();
    for (structure_name, structure) in paper_structures() {
        for input_size in [1usize, 2, 4, 8] {
            for seed in [1u64, 2, 3] {
                out.push(generate(RandomFunConfig {
                    structure: structure.clone(),
                    structure_name: structure_name.clone(),
                    input_size,
                    seed,
                    goal,
                    loop_size,
                }));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(goal: Goal) -> RandomFunConfig {
        RandomFunConfig {
            structure: Ctrl::for_(Ctrl::if_(Ctrl::bb(4), Ctrl::bb(4))),
            structure_name: "(for (if (bb 4) (bb 4)))".into(),
            input_size: 2,
            seed: 7,
            goal,
            loop_size: 5,
        }
    }

    #[test]
    fn table_iv_structures_have_expected_shape() {
        let s = paper_structures();
        assert_eq!(s.len(), 6);
        assert_eq!(s[0].1.depth(), 1 + 1); // (if (bb) (bb)) counted as depth 2 here
        assert_eq!(s[0].1.if_count(), 1);
        assert_eq!(s[0].1.loop_count(), 0);
        assert_eq!(s[3].1.loop_count(), 2);
        assert_eq!(s[5].1.if_count(), 5);
    }

    #[test]
    fn point_test_accepts_the_secret_and_rejects_others() {
        let rf = generate(small_config(Goal::SecretFinding));
        let image = codegen::compile(&rf.program).unwrap();
        let mut emu = Emulator::new(&image);
        let yes = emu.call_named(&image, &rf.name, &[rf.secret_input]).unwrap();
        assert_eq!(yes, 1, "the secret input passes the check");
        // A handful of other inputs should not pass (collisions are
        // possible in principle but astronomically unlikely here).
        let mut rejected = 0;
        for x in 0..16u64 {
            let input = (rf.secret_input ^ (x + 1)) & rf.input_mask();
            let mut emu = Emulator::new(&image);
            if emu.call_named(&image, &rf.name, &[input]).unwrap() == 0 {
                rejected += 1;
            }
        }
        assert!(rejected >= 15);
    }

    #[test]
    fn coverage_flavour_emits_probes_reachable_by_search() {
        let rf = generate(small_config(Goal::CodeCoverage));
        assert!(rf.probe_count >= 4);
        let image = codegen::compile(&rf.program).unwrap();
        let probes = image.symbol(crate::minic::PROBE_ARRAY).unwrap();
        // Union of probes hit by a few inputs should cover everything: the
        // branch conditions only look at single input bits.
        let mut covered = vec![false; rf.probe_count as usize];
        for input in [0u64, u64::MAX, 0x5555_5555_5555_5555, 0xAAAA_AAAA_AAAA_AAAA] {
            let mut emu = Emulator::new(&image);
            emu.call_named(&image, &rf.name, &[input & rf.input_mask()]).unwrap();
            for (i, c) in covered.iter_mut().enumerate() {
                if emu.mem.read_u64(probes + 8 * i as u64) != 0 {
                    *c = true;
                }
            }
        }
        assert!(covered.iter().all(|c| *c), "all probes reachable: {covered:?}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(small_config(Goal::SecretFinding));
        let b = generate(small_config(Goal::SecretFinding));
        assert_eq!(a.secret_input, b.secret_input);
        assert_eq!(a.secret_hash, b.secret_hash);
        assert_eq!(a.program, b.program);
        let mut cfg = small_config(Goal::SecretFinding);
        cfg.seed = 8;
        let c = generate(cfg);
        assert_ne!(a.secret_hash, c.secret_hash);
    }

    #[test]
    fn paper_suite_has_72_functions() {
        // Use a tiny loop size to keep this test fast.
        let suite = paper_suite(Goal::SecretFinding, 2);
        assert_eq!(suite.len(), 72);
        let sizes: std::collections::HashSet<usize> =
            suite.iter().map(|f| f.config.input_size).collect();
        assert_eq!(sizes.len(), 4);
    }
}
