//! MiniC → RM64 code generation.
//!
//! A deliberately simple, gcc-`-O0`-shaped code generator: every function
//! gets a frame pointer, locals live in stack slots, expressions are
//! evaluated through `rax`/`rcx` with the hardware stack holding
//! intermediates, and comparisons compile to the `cmp`/`j<cc>` (or
//! `cmp`/`set<cc>`) idioms the ROP rewriter's branch encoding expects. The
//! output is a linked [`Image`] ready to be executed, rewritten or
//! virtualized.

use crate::minic::{BinOp, Expr, Function, Program, Stmt, UnOp, MAX_PROBES, PROBE_ARRAY};
use raindrop_machine::{AluOp, AsmError, Assembler, Cond, Image, ImageBuilder, Inst, Mem, Reg};

/// Compiles a MiniC program into a linked image.
///
/// # Errors
///
/// Fails when linking fails (unknown callee, displacement overflow).
pub fn compile(program: &Program) -> Result<Image, AsmError> {
    let mut builder = ImageBuilder::new();
    builder.add_bss(PROBE_ARRAY, MAX_PROBES * 8);
    for g in &program.globals {
        builder.add_data(g.name.clone(), &g.bytes);
    }
    for f in &program.functions {
        let asm = compile_function(f)?;
        builder.add_function(f.name.clone(), asm);
    }
    builder.build()
}

struct FnCtx<'a> {
    f: &'a Function,
    asm: Assembler,
}

impl<'a> FnCtx<'a> {
    fn local_slot(&self, id: usize) -> Mem {
        Mem::base_disp(Reg::Rbp, -8 * (id as i32 + 1))
    }

    fn arg_slot(&self, idx: usize) -> Mem {
        Mem::base_disp(Reg::Rbp, -8 * ((self.f.locals + idx) as i32 + 1))
    }

    fn frame_size(&self) -> i32 {
        let slots = self.f.locals + self.f.params;
        let bytes = 8 * slots as i32;
        (bytes + 15) & !15
    }
}

fn cond_of(op: BinOp) -> Option<Cond> {
    Some(match op {
        BinOp::Eq => Cond::E,
        BinOp::Ne => Cond::Ne,
        BinOp::Lt => Cond::B,
        BinOp::Le => Cond::Be,
        BinOp::Gt => Cond::A,
        BinOp::Ge => Cond::Ae,
        _ => return None,
    })
}

/// Compiles a single function to an assembler body.
///
/// # Errors
///
/// Currently infallible at this stage (errors surface at link time), but the
/// signature leaves room for per-function validation.
pub fn compile_function(f: &Function) -> Result<Assembler, AsmError> {
    let mut ctx = FnCtx { f, asm: Assembler::new() };
    // Prologue.
    ctx.asm.inst(Inst::Push(Reg::Rbp));
    ctx.asm.inst(Inst::MovRR(Reg::Rbp, Reg::Rsp));
    ctx.asm.inst(Inst::AluI(AluOp::Sub, Reg::Rsp, ctx.frame_size() + 16));
    for i in 0..f.params.min(Reg::ARGS.len()) {
        let slot = ctx.arg_slot(i);
        ctx.asm.inst(Inst::Store(slot, Reg::ARGS[i]));
    }
    gen_stmts(&mut ctx, &f.body);
    // Implicit `return 0` so every path ends in a well-formed epilogue.
    ctx.asm.inst(Inst::MovRI(Reg::Rax, 0));
    ctx.asm.inst(Inst::Leave);
    ctx.asm.inst(Inst::Ret);
    Ok(ctx.asm)
}

fn gen_stmts(ctx: &mut FnCtx<'_>, stmts: &[Stmt]) {
    for s in stmts {
        gen_stmt(ctx, s);
    }
}

fn gen_stmt(ctx: &mut FnCtx<'_>, stmt: &Stmt) {
    match stmt {
        Stmt::Assign(v, e) => {
            gen_expr(ctx, e);
            let slot = ctx.local_slot(*v);
            ctx.asm.inst(Inst::Store(slot, Reg::Rax));
        }
        Stmt::Store(addr, value) => {
            gen_expr(ctx, addr);
            ctx.asm.inst(Inst::Push(Reg::Rax));
            gen_expr(ctx, value);
            ctx.asm.inst(Inst::MovRR(Reg::Rcx, Reg::Rax));
            ctx.asm.inst(Inst::Pop(Reg::Rax));
            ctx.asm.inst(Inst::Store(Mem::base(Reg::Rax), Reg::Rcx));
        }
        Stmt::StoreByte(addr, value) => {
            gen_expr(ctx, addr);
            ctx.asm.inst(Inst::Push(Reg::Rax));
            gen_expr(ctx, value);
            ctx.asm.inst(Inst::MovRR(Reg::Rcx, Reg::Rax));
            ctx.asm.inst(Inst::Pop(Reg::Rax));
            ctx.asm.inst(Inst::StoreB(Mem::base(Reg::Rax), Reg::Rcx));
        }
        Stmt::If(cond, then_branch, else_branch) => {
            let else_l = ctx.asm.new_label();
            let end_l = ctx.asm.new_label();
            gen_branch_condition(ctx, cond, else_l);
            gen_stmts(ctx, then_branch);
            ctx.asm.jmp(end_l);
            ctx.asm.bind(else_l);
            gen_stmts(ctx, else_branch);
            ctx.asm.bind(end_l);
        }
        Stmt::While(cond, body) => {
            let head = ctx.asm.new_label();
            let exit = ctx.asm.new_label();
            ctx.asm.bind(head);
            gen_branch_condition(ctx, cond, exit);
            gen_stmts(ctx, body);
            ctx.asm.jmp(head);
            ctx.asm.bind(exit);
        }
        Stmt::Return(e) => {
            gen_expr(ctx, e);
            ctx.asm.inst(Inst::Leave);
            ctx.asm.inst(Inst::Ret);
        }
        Stmt::ExprStmt(e) => gen_expr(ctx, e),
        Stmt::Probe(id) => {
            // __probes[id] = 1, through a scratch register so the store uses
            // plain absolute addressing resolved at link time.
            ctx.asm.lea_sym(Reg::Rcx, PROBE_ARRAY, (*id as i32) * 8);
            ctx.asm.inst(Inst::StoreI(Mem::base(Reg::Rcx), 1));
        }
    }
}

/// Emits the comparison + conditional jump to `false_target` taken when
/// `cond` is false. Keeps `cmp` adjacent to `j<cc>` — the flag-liveness
/// pattern the ROP rewriter's branch lowering (and P2) relies on.
fn gen_branch_condition(ctx: &mut FnCtx<'_>, cond: &Expr, false_target: raindrop_machine::Label) {
    if let Expr::Bin(op, a, b) = cond {
        if let Some(cc) = cond_of(*op) {
            gen_expr(ctx, a);
            ctx.asm.inst(Inst::Push(Reg::Rax));
            gen_expr(ctx, b);
            ctx.asm.inst(Inst::MovRR(Reg::Rcx, Reg::Rax));
            ctx.asm.inst(Inst::Pop(Reg::Rax));
            ctx.asm.inst(Inst::Cmp(Reg::Rax, Reg::Rcx));
            ctx.asm.jcc(cc.negate(), false_target);
            return;
        }
    }
    gen_expr(ctx, cond);
    ctx.asm.inst(Inst::Test(Reg::Rax, Reg::Rax));
    ctx.asm.jcc(Cond::E, false_target);
}

fn gen_expr(ctx: &mut FnCtx<'_>, expr: &Expr) {
    match expr {
        Expr::Const(v) => {
            ctx.asm.inst(Inst::MovRI(Reg::Rax, *v));
        }
        Expr::Var(id) => {
            let slot = ctx.local_slot(*id);
            ctx.asm.inst(Inst::Load(Reg::Rax, slot));
        }
        Expr::Arg(i) => {
            let slot = ctx.arg_slot(*i);
            ctx.asm.inst(Inst::Load(Reg::Rax, slot));
        }
        Expr::GlobalAddr(name) => {
            ctx.asm.mov_sym_addr(Reg::Rax, name.clone());
        }
        Expr::Un(op, a) => {
            gen_expr(ctx, a);
            match op {
                UnOp::Neg => ctx.asm.inst(Inst::Neg(Reg::Rax)),
                UnOp::Not => ctx.asm.inst(Inst::Not(Reg::Rax)),
            };
        }
        Expr::Load(addr) => {
            gen_expr(ctx, addr);
            ctx.asm.inst(Inst::Load(Reg::Rax, Mem::base(Reg::Rax)));
        }
        Expr::LoadByte(addr) => {
            gen_expr(ctx, addr);
            ctx.asm.inst(Inst::LoadB(Reg::Rax, Mem::base(Reg::Rax)));
        }
        Expr::Call(name, args) => {
            assert!(args.len() <= Reg::ARGS.len(), "at most 6 arguments supported");
            for a in args {
                gen_expr(ctx, a);
                ctx.asm.inst(Inst::Push(Reg::Rax));
            }
            for i in (0..args.len()).rev() {
                ctx.asm.inst(Inst::Pop(Reg::ARGS[i]));
            }
            ctx.asm.call_sym(name.clone());
        }
        Expr::Bin(op, a, b) => {
            gen_expr(ctx, a);
            ctx.asm.inst(Inst::Push(Reg::Rax));
            gen_expr(ctx, b);
            ctx.asm.inst(Inst::MovRR(Reg::Rcx, Reg::Rax));
            ctx.asm.inst(Inst::Pop(Reg::Rax));
            gen_binop(ctx, *op);
        }
    }
}

fn gen_binop(ctx: &mut FnCtx<'_>, op: BinOp) {
    match op {
        BinOp::Add => {
            ctx.asm.inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rcx));
        }
        BinOp::Sub => {
            ctx.asm.inst(Inst::Alu(AluOp::Sub, Reg::Rax, Reg::Rcx));
        }
        BinOp::And => {
            ctx.asm.inst(Inst::Alu(AluOp::And, Reg::Rax, Reg::Rcx));
        }
        BinOp::Or => {
            ctx.asm.inst(Inst::Alu(AluOp::Or, Reg::Rax, Reg::Rcx));
        }
        BinOp::Xor => {
            ctx.asm.inst(Inst::Alu(AluOp::Xor, Reg::Rax, Reg::Rcx));
        }
        BinOp::Mul => {
            ctx.asm.inst(Inst::Mul(Reg::Rax, Reg::Rcx));
        }
        BinOp::Shl => {
            ctx.asm.inst(Inst::ShlR(Reg::Rax, Reg::Rcx));
        }
        BinOp::Shr => {
            ctx.asm.inst(Inst::ShrR(Reg::Rax, Reg::Rcx));
        }
        BinOp::Div | BinOp::Rem => {
            // MiniC defines x/0 = 0 and x%0 = x, so guard the hardware
            // divide (which faults on zero).
            let zero = ctx.asm.new_label();
            let done = ctx.asm.new_label();
            ctx.asm.inst(Inst::Test(Reg::Rcx, Reg::Rcx));
            ctx.asm.jcc(Cond::E, zero);
            let inst = if op == BinOp::Div {
                Inst::Div(Reg::Rax, Reg::Rcx)
            } else {
                Inst::Rem(Reg::Rax, Reg::Rcx)
            };
            ctx.asm.inst(inst);
            ctx.asm.jmp(done);
            ctx.asm.bind(zero);
            if op == BinOp::Div {
                ctx.asm.inst(Inst::MovRI(Reg::Rax, 0));
            }
            ctx.asm.bind(done);
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let cc = cond_of(op).expect("comparison");
            ctx.asm.inst(Inst::Cmp(Reg::Rax, Reg::Rcx));
            ctx.asm.inst(Inst::Set(cc, Reg::Rax));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minic::Global;
    use raindrop_machine::Emulator;

    fn run(p: &Program, func: &str, args: &[u64]) -> u64 {
        let img = compile(p).unwrap();
        let mut emu = Emulator::new(&img);
        emu.call_named(&img, func, args).unwrap()
    }

    #[test]
    fn arithmetic_and_comparisons() {
        // f(a, b) = (a*3 + b) ^ (a < b)
        let f = Function {
            name: "f".into(),
            params: 2,
            locals: 1,
            body: vec![
                Stmt::Assign(
                    0,
                    Expr::bin(
                        BinOp::Xor,
                        Expr::bin(
                            BinOp::Add,
                            Expr::bin(BinOp::Mul, Expr::Arg(0), Expr::c(3)),
                            Expr::Arg(1),
                        ),
                        Expr::bin(BinOp::Lt, Expr::Arg(0), Expr::Arg(1)),
                    ),
                ),
                Stmt::Return(Expr::Var(0)),
            ],
        };
        let p = Program::new().with_function(f);
        assert_eq!(run(&p, "f", &[2, 10]), (2 * 3 + 10) ^ 1);
        assert_eq!(run(&p, "f", &[10, 2]), (10 * 3 + 2));
    }

    #[test]
    fn control_flow_loops_and_ifs() {
        // sum of 1..=n for even n, n*2 otherwise
        let f = Function {
            name: "f".into(),
            params: 1,
            locals: 2,
            body: vec![
                Stmt::Assign(0, Expr::c(0)),
                Stmt::Assign(1, Expr::Arg(0)),
                Stmt::If(
                    Expr::bin(
                        BinOp::Eq,
                        Expr::bin(BinOp::And, Expr::Arg(0), Expr::c(1)),
                        Expr::c(0),
                    ),
                    vec![Stmt::While(
                        Expr::bin(BinOp::Gt, Expr::Var(1), Expr::c(0)),
                        vec![
                            Stmt::Assign(0, Expr::bin(BinOp::Add, Expr::Var(0), Expr::Var(1))),
                            Stmt::Assign(1, Expr::bin(BinOp::Sub, Expr::Var(1), Expr::c(1))),
                        ],
                    )],
                    vec![Stmt::Assign(0, Expr::bin(BinOp::Mul, Expr::Arg(0), Expr::c(2)))],
                ),
                Stmt::Return(Expr::Var(0)),
            ],
        };
        let p = Program::new().with_function(f);
        assert_eq!(run(&p, "f", &[10]), 55);
        assert_eq!(run(&p, "f", &[7]), 14);
    }

    #[test]
    fn division_by_zero_is_total() {
        let f = Function {
            name: "d".into(),
            params: 2,
            locals: 0,
            body: vec![Stmt::Return(Expr::bin(BinOp::Div, Expr::Arg(0), Expr::Arg(1)))],
        };
        let p = Program::new().with_function(f);
        assert_eq!(run(&p, "d", &[12, 4]), 3);
        assert_eq!(run(&p, "d", &[12, 0]), 0);
    }

    #[test]
    fn globals_memory_and_calls() {
        // helper(x) = x + 1; f(i) = table[i] + helper(i), table = [10,20,30]
        let mut table = Vec::new();
        for v in [10u64, 20, 30] {
            table.extend_from_slice(&v.to_le_bytes());
        }
        let helper = Function {
            name: "helper".into(),
            params: 1,
            locals: 0,
            body: vec![Stmt::Return(Expr::bin(BinOp::Add, Expr::Arg(0), Expr::c(1)))],
        };
        let f = Function {
            name: "f".into(),
            params: 1,
            locals: 1,
            body: vec![
                Stmt::Assign(
                    0,
                    Expr::Load(Box::new(Expr::bin(
                        BinOp::Add,
                        Expr::GlobalAddr("table".into()),
                        Expr::bin(BinOp::Mul, Expr::Arg(0), Expr::c(8)),
                    ))),
                ),
                Stmt::Return(Expr::bin(
                    BinOp::Add,
                    Expr::Var(0),
                    Expr::Call("helper".into(), vec![Expr::Arg(0)]),
                )),
            ],
        };
        let p = Program {
            functions: vec![helper, f],
            globals: vec![Global { name: "table".into(), bytes: table }],
        };
        assert_eq!(run(&p, "f", &[0]), 10 + 1);
        assert_eq!(run(&p, "f", &[2]), 30 + 3);
    }

    #[test]
    fn probes_write_into_the_probe_array() {
        let f = Function {
            name: "probed".into(),
            params: 1,
            locals: 0,
            body: vec![
                Stmt::Probe(0),
                Stmt::If(
                    Expr::bin(BinOp::Eq, Expr::Arg(0), Expr::c(1)),
                    vec![Stmt::Probe(1)],
                    vec![Stmt::Probe(2)],
                ),
                Stmt::Return(Expr::c(0)),
            ],
        };
        let p = Program::new().with_function(f);
        let img = compile(&p).unwrap();
        let probes = img.symbol(PROBE_ARRAY).unwrap();
        let mut emu = Emulator::new(&img);
        emu.call_named(&img, "probed", &[1]).unwrap();
        assert_eq!(emu.mem.read_u64(probes), 1);
        assert_eq!(emu.mem.read_u64(probes + 8), 1);
        assert_eq!(emu.mem.read_u64(probes + 16), 0);
    }

    #[test]
    fn bytes_and_stores() {
        // Writes "ab" into a buffer and reads it back combined.
        let f = Function {
            name: "bytes".into(),
            params: 0,
            locals: 0,
            body: vec![
                Stmt::StoreByte(Expr::GlobalAddr("buf".into()), Expr::c(0x61)),
                Stmt::StoreByte(
                    Expr::bin(BinOp::Add, Expr::GlobalAddr("buf".into()), Expr::c(1)),
                    Expr::c(0x62),
                ),
                Stmt::Return(Expr::bin(
                    BinOp::Add,
                    Expr::LoadByte(Box::new(Expr::GlobalAddr("buf".into()))),
                    Expr::bin(
                        BinOp::Mul,
                        Expr::LoadByte(Box::new(Expr::bin(
                            BinOp::Add,
                            Expr::GlobalAddr("buf".into()),
                            Expr::c(1),
                        ))),
                        Expr::c(256),
                    ),
                )),
            ],
        };
        let p = Program::new().with_function(f).with_global("buf", vec![0u8; 8]);
        assert_eq!(run(&p, "bytes", &[]), 0x61 + 0x62 * 256);
    }
}
