//! A reference interpreter for MiniC programs.
//!
//! The interpreter provides ground truth that is independent of the RM64
//! code generator: the same [`Program`] can be evaluated directly and by
//! compiling it with [`crate::codegen`] and running the result on the
//! emulator, and the two must agree. This is the oracle the property tests
//! use to validate the code generator, the VM obfuscation baseline and —
//! transitively — the ROP rewriter.
//!
//! # Example
//!
//! ```
//! use raindrop_synth::{interp::Interp, minic::{BinOp, Expr, Function, Program, Stmt}};
//!
//! let f = Function {
//!     name: "add3".into(),
//!     params: 1,
//!     locals: 0,
//!     body: vec![Stmt::Return(Expr::bin(BinOp::Add, Expr::Arg(0), Expr::c(3)))],
//! };
//! let program = Program::new().with_function(f);
//! let mut interp = Interp::new(&program);
//! assert_eq!(interp.call("add3", &[39]).unwrap(), 42);
//! ```

use crate::minic::{Expr, Function, Program, Stmt, PROBE_ARRAY};
use raindrop_machine::Memory;
use std::collections::HashMap;

/// Base address used for globals, mirroring the code generator's data
/// placement so that address arithmetic on global pointers behaves the same.
const GLOBAL_BASE: u64 = 0x0040_0000;

/// Errors raised while interpreting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The named function does not exist in the program.
    UnknownFunction(String),
    /// A `GlobalAddr` expression referenced an unknown global.
    UnknownGlobal(String),
    /// The step budget was exhausted (runaway loop or recursion).
    BudgetExceeded,
    /// Call nesting exceeded the maximum depth.
    CallDepthExceeded,
    /// A function was called with more arguments than it declares or more
    /// than the 6-register ABI supports.
    BadArity {
        /// The function name.
        name: String,
        /// Arguments supplied.
        got: usize,
    },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            InterpError::UnknownGlobal(n) => write!(f, "unknown global `{n}`"),
            InterpError::BudgetExceeded => write!(f, "interpreter step budget exhausted"),
            InterpError::CallDepthExceeded => write!(f, "call depth limit exceeded"),
            InterpError::BadArity { name, got } => {
                write!(f, "function `{name}` called with {got} arguments")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// What a statement evaluation asked the enclosing block to do.
enum Flow {
    Next,
    Return(u64),
}

/// The MiniC reference interpreter.
///
/// Memory is byte-addressable and zero-initialized, like the emulator's
/// guest memory; globals are laid out sequentially from a fixed base.
#[derive(Debug, Clone)]
pub struct Interp<'p> {
    program: &'p Program,
    /// Sparse paged memory (the same structure the emulator's guest memory
    /// uses, so bulk accesses are chunked instead of per-byte map probes).
    mem: Memory,
    globals: HashMap<String, u64>,
    /// Remaining statement/expression budget.
    budget: u64,
    /// Coverage probes hit so far, in execution order.
    probes: Vec<u32>,
    depth: usize,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter over `program` with the default budget.
    pub fn new(program: &'p Program) -> Interp<'p> {
        Interp::with_budget(program, 50_000_000)
    }

    /// Creates an interpreter with an explicit step budget.
    pub fn with_budget(program: &'p Program, budget: u64) -> Interp<'p> {
        let mut globals = HashMap::new();
        let mut mem = Memory::new();
        let mut next = GLOBAL_BASE;
        for g in &program.globals {
            globals.insert(g.name.clone(), next);
            mem.write_bytes(next, &g.bytes);
            next += (g.bytes.len() as u64 + 15) & !15;
        }
        // The probe array exists implicitly when any function probes.
        globals.entry(PROBE_ARRAY.to_string()).or_insert_with(|| next);
        Interp { program, mem, globals, budget, probes: Vec::new(), depth: 0 }
    }

    /// The address assigned to a global, if it exists.
    pub fn global_addr(&self, name: &str) -> Option<u64> {
        self.globals.get(name).copied()
    }

    /// Coverage probes hit so far, in execution order.
    pub fn probes(&self) -> &[u32] {
        &self.probes
    }

    /// Distinct coverage probes hit so far.
    pub fn distinct_probes(&self) -> std::collections::BTreeSet<u32> {
        self.probes.iter().copied().collect()
    }

    /// Reads a 64-bit little-endian value from interpreter memory.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.mem.read_u64(addr)
    }

    /// Reads one byte from interpreter memory.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.mem.read_u8(addr)
    }

    /// Writes a 64-bit little-endian value to interpreter memory.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.mem.write_u64(addr, value);
    }

    /// Writes one byte to interpreter memory.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.mem.write_u8(addr, value);
    }

    /// Writes a byte buffer to interpreter memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.write_bytes(addr, bytes);
    }

    /// Reads `buf.len()` bytes from interpreter memory.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        self.mem.read_bytes(addr, buf);
    }

    /// Calls a function by name with up to six arguments and returns its
    /// result.
    ///
    /// # Errors
    ///
    /// Returns an error when the function is unknown, arity is exceeded, or
    /// the step budget runs out.
    pub fn call(&mut self, name: &str, args: &[u64]) -> Result<u64, InterpError> {
        let func = self
            .program
            .function(name)
            .ok_or_else(|| InterpError::UnknownFunction(name.to_string()))?;
        if args.len() > 6 {
            return Err(InterpError::BadArity { name: name.to_string(), got: args.len() });
        }
        if self.depth >= 256 {
            return Err(InterpError::CallDepthExceeded);
        }
        self.depth += 1;
        let result = self.run_function(func, args);
        self.depth -= 1;
        result
    }

    fn charge(&mut self) -> Result<(), InterpError> {
        if self.budget == 0 {
            return Err(InterpError::BudgetExceeded);
        }
        self.budget -= 1;
        Ok(())
    }

    fn run_function(&mut self, func: &'p Function, args: &[u64]) -> Result<u64, InterpError> {
        let mut frame = Frame {
            args: {
                let mut a = [0u64; 6];
                a[..args.len()].copy_from_slice(args);
                a
            },
            locals: vec![0u64; func.locals],
        };
        match self.run_block(&func.body, &mut frame)? {
            Flow::Return(v) => Ok(v),
            Flow::Next => Ok(0),
        }
    }

    fn run_block(&mut self, stmts: &'p [Stmt], frame: &mut Frame) -> Result<Flow, InterpError> {
        for stmt in stmts {
            match self.run_stmt(stmt, frame)? {
                Flow::Next => {}
                flow @ Flow::Return(_) => return Ok(flow),
            }
        }
        Ok(Flow::Next)
    }

    fn run_stmt(&mut self, stmt: &'p Stmt, frame: &mut Frame) -> Result<Flow, InterpError> {
        self.charge()?;
        match stmt {
            Stmt::Assign(var, e) => {
                let v = self.eval(e, frame)?;
                if *var < frame.locals.len() {
                    frame.locals[*var] = v;
                }
                Ok(Flow::Next)
            }
            Stmt::Store(addr, value) => {
                let a = self.eval(addr, frame)?;
                let v = self.eval(value, frame)?;
                self.write_u64(a, v);
                Ok(Flow::Next)
            }
            Stmt::StoreByte(addr, value) => {
                let a = self.eval(addr, frame)?;
                let v = self.eval(value, frame)?;
                self.write_u8(a, v as u8);
                Ok(Flow::Next)
            }
            Stmt::If(cond, then_b, else_b) => {
                let c = self.eval(cond, frame)?;
                if c != 0 {
                    self.run_block(then_b, frame)
                } else {
                    self.run_block(else_b, frame)
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(cond, frame)? != 0 {
                    match self.run_block(body, frame)? {
                        Flow::Next => {}
                        flow @ Flow::Return(_) => return Ok(flow),
                    }
                }
                Ok(Flow::Next)
            }
            Stmt::Return(e) => {
                let v = self.eval(e, frame)?;
                Ok(Flow::Return(v))
            }
            Stmt::ExprStmt(e) => {
                self.eval(e, frame)?;
                Ok(Flow::Next)
            }
            Stmt::Probe(id) => {
                self.probes.push(*id);
                // Mirror the code generator: probes also set a byte in the
                // probe array so memory-comparing oracles agree.
                if let Some(base) = self.globals.get(PROBE_ARRAY).copied() {
                    self.write_u8(base + *id as u64, 1);
                }
                Ok(Flow::Next)
            }
        }
    }

    fn eval(&mut self, expr: &'p Expr, frame: &mut Frame) -> Result<u64, InterpError> {
        self.charge()?;
        Ok(match expr {
            Expr::Const(v) => *v as u64,
            Expr::Var(i) => frame.locals.get(*i).copied().unwrap_or(0),
            Expr::Arg(i) => frame.args.get(*i).copied().unwrap_or(0),
            Expr::GlobalAddr(name) => self
                .globals
                .get(name)
                .copied()
                .ok_or_else(|| InterpError::UnknownGlobal(name.clone()))?,
            Expr::Un(op, a) => {
                let a = self.eval(a, frame)?;
                op.eval(a)
            }
            Expr::Bin(op, a, b) => {
                let a = self.eval(a, frame)?;
                let b = self.eval(b, frame)?;
                op.eval(a, b)
            }
            Expr::Load(a) => {
                let addr = self.eval(a, frame)?;
                self.read_u64(addr)
            }
            Expr::LoadByte(a) => {
                let addr = self.eval(a, frame)?;
                self.read_u8(addr) as u64
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, frame)?);
                }
                self.call(name, &vals)?
            }
        })
    }
}

#[derive(Debug, Clone)]
struct Frame {
    args: [u64; 6],
    locals: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minic::{BinOp, UnOp};

    fn simple_program() -> Program {
        let double = Function {
            name: "double".into(),
            params: 1,
            locals: 0,
            body: vec![Stmt::Return(Expr::bin(BinOp::Mul, Expr::Arg(0), Expr::c(2)))],
        };
        let sum_to_n = Function {
            name: "sum_to_n".into(),
            params: 1,
            locals: 2,
            body: vec![
                Stmt::Assign(0, Expr::c(0)),
                Stmt::Assign(1, Expr::c(1)),
                Stmt::While(
                    Expr::bin(BinOp::Le, Expr::Var(1), Expr::Arg(0)),
                    vec![
                        Stmt::Assign(0, Expr::bin(BinOp::Add, Expr::Var(0), Expr::Var(1))),
                        Stmt::Assign(1, Expr::bin(BinOp::Add, Expr::Var(1), Expr::c(1))),
                    ],
                ),
                Stmt::Return(Expr::Var(0)),
            ],
        };
        let wrapper = Function {
            name: "wrapper".into(),
            params: 1,
            locals: 0,
            body: vec![Stmt::Return(Expr::Call(
                "double".into(),
                vec![Expr::Call("sum_to_n".into(), vec![Expr::Arg(0)])],
            ))],
        };
        Program::new().with_function(double).with_function(sum_to_n).with_function(wrapper)
    }

    #[test]
    fn arithmetic_loops_and_calls_evaluate() {
        let p = simple_program();
        let mut i = Interp::new(&p);
        assert_eq!(i.call("double", &[21]).unwrap(), 42);
        assert_eq!(i.call("sum_to_n", &[100]).unwrap(), 5050);
        assert_eq!(i.call("wrapper", &[10]).unwrap(), 110);
    }

    #[test]
    fn globals_memory_and_byte_ops_work() {
        let f = Function {
            name: "poke".into(),
            params: 1,
            locals: 1,
            body: vec![
                Stmt::Assign(0, Expr::GlobalAddr("buf".into())),
                Stmt::StoreByte(Expr::Var(0), Expr::Arg(0)),
                Stmt::Store(
                    Expr::bin(BinOp::Add, Expr::Var(0), Expr::c(8)),
                    Expr::un(UnOp::Not, Expr::Arg(0)),
                ),
                Stmt::Return(Expr::bin(
                    BinOp::Add,
                    Expr::LoadByte(Expr::Var(0).into()),
                    Expr::Load(Box::new(Expr::bin(BinOp::Add, Expr::Var(0), Expr::c(8)))),
                )),
            ],
        };
        let p = Program::new().with_function(f).with_global("buf", vec![0u8; 16]);
        let mut i = Interp::new(&p);
        let got = i.call("poke", &[0x41]).unwrap();
        assert_eq!(got, 0x41u64.wrapping_add(!0x41u64));
        let addr = i.global_addr("buf").unwrap();
        assert_eq!(i.read_u8(addr), 0x41);
    }

    #[test]
    fn probes_are_recorded_in_order() {
        let f = Function {
            name: "probed".into(),
            params: 1,
            locals: 0,
            body: vec![
                Stmt::Probe(0),
                Stmt::If(Expr::Arg(0), vec![Stmt::Probe(1)], vec![Stmt::Probe(2)]),
                Stmt::Probe(3),
                Stmt::Return(Expr::c(0)),
            ],
        };
        let p = Program::new().with_function(f);
        let mut i = Interp::new(&p);
        i.call("probed", &[1]).unwrap();
        assert_eq!(i.probes(), &[0, 1, 3]);
        i.call("probed", &[0]).unwrap();
        assert_eq!(i.distinct_probes().len(), 4);
    }

    #[test]
    fn runaway_loops_hit_the_budget() {
        let f = Function {
            name: "spin".into(),
            params: 0,
            locals: 0,
            body: vec![Stmt::While(Expr::c(1), vec![Stmt::ExprStmt(Expr::c(0))])],
        };
        let p = Program::new().with_function(f);
        let mut i = Interp::with_budget(&p, 10_000);
        assert_eq!(i.call("spin", &[]), Err(InterpError::BudgetExceeded));
    }

    #[test]
    fn unknown_names_are_reported() {
        let p = Program::new();
        let mut i = Interp::new(&p);
        assert_eq!(i.call("nope", &[]), Err(InterpError::UnknownFunction("nope".into())));
    }

    #[test]
    fn division_by_zero_is_total_like_the_minic_reference() {
        let f = Function {
            name: "divz".into(),
            params: 2,
            locals: 0,
            body: vec![Stmt::Return(Expr::bin(BinOp::Div, Expr::Arg(0), Expr::Arg(1)))],
        };
        let p = Program::new().with_function(f);
        let mut i = Interp::new(&p);
        assert_eq!(i.call("divz", &[10, 0]).unwrap(), BinOp::Div.eval(10, 0));
    }
}
