//! # raindrop-synth
//!
//! Workload synthesis for the *raindrop* reproduction: everything the
//! paper's evaluation compiles with gcc or generates with Tigress is
//! produced here as MiniC and compiled to RM64 by a small code generator.
//!
//! * [`minic`] — the MiniC IR;
//! * [`codegen`] — MiniC → RM64 compilation;
//! * [`randomfuns`] — the 72 Tigress-style random hash functions of §VII-B
//!   (Table IV control structures, point-test and coverage flavours);
//! * [`workloads`] — the ten clbg shootout kernels (Fig. 5 / Table III) and
//!   the base64 case study (§VII-C3), plus the bump-allocator runtime;
//! * [`corpus`] — the coreutils-like corpus for the rewriting-coverage
//!   experiment (§VII-C1);
//! * [`classes`] — the named workload-class registry (headline benchmark
//!   classes plus runnable-but-excluded adversarial worst cases) with seeded
//!   generators and per-program reference semantics.
//!
//! # Example
//!
//! ```
//! use raindrop_synth::{codegen, workloads};
//! use raindrop_machine::Emulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = workloads::base64();
//! let image = codegen::compile(&w.program)?;
//! let mut emu = Emulator::new(&image);
//! let input = image.symbol("b64_in")?;
//! emu.mem.write_bytes(input, b"Man");
//! emu.call_named(&image, "base64_encode", &[3])?;
//! let out = image.symbol("b64_out")?;
//! let mut buf = [0u8; 4];
//! emu.mem.read_bytes(out, &mut buf);
//! assert_eq!(&buf, b"TWFu");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod codegen;
pub mod corpus;
pub mod interp;
pub mod minic;
pub mod randomfuns;
pub mod workloads;

pub use classes::{ClassId, ClassProgram, ClassSpec};
pub use codegen::{compile, compile_function};
pub use corpus::{Corpus, CorpusEntry, CorpusKind};
pub use interp::{Interp, InterpError};
pub use minic::{BinOp, Expr, Function, Global, Program, Stmt, UnOp, PROBE_ARRAY};
pub use randomfuns::{
    generate as generate_randomfun, input_mask, paper_structures, paper_suite, Ctrl, Goal,
    RandomFun, RandomFunConfig,
};
pub use workloads::{base64, clbg_suite, Workload};
