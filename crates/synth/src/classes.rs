//! Named workload classes: the benchmark-class methodology of the
//! evaluation, modelled on allocator-bench practice — every class is
//! measured, the adversarial worst cases are documented and runnable but
//! excluded from headline rows.
//!
//! A [`ClassId`] names one class; [`registry`] lists all of them with their
//! headline/worst-case status; [`generate`] produces deterministic, seeded
//! [`ClassProgram`]s for a class. Every class program carries *reference
//! semantics*: a MiniC [`Program`] whose evaluation under the
//! [`Interp`] yields the value the compiled workload
//! must produce on the emulator. For most classes the reference *is* the
//! workload program; the self-modifying-code class is the exception — its
//! driver patches an immediate in guest text (something the interpreter
//! cannot model), so it ships a separate pure program computing the same
//! checksum.
//!
//! The classes:
//!
//! * `synthetic-stress` — the existing Tigress-style random-function corpus,
//!   reclassified (point-test and coverage flavours);
//! * `application` — parser/checksum/state-machine shapes: a table-driven
//!   CRC, a byte-scanning number parser, a seeded DFA token machine;
//! * `database` — hash-table and binary-search-tree lookups over guest heap
//!   memory through the shared bump-allocator runtime;
//! * `adversarial-icache` — self-modifying text: the driver stores over an
//!   immediate inside a helper's body every iteration, forcing
//!   write-generation invalidation of the predecoded icache;
//! * `adversarial-depth` — deep recursion and a giant-switch bytecode
//!   interpreter, stressing the DSE frontier and the expression arena's
//!   DAG-size hazard cap.

use crate::codegen;
use crate::interp::Interp;
use crate::minic::{BinOp, Expr, Global, Program, Stmt};
use crate::randomfuns::{self, RandomFunConfig};
use crate::workloads::{
    add, and, arg, assign, b, c, call, func, gaddr, if_, load, loadb, mul, ret, shr, sub, v,
    while_, with_runtime, xor, Workload,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A named workload class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassId {
    /// Tigress-style random hash functions (the historical corpus).
    SyntheticStress,
    /// Parsers, checksums/CRCs and state machines.
    Application,
    /// Hash-table and BST lookups over guest heap memory.
    Database,
    /// Self-modifying text stressing icache write-generation invalidation.
    AdversarialIcache,
    /// Deep recursion and giant-switch interpreters.
    AdversarialDepth,
}

impl ClassId {
    /// The class's stable name (used by `--class` filters and reports).
    pub fn name(self) -> &'static str {
        match self {
            ClassId::SyntheticStress => "synthetic-stress",
            ClassId::Application => "application",
            ClassId::Database => "database",
            ClassId::AdversarialIcache => "adversarial-icache",
            ClassId::AdversarialDepth => "adversarial-depth",
        }
    }

    /// Every registered class, in registry order.
    pub fn all() -> [ClassId; 5] {
        [
            ClassId::SyntheticStress,
            ClassId::Application,
            ClassId::Database,
            ClassId::AdversarialIcache,
            ClassId::AdversarialDepth,
        ]
    }

    /// Parses a class name as printed by [`ClassId::name`].
    pub fn from_name(name: &str) -> Option<ClassId> {
        ClassId::all().into_iter().find(|c| c.name() == name)
    }
}

/// Registry entry for one class.
#[derive(Debug, Clone, Serialize)]
pub struct ClassSpec {
    /// The class.
    pub id: ClassId,
    /// Whether the class contributes to headline overhead rows. Worst-case
    /// classes are measured and reported, but excluded from headlines.
    pub headline: bool,
    /// One-line description for reports.
    pub description: &'static str,
}

/// The workload-class registry, in reporting order.
pub fn registry() -> Vec<ClassSpec> {
    vec![
        ClassSpec {
            id: ClassId::SyntheticStress,
            headline: true,
            description: "Tigress-style random hash functions (point test + coverage)",
        },
        ClassSpec {
            id: ClassId::Application,
            headline: true,
            description: "table-driven CRC, number parser, DFA token machine",
        },
        ClassSpec {
            id: ClassId::Database,
            headline: true,
            description: "open-addressing hash table and BST lookups over guest heap",
        },
        ClassSpec {
            id: ClassId::AdversarialIcache,
            headline: false,
            description: "self-modifying text forcing icache write-generation invalidation",
        },
        ClassSpec {
            id: ClassId::AdversarialDepth,
            headline: false,
            description: "deep recursion and giant-switch bytecode interpreter",
        },
    ]
}

/// One generated program of a class: the runnable [`Workload`] plus its
/// reference semantics.
#[derive(Debug, Clone)]
pub struct ClassProgram {
    /// The class this program belongs to.
    pub class: ClassId,
    /// The runnable workload (program, entry, canonical args, obfuscation
    /// targets).
    pub workload: Workload,
    /// Reference program evaluated by the MiniC interpreter. Identical to
    /// `workload.program` (minus the point-test wrapper) except for the
    /// self-modifying-code class.
    pub reference: Program,
    /// Entry function of the reference program.
    pub ref_entry: String,
    /// The point-test wrapper in `workload.program`: returns 1 iff the
    /// entry's checksum of its argument equals the canonical argument's
    /// checksum. The paper-style DSE secret-finding target (`want: 1`) —
    /// without it the checksum programs would have no input-dependent
    /// branch for an attacker to solve.
    pub check_entry: String,
}

impl ClassProgram {
    /// The value the workload must produce on its canonical arguments,
    /// computed by the reference interpreter.
    pub fn reference_value(&self) -> u64 {
        self.reference_value_for(self.workload.args[0])
    }

    /// The reference value for an arbitrary first argument.
    pub fn reference_value_for(&self, x: u64) -> u64 {
        let mut interp = Interp::new(&self.reference);
        interp.call(&self.ref_entry, &[x]).expect("reference program evaluates")
    }
}

/// Generates the deterministic seeded programs of one class. Every entry
/// function takes exactly one argument (a checksum seed below 256, so
/// byte-exhaustive DSE input specs apply) and every loop bound is a
/// generation-time constant — the argument never controls trip counts.
pub fn generate(class: ClassId, seed: u64) -> Vec<ClassProgram> {
    match class {
        ClassId::SyntheticStress => synthetic_stress(seed),
        ClassId::Application => application(seed),
        ClassId::Database => database(seed),
        ClassId::AdversarialIcache => adversarial_icache(seed),
        ClassId::AdversarialDepth => adversarial_depth(seed),
    }
}

/// Generates every class's programs for one seed, in registry order.
pub fn generate_all(seed: u64) -> Vec<ClassProgram> {
    registry().into_iter().flat_map(|s| generate(s.id, seed)).collect()
}

fn class_rng(class: ClassId, seed: u64) -> ChaCha8Rng {
    // Per-class stream separation: the same seed must not entangle the
    // draws of different classes.
    let tag = crate::corpus::stream_tag(class.name().as_bytes());
    ChaCha8Rng::seed_from_u64(seed ^ tag)
}

fn self_referential(class: ClassId, workload: Workload) -> ClassProgram {
    let reference = workload.program.clone();
    let ref_entry = workload.entry.clone();
    with_check(ClassProgram { class, workload, reference, ref_entry, check_entry: String::new() })
}

/// Appends the point-test wrapper `<entry>_check(x) = entry(x) == K` (K the
/// canonical argument's checksum) to the workload program. Appending never
/// moves earlier functions, so the self-modifying class's patched-site
/// address stays valid.
fn with_check(mut cp: ClassProgram) -> ClassProgram {
    let k = cp.reference_value();
    let entry = cp.workload.entry.clone();
    let name = format!("{entry}_check");
    cp.workload.program.functions.push(func(
        &name,
        1,
        0,
        vec![if_(
            b(BinOp::Eq, call(&entry, vec![arg(0)]), c(k as i64)),
            vec![ret(c(1))],
            vec![ret(c(0))],
        )],
    ));
    cp.check_entry = name;
    cp
}

// --- synthetic-stress ------------------------------------------------------

fn synthetic_stress(seed: u64) -> Vec<ClassProgram> {
    let mut rng = class_rng(ClassId::SyntheticStress, seed);
    let structures = randomfuns::paper_structures();
    let mut out = Vec::new();
    for (i, goal) in
        [randomfuns::Goal::SecretFinding, randomfuns::Goal::CodeCoverage].into_iter().enumerate()
    {
        let si = rng.gen_range(0..structures.len());
        let (name, structure) = &structures[si];
        let rf = randomfuns::generate(RandomFunConfig {
            structure: structure.clone(),
            structure_name: name.clone(),
            input_size: 1,
            seed: rng.gen(),
            goal,
            loop_size: rng.gen_range(2..6),
        });
        let input = match goal {
            randomfuns::Goal::SecretFinding => rf.secret_input & 0xff,
            randomfuns::Goal::CodeCoverage => rng.gen::<u64>() & 0xff,
        };
        out.push(self_referential(
            ClassId::SyntheticStress,
            Workload {
                name: format!("stress-s{si}-{i}"),
                entry: rf.name.clone(),
                args: vec![input],
                obfuscate: vec![rf.name.clone()],
                program: rf.program,
            },
        ));
    }
    out
}

// --- application -----------------------------------------------------------

fn application(seed: u64) -> Vec<ClassProgram> {
    let mut rng = class_rng(ClassId::Application, seed);
    vec![app_crc(&mut rng), app_parser(&mut rng), app_dfa(&mut rng)]
}

/// Table-driven CRC: `crc = tab[(crc ^ buf[i]) & 0xff] ^ (crc >> 8)`.
fn app_crc(rng: &mut ChaCha8Rng) -> ClassProgram {
    let mut tab = Vec::with_capacity(256 * 8);
    for _ in 0..256 {
        tab.extend_from_slice(&rng.gen::<u64>().to_le_bytes());
    }
    let len = 160 + rng.gen_range(0..64i64);
    let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
    let main = func(
        "app_crc_main",
        1,
        2,
        vec![
            assign(0, arg(0)), // crc
            assign(1, c(0)),   // i
            while_(
                b(BinOp::Lt, v(1), c(len)),
                vec![
                    assign(
                        0,
                        xor(
                            load(add(
                                gaddr("crc_tab"),
                                mul(
                                    and(xor(v(0), loadb(add(gaddr("crc_buf"), v(1)))), c(0xff)),
                                    c(8),
                                ),
                            )),
                            shr(v(0), c(8)),
                        ),
                    ),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            ret(v(0)),
        ],
    );
    let program = Program {
        functions: vec![main],
        globals: vec![
            Global { name: "crc_tab".into(), bytes: tab },
            Global { name: "crc_buf".into(), bytes: data },
        ],
    };
    self_referential(
        ClassId::Application,
        Workload {
            name: "app-crc".into(),
            program,
            entry: "app_crc_main".into(),
            args: vec![0x5a],
            obfuscate: vec!["app_crc_main".into()],
        },
    )
}

/// Byte-scanning number parser: skips spaces, accumulates decimal digits,
/// folds each `;`-terminated field into a running checksum.
fn app_parser(rng: &mut ChaCha8Rng) -> ClassProgram {
    let mut text = Vec::new();
    for _ in 0..rng.gen_range(18..28) {
        let pad = rng.gen_range(0..3);
        text.extend(std::iter::repeat_n(b' ', pad));
        for _ in 0..rng.gen_range(1..6) {
            text.push(b'0' + rng.gen_range(0..10u8));
        }
        text.push(b';');
    }
    text.push(0);
    let mix = (rng.gen::<u64>() | 1) as i64;
    // locals: 0 = sum, 1 = cur, 2 = i, 3 = ch
    let main = func(
        "app_parse_main",
        1,
        4,
        vec![
            assign(0, arg(0)),
            assign(1, c(0)),
            assign(2, c(0)),
            while_(
                b(BinOp::Ne, loadb(add(gaddr("parse_buf"), v(2))), c(0)),
                vec![
                    assign(3, loadb(add(gaddr("parse_buf"), v(2)))),
                    if_(
                        and(b(BinOp::Ge, v(3), c(48)), b(BinOp::Le, v(3), c(57))),
                        vec![assign(1, add(mul(v(1), c(10)), sub(v(3), c(48))))],
                        vec![if_(
                            b(BinOp::Eq, v(3), c(b';' as i64)),
                            vec![assign(0, mul(xor(v(0), v(1)), c(mix))), assign(1, c(0))],
                            vec![],
                        )],
                    ),
                    assign(2, add(v(2), c(1))),
                ],
            ),
            ret(v(0)),
        ],
    );
    let program = Program {
        functions: vec![main],
        globals: vec![Global { name: "parse_buf".into(), bytes: text }],
    };
    self_referential(
        ClassId::Application,
        Workload {
            name: "app-parser".into(),
            program,
            entry: "app_parse_main".into(),
            args: vec![0x11],
            obfuscate: vec!["app_parse_main".into()],
        },
    )
}

/// Seeded DFA token machine: 8 states x 16 symbol classes, transitions from
/// a generated table, output folds the visited states.
fn app_dfa(rng: &mut ChaCha8Rng) -> ClassProgram {
    let mut tab = Vec::with_capacity(8 * 16 * 8);
    for _ in 0..(8 * 16) {
        tab.extend_from_slice(&rng.gen_range(0..8u64).to_le_bytes());
    }
    let len = 128 + rng.gen_range(0..32i64);
    let input: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
    // locals: 0 = state, 1 = out, 2 = i
    let main = func(
        "app_dfa_main",
        1,
        3,
        vec![
            assign(0, and(arg(0), c(7))),
            assign(1, arg(0)),
            assign(2, c(0)),
            while_(
                b(BinOp::Lt, v(2), c(len)),
                vec![
                    assign(
                        0,
                        load(add(
                            gaddr("dfa_tab"),
                            mul(
                                add(
                                    mul(v(0), c(16)),
                                    and(loadb(add(gaddr("dfa_in"), v(2))), c(15)),
                                ),
                                c(8),
                            ),
                        )),
                    ),
                    assign(1, add(v(1), add(mul(v(0), v(0)), v(2)))),
                    assign(2, add(v(2), c(1))),
                ],
            ),
            ret(xor(v(1), v(0))),
        ],
    );
    let program = Program {
        functions: vec![main],
        globals: vec![
            Global { name: "dfa_tab".into(), bytes: tab },
            Global { name: "dfa_in".into(), bytes: input },
        ],
    };
    self_referential(
        ClassId::Application,
        Workload {
            name: "app-dfa".into(),
            program,
            entry: "app_dfa_main".into(),
            args: vec![0x2d],
            obfuscate: vec!["app_dfa_main".into()],
        },
    )
}

// --- database --------------------------------------------------------------

fn database(seed: u64) -> Vec<ClassProgram> {
    let mut rng = class_rng(ClassId::Database, seed);
    vec![db_hash(&mut rng), db_btree(&mut rng)]
}

/// Open-addressing hash table over guest heap memory: `malloc` a 128-slot
/// table of (key, value) pairs, insert 24 derived keys with linear probing,
/// then look up a mix of present and absent keys.
fn db_hash(rng: &mut ChaCha8Rng) -> ClassProgram {
    const BUCKETS: i64 = 128;
    const INSERTS: i64 = 24;
    const LOOKUPS: i64 = 40;
    let k0 = (rng.gen::<u64>() | 1) as i64;
    let c0 = rng.gen::<u64>() as i64;
    let c1 = rng.gen::<u64>() as i64;
    // key(j) = ((j * k0) ^ c0) | 1 — nonzero, so 0 can mean "empty slot".
    let key_of = |j: Expr| -> Expr { b(BinOp::Or, xor(mul(j, c(k0)), c(c0)), c(1)) };
    // hash(k) = (k * k0) >> 57 masked to the table size.
    let hash_of = |k: Expr| -> Expr { and(shr(mul(k, c(k0)), c(57)), c(BUCKETS - 1)) };
    // locals: 0 = table, 1 = i, 2 = k, 3 = idx, 4 = sum
    let main = func(
        "db_hash_main",
        1,
        5,
        vec![
            assign(0, call("malloc", vec![c(BUCKETS * 16)])),
            assign(1, c(1)),
            while_(
                b(BinOp::Le, v(1), c(INSERTS)),
                vec![
                    assign(2, key_of(v(1))),
                    assign(3, hash_of(v(2))),
                    while_(
                        b(BinOp::Ne, load(add(v(0), mul(v(3), c(16)))), c(0)),
                        vec![assign(3, and(add(v(3), c(1)), c(BUCKETS - 1)))],
                    ),
                    Stmt::Store(add(v(0), mul(v(3), c(16))), v(2)),
                    Stmt::Store(add(add(v(0), mul(v(3), c(16))), c(8)), xor(v(2), c(c1))),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            assign(4, arg(0)),
            assign(1, c(1)),
            while_(
                b(BinOp::Le, v(1), c(LOOKUPS)),
                vec![
                    // Present for j <= INSERTS, absent beyond.
                    assign(2, key_of(v(1))),
                    assign(3, hash_of(v(2))),
                    while_(
                        and(
                            b(BinOp::Ne, load(add(v(0), mul(v(3), c(16)))), c(0)),
                            b(BinOp::Ne, load(add(v(0), mul(v(3), c(16)))), v(2)),
                        ),
                        vec![assign(3, and(add(v(3), c(1)), c(BUCKETS - 1)))],
                    ),
                    if_(
                        b(BinOp::Eq, load(add(v(0), mul(v(3), c(16)))), v(2)),
                        vec![assign(4, add(v(4), load(add(add(v(0), mul(v(3), c(16))), c(8)))))],
                        vec![assign(4, xor(v(4), shr(v(2), c(13))))],
                    ),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            ret(v(4)),
        ],
    );
    self_referential(
        ClassId::Database,
        Workload {
            name: "db-hash".into(),
            program: with_runtime(vec![main], vec![]),
            entry: "db_hash_main".into(),
            args: vec![0x3c],
            obfuscate: vec!["db_hash_main".into()],
        },
    )
}

/// Binary-search-tree lookups over guest heap memory: iterative inserts of
/// bounded keys into `malloc`'d nodes, then a present/absent probe sweep.
/// Node layout: `[left, right, key, value]`.
fn db_btree(rng: &mut ChaCha8Rng) -> ClassProgram {
    const INSERTS: i64 = 20;
    const LOOKUPS: i64 = 28;
    let k0 = (rng.gen::<u64>() | 1) as i64;
    let c0 = rng.gen::<u64>() as i64;
    let vm = (rng.gen::<u64>() | 1) as i64;
    let pr = (rng.gen::<u64>() | 1) as i64;
    let key_of = |j: Expr| -> Expr { and(xor(mul(j, c(k0)), c(c0)), c(0xffff)) };
    // locals: 0 = root, 1 = i, 2 = k, 3 = node, 4 = cur, 5 = done, 6 = sum
    let main = func(
        "db_btree_main",
        1,
        7,
        vec![
            assign(0, call("malloc", vec![c(32)])),
            Stmt::Store(add(v(0), c(16)), key_of(c(1))),
            Stmt::Store(add(v(0), c(24)), mul(key_of(c(1)), c(vm))),
            assign(1, c(2)),
            while_(
                b(BinOp::Le, v(1), c(INSERTS)),
                vec![
                    assign(2, key_of(v(1))),
                    assign(3, call("malloc", vec![c(32)])),
                    Stmt::Store(add(v(3), c(16)), v(2)),
                    Stmt::Store(add(v(3), c(24)), mul(v(2), c(vm))),
                    assign(4, v(0)),
                    assign(5, c(0)),
                    while_(
                        b(BinOp::Eq, v(5), c(0)),
                        vec![if_(
                            b(BinOp::Lt, v(2), load(add(v(4), c(16)))),
                            vec![if_(
                                b(BinOp::Eq, load(v(4)), c(0)),
                                vec![Stmt::Store(v(4), v(3)), assign(5, c(1))],
                                vec![assign(4, load(v(4)))],
                            )],
                            vec![if_(
                                b(BinOp::Eq, load(add(v(4), c(8))), c(0)),
                                vec![Stmt::Store(add(v(4), c(8)), v(3)), assign(5, c(1))],
                                vec![assign(4, load(add(v(4), c(8))))],
                            )],
                        )],
                    ),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            assign(6, arg(0)),
            assign(1, c(0)),
            while_(
                b(BinOp::Lt, v(1), c(LOOKUPS)),
                vec![
                    // Even probes hit inserted keys, odd probes likely miss.
                    if_(
                        b(BinOp::Eq, and(v(1), c(1)), c(0)),
                        vec![assign(2, key_of(add(shr(v(1), c(1)), c(1))))],
                        vec![assign(2, and(add(mul(v(1), c(pr)), c(c0)), c(0xffff)))],
                    ),
                    assign(4, v(0)),
                    while_(
                        b(BinOp::Ne, v(4), c(0)),
                        vec![if_(
                            b(BinOp::Eq, v(2), load(add(v(4), c(16)))),
                            vec![assign(6, add(v(6), load(add(v(4), c(24))))), assign(4, c(0))],
                            vec![if_(
                                b(BinOp::Lt, v(2), load(add(v(4), c(16)))),
                                vec![assign(4, load(v(4)))],
                                vec![assign(4, load(add(v(4), c(8))))],
                            )],
                        )],
                    ),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            ret(v(6)),
        ],
    );
    self_referential(
        ClassId::Database,
        Workload {
            name: "db-btree".into(),
            program: with_runtime(vec![main], vec![]),
            entry: "db_btree_main".into(),
            args: vec![0x51],
            obfuscate: vec!["db_btree_main".into()],
        },
    )
}

// --- adversarial-depth -----------------------------------------------------

fn adversarial_depth(seed: u64) -> Vec<ClassProgram> {
    let mut rng = class_rng(ClassId::AdversarialDepth, seed);
    vec![depth_recursion(&mut rng), depth_switch(&mut rng)]
}

/// Deep recursion: a ~100–140-frame recursive fold (below the reference
/// interpreter's 256-deep call limit) under a mixing entry function.
fn depth_recursion(rng: &mut ChaCha8Rng) -> ClassProgram {
    let depth = 100 + rng.gen_range(0..40i64);
    let k = (rng.gen::<u64>() | 1) as i64;
    let m = rng.gen::<u64>() as i64;
    let rec = func(
        "deep_rec",
        2,
        0,
        vec![
            if_(b(BinOp::Eq, arg(0), c(0)), vec![ret(arg(1))], vec![]),
            ret(call(
                "deep_rec",
                vec![sub(arg(0), c(1)), xor(add(mul(arg(1), c(k)), arg(0)), c(m))],
            )),
        ],
    );
    let main = func(
        "deep_main",
        1,
        2,
        vec![
            assign(0, arg(0)),
            assign(1, c(0)),
            while_(
                b(BinOp::Lt, v(1), c(8)),
                vec![assign(0, add(mul(v(0), c(33)), v(1))), assign(1, add(v(1), c(1)))],
            ),
            ret(call("deep_rec", vec![c(depth), v(0)])),
        ],
    );
    self_referential(
        ClassId::AdversarialDepth,
        Workload {
            name: "depth-recursion".into(),
            program: Program { functions: vec![rec, main], globals: vec![] },
            entry: "deep_main".into(),
            args: vec![0x44],
            obfuscate: vec!["deep_main".into()],
        },
    )
}

/// Giant-switch bytecode interpreter: a seeded 2-byte-op program executed
/// through an 8-armed if-else dispatch chain; the odd/even branch of opcode
/// 6 depends on the (symbolic) accumulator, so DSE forks per occurrence.
fn depth_switch(rng: &mut ChaCha8Rng) -> ClassProgram {
    let ops = 40 + rng.gen_range(0..16i64);
    let mut code = Vec::with_capacity(ops as usize * 2);
    for _ in 0..ops {
        code.push(rng.gen_range(0..8u8));
        code.push(rng.gen::<u8>());
    }
    let len = code.len() as i64;
    // locals: 0 = acc, 1 = pc, 2 = op, 3 = im
    let dispatch = vec![if_(
        b(BinOp::Eq, v(2), c(0)),
        vec![assign(0, add(v(0), v(3)))],
        vec![if_(
            b(BinOp::Eq, v(2), c(1)),
            vec![assign(0, xor(v(0), b(BinOp::Shl, v(3), c(3))))],
            vec![if_(
                b(BinOp::Eq, v(2), c(2)),
                vec![assign(0, mul(v(0), b(BinOp::Or, v(3), c(1))))],
                vec![if_(
                    b(BinOp::Eq, v(2), c(3)),
                    vec![assign(0, sub(v(0), v(3)))],
                    vec![if_(
                        b(BinOp::Eq, v(2), c(4)),
                        vec![assign(0, b(BinOp::Or, b(BinOp::Shl, v(0), c(1)), shr(v(0), c(63))))],
                        vec![if_(
                            b(BinOp::Eq, v(2), c(5)),
                            vec![assign(0, xor(v(0), Expr::un(crate::minic::UnOp::Not, v(3))))],
                            vec![if_(
                                b(BinOp::Eq, v(2), c(6)),
                                vec![if_(
                                    b(BinOp::Eq, and(v(0), c(1)), c(1)),
                                    vec![assign(0, add(v(0), v(3)))],
                                    vec![assign(0, xor(v(0), v(3)))],
                                )],
                                vec![assign(0, add(v(0), v(1)))],
                            )],
                        )],
                    )],
                )],
            )],
        )],
    )];
    let mut body = vec![
        assign(0, arg(0)),
        assign(1, c(0)),
        while_(
            b(BinOp::Lt, v(1), c(len)),
            [
                vec![
                    assign(2, loadb(add(gaddr("sw_code"), v(1)))),
                    assign(3, loadb(add(gaddr("sw_code"), add(v(1), c(1))))),
                ],
                dispatch,
                vec![assign(1, add(v(1), c(2)))],
            ]
            .concat(),
        ),
    ];
    body.push(ret(v(0)));
    let main = func("switch_main", 1, 4, body);
    let program = Program {
        functions: vec![main],
        globals: vec![Global { name: "sw_code".into(), bytes: code }],
    };
    self_referential(
        ClassId::AdversarialDepth,
        Workload {
            name: "depth-switch".into(),
            program,
            entry: "switch_main".into(),
            args: vec![0x17],
            obfuscate: vec!["switch_main".into()],
        },
    )
}

// --- adversarial-icache ----------------------------------------------------

fn adversarial_icache(seed: u64) -> Vec<ClassProgram> {
    let mut rng = class_rng(ClassId::AdversarialIcache, seed);
    vec![smc_program(&mut rng, 1), smc_program(&mut rng, 2)]
}

/// Self-modifying text: `smc_cell` is `return <sentinel>` and is placed
/// *first* in function order, so its text address is invariant under any
/// obfuscation of the driver (ROP rewrites patch in place, VM passes keep
/// function order). The driver loads the patch-site address from the
/// `smc_site` global (filled in after a scan compile below), stores a fresh
/// LCG value over the `mov rax, imm64` immediate each `cadence`-th
/// iteration — bumping the page's write generation and invalidating every
/// predecoded run on it — then calls the cell and folds the returned value
/// into a checksum.
///
/// The MiniC interpreter cannot model text patching, so the reference is a
/// separate pure program replaying the same LCG/cadence schedule.
fn smc_program(rng: &mut ChaCha8Rng, cadence: i64) -> ClassProgram {
    let sentinel = 0x5EED_C0DE_0000_0000u64 | rng.gen::<u32>() as u64;
    let a = (rng.gen::<u64>() | 1) as i64;
    let bconst = rng.gen::<u64>() as i64;
    let s0 = rng.gen::<u64>() as i64;
    let iters = 8 + rng.gen_range(0..8i64);

    // smc_cell takes one (ignored) argument: the ROP translator cannot
    // rewrite callers of zero-argument functions (every argument register
    // stays live across the call, exceeding its scratch budget).
    let cell = func("smc_cell", 1, 0, vec![ret(c(sentinel as i64))]);
    let lcg_step = assign(3, add(mul(v(3), c(a)), c(bconst)));
    let store = Stmt::Store(v(2), v(3));
    let patch: Vec<Stmt> = if cadence == 1 {
        vec![store]
    } else {
        vec![if_(b(BinOp::Eq, b(BinOp::Rem, v(1), c(cadence)), c(0)), vec![store], vec![])]
    };
    // locals: 0 = acc, 1 = i, 2 = site, 3 = lcg state
    let main = func(
        "smc_main",
        1,
        4,
        vec![
            assign(0, arg(0)),
            assign(1, c(0)),
            assign(2, load(gaddr("smc_site"))),
            assign(3, c(s0)),
            while_(
                b(BinOp::Lt, v(1), c(iters)),
                [
                    vec![lcg_step],
                    patch,
                    vec![
                        assign(0, add(mul(v(0), c(31)), call("smc_cell", vec![v(1)]))),
                        assign(1, add(v(1), c(1))),
                    ],
                ]
                .concat(),
            ),
            ret(v(0)),
        ],
    );
    let mut program = Program {
        functions: vec![cell, main],
        globals: vec![Global { name: "smc_site".into(), bytes: vec![0u8; 8] }],
    };

    // Scan compile: locate the sentinel immediate inside smc_cell's body and
    // publish its absolute text address through the global. Data bytes do
    // not move text, so the address survives the real compile — and because
    // smc_cell is the first function, it survives driver obfuscation too.
    let image = codegen::compile(&program).expect("smc scan compile");
    let cell_sym = image.function("smc_cell").expect("smc_cell exists");
    let bytes = image.function_bytes("smc_cell").expect("smc_cell bytes");
    let needle = sentinel.to_le_bytes();
    let off =
        bytes.windows(8).position(|w| w == needle).expect("sentinel immediate present in smc_cell");
    let site = cell_sym.addr + off as u64;
    program.globals[0].bytes = site.to_le_bytes().to_vec();

    // Pure reference: replay the LCG/cadence schedule without touching text.
    // `cur` mirrors the cell's current immediate; iteration 0 always stores
    // (0 % cadence == 0), so the sentinel itself is never folded in.
    let reference = func(
        "smc_ref",
        1,
        4,
        vec![
            assign(0, arg(0)),
            assign(1, c(0)),
            assign(2, c(0)), // cur
            assign(3, c(s0)),
            while_(
                b(BinOp::Lt, v(1), c(iters)),
                vec![
                    assign(3, add(mul(v(3), c(a)), c(bconst))),
                    if_(
                        b(BinOp::Eq, b(BinOp::Rem, v(1), c(cadence)), c(0)),
                        vec![assign(2, v(3))],
                        vec![],
                    ),
                    assign(0, add(mul(v(0), c(31)), v(2))),
                    assign(1, add(v(1), c(1))),
                ],
            ),
            ret(v(0)),
        ],
    );
    with_check(ClassProgram {
        class: ClassId::AdversarialIcache,
        workload: Workload {
            name: format!("smc-cadence{cadence}"),
            program,
            entry: "smc_main".into(),
            args: vec![0x63],
            obfuscate: vec!["smc_main".into()],
        },
        reference: Program { functions: vec![reference], globals: vec![] },
        ref_entry: "smc_ref".into(),
        check_entry: String::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_machine::Emulator;

    fn emulated_value(cp: &ClassProgram) -> u64 {
        let image = codegen::compile(&cp.workload.program).expect("class program compiles");
        let mut emu = Emulator::new(&image);
        emu.set_budget(2_000_000_000);
        emu.call_named(&image, &cp.workload.entry, &cp.workload.args).expect("class program runs")
    }

    #[test]
    fn registry_has_five_classes_with_worst_cases_excluded() {
        let reg = registry();
        assert_eq!(reg.len(), 5);
        assert_eq!(reg.iter().filter(|s| !s.headline).count(), 2);
        for spec in &reg {
            assert_eq!(ClassId::from_name(spec.id.name()), Some(spec.id));
        }
        assert_eq!(ClassId::from_name("no-such-class"), None);
    }

    #[test]
    fn every_class_program_matches_its_reference_semantics() {
        for cp in generate_all(9) {
            let want = cp.reference_value();
            let got = emulated_value(&cp);
            assert_eq!(got, want, "{}: emulator vs reference interpreter", cp.workload.name);
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        for class in ClassId::all() {
            let a = generate(class, 5);
            let b = generate(class, 5);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.workload.program, y.workload.program, "{}", x.workload.name);
                assert_eq!(x.reference, y.reference);
            }
            let c = generate(class, 6);
            assert!(
                a.iter().zip(&c).any(|(x, y)| x.workload.program != y.workload.program),
                "{class:?}: a different seed must change at least one program"
            );
        }
    }

    #[test]
    fn class_arguments_stay_byte_sized_and_reference_depends_on_them() {
        for cp in generate_all(4) {
            assert!(cp.workload.args.len() == 1, "{}", cp.workload.name);
            assert!(cp.workload.args[0] < 256, "{}", cp.workload.name);
            let base = cp.reference_value();
            let other = cp.reference_value_for(cp.workload.args[0] ^ 0x55);
            assert_ne!(base, other, "{}: checksum must depend on the argument", cp.workload.name);
        }
    }

    #[test]
    fn smc_programs_patch_text_and_invalidate_the_icache() {
        let cps = generate(ClassId::AdversarialIcache, 3);
        assert_eq!(cps.len(), 2);
        for cp in &cps {
            let image = codegen::compile(&cp.workload.program).unwrap();
            let site = u64::from_le_bytes(
                cp.workload.program.globals[0].bytes.as_slice().try_into().unwrap(),
            );
            let cell = image.function("smc_cell").unwrap();
            assert!(
                site > cell.addr && site < cell.addr + cell.size,
                "{}: patch site inside smc_cell text",
                cp.workload.name
            );
            // The run must agree between icache'd and icache-less modes even
            // though it rewrites text mid-loop.
            let run = |icache: bool| {
                let mut emu = Emulator::new(&image);
                emu.set_icache_enabled(icache);
                emu.call_named(&image, &cp.workload.entry, &cp.workload.args).unwrap()
            };
            assert_eq!(run(true), run(false), "{}", cp.workload.name);
            assert_eq!(run(true), cp.reference_value(), "{}", cp.workload.name);
        }
    }

    #[test]
    fn check_wrappers_point_test_the_canonical_argument() {
        for cp in generate_all(6) {
            let image = codegen::compile(&cp.workload.program).expect("compiles with wrapper");
            let mut emu = Emulator::new(&image);
            emu.set_budget(2_000_000_000);
            let hit = emu.call_named(&image, &cp.check_entry, &cp.workload.args).unwrap();
            assert_eq!(hit, 1, "{}: canonical argument passes the point test", cp.workload.name);
            let miss =
                emu.call_named(&image, &cp.check_entry, &[cp.workload.args[0] ^ 0x55]).unwrap();
            assert_eq!(miss, 0, "{}: a different argument fails it", cp.workload.name);
        }
    }

    #[test]
    fn database_programs_allocate_guest_heap() {
        for cp in generate(ClassId::Database, 2) {
            let image = codegen::compile(&cp.workload.program).unwrap();
            let mut emu = Emulator::new(&image);
            emu.call_named(&image, &cp.workload.entry, &cp.workload.args).unwrap();
            let heap_ptr = image.symbol("__heap_ptr").unwrap();
            assert!(
                emu.mem.read_u64(heap_ptr) > raindrop_machine::HEAP_BASE,
                "{}: allocations happened",
                cp.workload.name
            );
        }
    }

    #[test]
    fn depth_recursion_recurses_deep_but_below_the_interp_limit() {
        for cp in generate(ClassId::AdversarialDepth, 7) {
            if cp.workload.name != "depth-recursion" {
                continue;
            }
            let image = codegen::compile(&cp.workload.program).unwrap();
            let mut emu = Emulator::new(&image);
            emu.call_named(&image, &cp.workload.entry, &cp.workload.args).unwrap();
            assert!(emu.stats().calls >= 100, "deep recursion performs >= 100 calls");
        }
    }
}
