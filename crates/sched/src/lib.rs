//! # raindrop-sched
//!
//! The reusable job scheduler underneath the attack fleet and the
//! protection server: a work-stealing [`WorkQueue`], a persistent
//! [`Scheduler`] with warm per-worker state ([`WorkerCtx`]), job
//! priorities, cancellation and per-job timing/outcome stats, plus the
//! borrowing batch helper [`scoped_map`].
//!
//! This crate generalizes the work-queue sharding that first appeared as
//! `AttackFleet` in `raindrop-attacks`: the fleet is now a thin veneer over
//! these primitives, and the protection server (`raindrop-server`) feeds
//! its jobs through the same [`Scheduler`] type — DSE campaigns and
//! protection pipelines share one scheduling core.
//!
//! Two entry points cover the two job shapes in this workspace:
//!
//! * [`Scheduler`] — a persistent pool for long-running services: jobs are
//!   `'static` closures over warm per-worker state, submitted with a
//!   priority and awaited through [`JobHandle`]s.
//! * [`scoped_map`] — a one-shot batch: borrows items and the job function
//!   (no `'static` bound), pre-shards the batch across workers, and lets
//!   work stealing rebalance stragglers.
//!
//! Determinism: the scheduler moves *when and where* a job runs, never what
//! it computes. Jobs must be self-contained (seeds and inputs inside the
//! job, per-worker contexts holding scratch only — see [`WorkerCtx`]), and
//! then results are independent of the worker count; both the fleet's
//! 1-vs-N test and the server's determinism test pin this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod scheduler;

pub use queue::WorkQueue;
pub use scheduler::{
    JobCtl, JobDone, JobHandle, JobOutcome, JobStats, Scheduler, SchedulerStats, WorkerCtx,
};

use std::sync::Mutex;

/// Runs `f` over every item on a temporary work-stealing pool of `workers`
/// threads and returns the results in item order.
///
/// The batch is pre-sharded round-robin across per-worker deques; a worker
/// that finishes its shard steals from the back of the longest remaining
/// one, so stragglers never idle the pool. Unlike [`Scheduler::submit`],
/// items, results and `f` may borrow from the caller — the pool lives
/// inside a [`std::thread::scope`].
///
/// `f` must be deterministic per item for batch runs to be reproducible
/// across worker counts.
///
/// # Example
///
/// ```
/// let squares = raindrop_sched::scoped_map(4, (0u64..10).collect(), |i, v| {
///     assert_eq!(i as u64, v);
///     v * v
/// });
/// assert_eq!(squares, (0u64..10).map(|v| v * v).collect::<Vec<_>>());
/// ```
pub fn scoped_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    let queue: WorkQueue<(usize, T)> = WorkQueue::new(workers);
    for (i, item) in items.into_iter().enumerate() {
        queue.push_local(i % workers, (i, item));
    }
    queue.close();
    let results: Mutex<Vec<Option<R>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(n).collect());
    std::thread::scope(|s| {
        for w in 0..workers {
            let queue = &queue;
            let results = &results;
            let f = &f;
            s.spawn(move || {
                while let Some((i, item)) = queue.pop(w) {
                    let r = f(i, item);
                    results.lock().expect("results lock")[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .expect("scoped workers finished")
        .into_iter()
        .map(|r| r.expect("every item ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_map_preserves_order_with_borrowed_state() {
        let offset = 100u64; // borrowed by `f`, not 'static-captured
        let out = scoped_map(3, (0u64..32).collect(), |_, v| v + offset);
        assert_eq!(out, (100u64..132).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_map_handles_empty_and_single() {
        assert_eq!(scoped_map(4, Vec::<u8>::new(), |_, v| v), Vec::<u8>::new());
        assert_eq!(scoped_map(0, vec![7u8], |_, v| v), vec![7]);
    }

    #[test]
    fn scoped_map_steals_from_stragglers() {
        // Worker 0's shard starts with one very slow item; the rest of its
        // shard must be stolen and completed by the other worker well
        // before the slow item finishes.
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        let fast_done = AtomicUsize::new(0);
        let release = AtomicBool::new(false);
        let out = scoped_map(2, (0usize..8).collect(), |_, v| {
            if v == 0 {
                // Slow job: waits until every fast job completed, which is
                // only possible if worker 1 stole worker 0's remaining
                // shard (items 2, 4, 6).
                while !release.load(Ordering::Relaxed) {
                    if fast_done.load(Ordering::Relaxed) == 7 {
                        release.store(true, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
            } else {
                fast_done.fetch_add(1, Ordering::Relaxed);
            }
            v * 10
        });
        assert_eq!(out, (0usize..8).map(|v| v * 10).collect::<Vec<_>>());
    }
}
