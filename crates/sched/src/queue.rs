//! The work-stealing queue underneath [`Scheduler`](crate::Scheduler) and
//! [`scoped_map`](crate::scoped_map).
//!
//! One [`WorkQueue`] serves a fixed set of workers. Jobs enter either
//! through the *injector* — a priority heap shared by every worker — or
//! through a worker's *local* deque ([`WorkQueue::push_local`], used to
//! pre-shard a batch). A worker takes, in order: the front of its own local
//! deque, the highest-priority injector job, then the *back* of the longest
//! other local deque (a steal). Stealing is what keeps stragglers from
//! idling the rest of the pool: a worker stuck on one expensive job simply
//! loses the rest of its shard to its peers.
//!
//! All queue state sits behind one mutex; workers touch it once per job, so
//! for the job granularities this workspace schedules (whole protection
//! pipelines, whole DSE attacks) contention is immaterial.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::{Condvar, Mutex};

/// A prioritized injector entry. Ordered by descending priority, then FIFO
/// (ascending submission sequence); the job payload never participates in
/// the ordering.
struct HeapEntry<J> {
    prio: i32,
    seq: u64,
    job: J,
}

impl<J> PartialEq for HeapEntry<J> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.seq == other.seq
    }
}
impl<J> Eq for HeapEntry<J> {}
impl<J> PartialOrd for HeapEntry<J> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<J> Ord for HeapEntry<J> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher priority wins, earlier sequence
        // breaks ties (hence the reversed seq comparison).
        self.prio.cmp(&other.prio).then(other.seq.cmp(&self.seq))
    }
}

struct State<J> {
    injector: BinaryHeap<HeapEntry<J>>,
    locals: Vec<VecDeque<J>>,
    closed: bool,
    seq: u64,
    stolen: u64,
}

/// A blocking multi-producer work-stealing queue for a fixed worker set.
///
/// This is the sharding core generalized out of the original
/// `AttackFleet`: the fleet's single shared `VecDeque` becomes the injector,
/// and per-worker deques plus stealing are what let pre-sharded batches
/// rebalance around stragglers.
pub struct WorkQueue<J> {
    state: Mutex<State<J>>,
    signal: Condvar,
}

impl<J> WorkQueue<J> {
    /// Creates a queue for `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> WorkQueue<J> {
        let workers = workers.max(1);
        WorkQueue {
            state: Mutex::new(State {
                injector: BinaryHeap::new(),
                locals: (0..workers).map(|_| VecDeque::new()).collect(),
                closed: false,
                seq: 0,
                stolen: 0,
            }),
            signal: Condvar::new(),
        }
    }

    /// The number of workers this queue was sized for.
    pub fn workers(&self) -> usize {
        self.state.lock().expect("queue lock").locals.len()
    }

    /// Pushes a job onto the shared injector with the given priority
    /// (higher runs first; equal priorities run FIFO). No-op after
    /// [`close`](WorkQueue::close).
    pub fn push(&self, prio: i32, job: J) {
        let mut st = self.state.lock().expect("queue lock");
        if st.closed {
            return;
        }
        let seq = st.seq;
        st.seq += 1;
        st.injector.push(HeapEntry { prio, seq, job });
        drop(st);
        self.signal.notify_one();
    }

    /// Pushes a job onto `worker`'s local deque (back). Used to pre-shard a
    /// batch; stealing rebalances whatever sharding gets wrong.
    pub fn push_local(&self, worker: usize, job: J) {
        let mut st = self.state.lock().expect("queue lock");
        if st.closed {
            return;
        }
        st.locals[worker].push_back(job);
        drop(st);
        self.signal.notify_one();
    }

    /// Closes the queue: no further pushes are accepted, and once the
    /// remaining jobs drain, every blocked [`pop`](WorkQueue::pop) returns
    /// `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.signal.notify_all();
    }

    /// Blocking dequeue for `worker`: own local front, then the injector,
    /// then a steal from the back of the longest other local deque. Returns
    /// `None` only when the queue is closed and fully drained.
    pub fn pop(&self, worker: usize) -> Option<J> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = st.locals[worker].pop_front() {
                return Some(job);
            }
            if let Some(entry) = st.injector.pop() {
                return Some(entry.job);
            }
            let victim = (0..st.locals.len())
                .filter(|&v| v != worker)
                .max_by_key(|&v| st.locals[v].len())
                .filter(|&v| !st.locals[v].is_empty());
            if let Some(v) = victim {
                let job = st.locals[v].pop_back().expect("victim non-empty");
                st.stolen += 1;
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.signal.wait(st).expect("queue lock");
        }
    }

    /// Number of jobs that were stolen from another worker's local deque.
    pub fn stolen(&self) -> u64 {
        self.state.lock().expect("queue lock").stolen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_run_high_first_and_fifo_within() {
        let q: WorkQueue<u32> = WorkQueue::new(1);
        q.push(0, 1);
        q.push(5, 2);
        q.push(5, 3);
        q.push(-1, 4);
        q.close();
        let order: Vec<u32> = std::iter::from_fn(|| q.pop(0)).collect();
        assert_eq!(order, vec![2, 3, 1, 4]);
    }

    #[test]
    fn local_jobs_are_stolen_when_a_worker_never_shows_up() {
        let q: WorkQueue<u32> = WorkQueue::new(2);
        q.push_local(1, 10);
        q.push_local(1, 11);
        q.close();
        // Worker 0 drains worker 1's shard from the back.
        assert_eq!(q.pop(0), Some(11));
        assert_eq!(q.pop(0), Some(10));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.stolen(), 2);
    }

    #[test]
    fn own_local_beats_injector_beats_steal() {
        let q: WorkQueue<u32> = WorkQueue::new(2);
        q.push_local(0, 1);
        q.push(100, 2);
        q.push_local(1, 3);
        q.close();
        assert_eq!(q.pop(0), Some(1), "own local first");
        assert_eq!(q.pop(0), Some(2), "then injector");
        assert_eq!(q.pop(0), Some(3), "then steal");
    }

    #[test]
    fn pushes_after_close_are_dropped() {
        let q: WorkQueue<u32> = WorkQueue::new(1);
        q.close();
        q.push(0, 1);
        q.push_local(0, 2);
        assert_eq!(q.pop(0), None);
    }
}
